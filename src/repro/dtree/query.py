"""Decision-tree queries: point location and box traversal.

Both queries are frontier sweeps over (item, node) pairs held in NumPy
arrays — each iteration advances *all* items one level, so cost is
O(pairs · depth) with whole-array operations, not a Python recursion
per item. Box queries can descend both branches when the box straddles
a hyperplane, which is exactly how an element gets sent to multiple
subdomains.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.dtree.tree import DecisionTree
from repro.geometry.boxsearch import SearchPlan


def _node_arrays(tree: DecisionTree) -> Tuple[np.ndarray, ...]:
    """Flatten node fields into parallel arrays for vectorised sweeps.

    Cached on the tree keyed by its node count: trees are immutable
    after induction except for grafting, which changes the node count,
    so the key also serves as the invalidation token.
    """
    cached = getattr(tree, "_query_arrays", None)
    if cached is not None and cached[0] == len(tree.nodes):
        return cached[1]
    n = len(tree.nodes)
    dim = np.empty(n, dtype=np.int64)
    thr = np.empty(n, dtype=float)
    left = np.empty(n, dtype=np.int64)
    right = np.empty(n, dtype=np.int64)
    label = np.empty(n, dtype=np.int64)
    pure = np.empty(n, dtype=bool)
    for i, nd in enumerate(tree.nodes):
        dim[i], thr[i] = nd.dim, nd.threshold
        left[i], right[i] = nd.left, nd.right
        label[i], pure[i] = nd.label, nd.is_pure
    arrays = (dim, thr, left, right, label, pure)
    tree._query_arrays = (n, arrays)
    return arrays


def assign_points(tree: DecisionTree, points: np.ndarray) -> np.ndarray:
    """Leaf id reached by each point, ``int64[n]``."""
    points = np.asarray(points, dtype=float)
    dim, thr, left, right, _, _ = _node_arrays(tree)
    cur = np.full(len(points), tree.root, dtype=np.int64)
    active = left[cur] >= 0
    while active.any():
        ids = np.nonzero(active)[0]
        nodes = cur[ids]
        go_left = points[ids, dim[nodes]] <= thr[nodes]
        cur[ids] = np.where(go_left, left[nodes], right[nodes])
        active[ids] = left[cur[ids]] >= 0
    return cur


def predict_partition(tree: DecisionTree, points: np.ndarray) -> np.ndarray:
    """Partition label each point's leaf carries (majority label)."""
    leaf = assign_points(tree, points)
    labels = np.array([nd.label for nd in tree.nodes], dtype=np.int64)
    return labels[leaf]


def box_query_pairs(
    tree: DecisionTree, boxes: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """All (box index, leaf id) incidences, each pair once.

    A box reaches a leaf iff its slab along every split on the path is
    compatible: at node (dim, t), boxes with ``lo[dim] <= t`` descend
    left and boxes with ``hi[dim] > t`` descend right (possibly both).
    """
    boxes = np.asarray(boxes, dtype=float)
    m = len(boxes)
    dim, thr, left, right, _, _ = _node_arrays(tree)

    box_idx = np.arange(m, dtype=np.int64)
    node_idx = np.full(m, tree.root, dtype=np.int64)
    out_boxes = []
    out_leaves = []
    while len(box_idx):
        is_leaf = left[node_idx] < 0
        if is_leaf.any():
            out_boxes.append(box_idx[is_leaf])
            out_leaves.append(node_idx[is_leaf])
        box_idx, node_idx = box_idx[~is_leaf], node_idx[~is_leaf]
        if len(box_idx) == 0:
            break
        d = dim[node_idx]
        t = thr[node_idx]
        go_l = boxes[box_idx, 0, :][np.arange(len(box_idx)), d] <= t
        go_r = boxes[box_idx, 1, :][np.arange(len(box_idx)), d] > t
        # a box not strictly right of the threshold that also fails the
        # left test can only happen on NaN input; treat as both-ways
        neither = ~(go_l | go_r)
        go_l |= neither
        nb = np.concatenate((box_idx[go_l], box_idx[go_r]))
        nn = np.concatenate((left[node_idx[go_l]], right[node_idx[go_r]]))
        box_idx, node_idx = nb, nn
    if out_boxes:
        return np.concatenate(out_boxes), np.concatenate(out_leaves)
    return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)


def tree_filter_search(
    tree: DecisionTree,
    element_boxes: np.ndarray,
    element_owner: np.ndarray,
    k: int,
) -> SearchPlan:
    """MCML+DT global search: send each element to every partition whose
    descriptor leaves its box touches (minus its own).

    Impure leaves (possible only under depth cut-off or coincident
    mixed-label points) conservatively stand for *all* the partitions
    whose points they contain — approximated here by their majority
    label plus a "send to everyone touching" flag would overcount, so
    we store per-leaf label and mark impure leaves as wildcards.
    """
    element_boxes = np.asarray(element_boxes, dtype=float)
    element_owner = np.asarray(element_owner, dtype=np.int64)
    if len(element_boxes) != len(element_owner):
        raise ValueError("element_boxes and element_owner lengths differ")

    labels = np.array([nd.label for nd in tree.nodes], dtype=np.int64)
    pure = np.array([nd.is_pure for nd in tree.nodes], dtype=bool)
    b_idx, leaf_idx = box_query_pairs(tree, element_boxes)

    send = np.zeros((len(element_boxes), k), dtype=bool)
    if len(b_idx):
        pure_hits = pure[leaf_idx]
        send[b_idx[pure_hits], labels[leaf_idx[pure_hits]]] = True
        # impure leaves: the element may contact any partition, so it is
        # broadcast (rare; bounded-depth safety valve)
        impure_boxes = np.unique(b_idx[~pure_hits])
        send[impure_boxes, :] = True
    send[np.arange(len(element_owner)), element_owner] = False
    return SearchPlan(send_matrix=send, owner=element_owner)
