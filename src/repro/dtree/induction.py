"""Decision-tree induction (paper §4.1.1 and §4.2).

Both inducers share one recursive engine differing only in the
termination predicate and in which splitter a node uses:

* :func:`induce_pure_tree` — split impure nodes with Eq. 1 until every
  leaf is pure (or geometrically unsplittable, which only happens when
  coincident points carry different labels).
* :func:`induce_bounded_tree` — the §4.2 variant: keep splitting pure
  nodes of ``>= max_p`` points (median cuts — Eq. 1 is indifferent on a
  pure node) and impure nodes of ``>= max_i`` points (Eq. 1 cuts);
  everything else terminates.

Both return ``(tree, leaf_of_point)`` so callers can collapse leaves
into the refinement graph ``G'`` without re-querying.
"""

from __future__ import annotations

from typing import Callable, Optional, Tuple

import numpy as np

from repro.dtree.splitter import SplitResult, best_split, median_split
from repro.dtree.tree import DecisionTree, TreeNode
from repro.utils.validation import check_array, check_labels, check_positive


def _majority_label(labels: np.ndarray) -> int:
    counts = np.bincount(labels)
    return int(counts.argmax())


def _is_pure(labels: np.ndarray) -> bool:
    return bool((labels == labels[0]).all())


def _induce(
    points: np.ndarray,
    labels: np.ndarray,
    k: int,
    should_split: Callable[[int, bool], bool],
    margin_weight: float,
    max_depth: int,
) -> Tuple[DecisionTree, np.ndarray]:
    points = check_array("points", np.asarray(points, dtype=float), ndim=2)
    labels = np.asarray(labels, dtype=np.int64)
    if len(points) != len(labels):
        raise ValueError("points and labels lengths differ")
    if len(points) == 0:
        raise ValueError("cannot induce a tree on zero points")
    if labels.min() < 0 or labels.max() >= k:
        raise ValueError(f"labels must lie in [0, {k})")

    tree = DecisionTree(k=k)
    leaf_of_point = np.full(len(points), -1, dtype=np.int64)

    def build(idx: np.ndarray, depth: int) -> int:
        nid = len(tree.nodes)
        sub_labels = labels[idx]
        pure = _is_pure(sub_labels)
        node = TreeNode(
            n_points=len(idx),
            label=_majority_label(sub_labels),
            is_pure=pure,
        )
        tree.nodes.append(node)

        if depth >= max_depth or not should_split(len(idx), pure):
            leaf_of_point[idx] = nid
            return nid

        sub_points = points[idx]
        if pure:
            split = median_split(sub_points)
        else:
            split = best_split(sub_points, sub_labels, margin_weight)
        if split is None:
            # coincident points with mixed labels (or a single point):
            # geometrically unsplittable, must terminate
            leaf_of_point[idx] = nid
            return nid

        go_left = sub_points[:, split.dim] <= split.threshold
        if go_left.all() or not go_left.any():
            # midpoint rounding between two adjacent floats can land on
            # one of the coordinates and empty a side; terminate rather
            # than recurse on a degenerate split
            leaf_of_point[idx] = nid
            return nid
        node.dim = split.dim
        node.threshold = split.threshold
        node.left = build(idx[go_left], depth + 1)
        node.right = build(idx[~go_left], depth + 1)
        node.is_pure = pure
        return nid

    build(np.arange(len(points)), 0)
    return tree, leaf_of_point


def induce_pure_tree(
    points: np.ndarray,
    labels: np.ndarray,
    k: int,
    margin_weight: float = 0.0,
    max_depth: int = 64,
) -> Tuple[DecisionTree, np.ndarray]:
    """Induce the contact-search tree: leaves contain points of a
    single partition (§4.1.1).

    ``margin_weight`` enables the §6 margin-aware extension. The
    ``max_depth`` guard bounds pathological inputs; leaves cut off by
    it (or by coincident mixed-label points) are impure and flagged
    ``is_pure=False`` so the search can treat them conservatively.
    """
    check_positive("k", k)
    points = check_array("points", points, ndim=2)
    labels = np.asarray(labels, dtype=np.int64)
    if len(points) != len(labels):
        raise ValueError("points and labels lengths differ")
    labels = check_labels("labels", labels, k)
    return _induce(
        points,
        labels,
        k,
        should_split=lambda n, pure: not pure,
        margin_weight=margin_weight,
        max_depth=max_depth,
    )


def induce_bounded_tree(
    points: np.ndarray,
    labels: np.ndarray,
    k: int,
    max_p: int,
    max_i: int,
    margin_weight: float = 0.0,
    max_depth: int = 64,
) -> Tuple[DecisionTree, np.ndarray]:
    """Induce the §4.2 partition-reshaping tree over *all* mesh nodes.

    Splitting continues while (pure and ``n >= max_p``) or (impure and
    ``n >= max_i``); i.e. it terminates at pure nodes smaller than
    ``max_p`` and impure nodes smaller than ``max_i``.
    """
    if max_p < 1 or max_i < 1:
        raise ValueError("max_p and max_i must be >= 1")
    check_positive("k", k)
    points = check_array("points", points, ndim=2)
    labels = np.asarray(labels, dtype=np.int64)
    if len(points) != len(labels):
        raise ValueError("points and labels lengths differ")
    labels = check_labels("labels", labels, k)
    return _induce(
        points,
        labels,
        k,
        should_split=lambda n, pure: (n >= max_p) if pure else (n >= max_i),
        margin_weight=margin_weight,
        max_depth=max_depth,
    )


def suggested_bounds(n: int, k: int) -> Tuple[int, int]:
    """Default ``(max_p, max_i)`` for the §4.2 reshaping tree.

    The paper's study (on the 156k-node EPIC mesh) recommends
    ``n/k^1.5 <= max_p <= n/k`` and ``n/k^2.5 <= max_i <= n/k²``. The
    paper also observes that *small* values make the post-refinement
    easy — better final cut and balance — at the price of more leaf
    regions. On our ~9× smaller meshes the paper's absolute box sizes
    correspond to smaller relative exponents, and the ablation
    (``benchmarks/bench_ablation_maxpi.py``) shows the cut/balance side
    dominating, so the default sits half a step *below* the paper's
    window: ``max_p = n/k^1.75``, ``max_i = n/k^2.75``. Callers
    reproducing the paper's exact setting can pass explicit bounds.
    """
    if n < 1 or k < 1:
        raise ValueError("n and k must be >= 1")
    max_p = int(round(n / k**1.75))
    max_i = int(round(n / k**2.75))
    return max(1, max_p), max(1, max_i)
