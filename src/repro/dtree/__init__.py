"""Decision-tree induction over partitioned point sets (paper §4.1).

C4.5-style axis-parallel tree induction using the paper's modified
gini splitting index (Eq. 1), with two termination modes:

* *pure* trees — recurse until every leaf holds points of one
  partition; the leaves are the subdomain geometric descriptors used
  by the MCML+DT global contact search.
* *bounded* trees — recurse while (pure and ``n >= max_p``) or
  (impure and ``n >= max_i``); used to reshape the multi-constraint
  partition into one with piecewise axis-parallel boundaries (§4.2).
"""

from repro.dtree.splitter import SplitResult, best_split, median_split
from repro.dtree.tree import DecisionTree, TreeNode
from repro.dtree.induction import induce_bounded_tree, induce_pure_tree
from repro.dtree.query import (
    assign_points,
    box_query_pairs,
    tree_filter_search,
)
from repro.dtree.descriptors import SubdomainDescriptors, leaf_regions

__all__ = [
    "SplitResult",
    "best_split",
    "median_split",
    "DecisionTree",
    "TreeNode",
    "induce_pure_tree",
    "induce_bounded_tree",
    "assign_points",
    "box_query_pairs",
    "tree_filter_search",
    "SubdomainDescriptors",
    "leaf_regions",
]
