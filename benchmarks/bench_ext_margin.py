"""Extension (§6): margin-aware splitting hyperplanes.

The paper's future-work idea: prefer hyperplanes through sparsely
populated regions, far from their nearest points, since cuts hugging a
point generate boxes whose faces graze surface elements and cause
false-positive sends. The bench compares plain Eq.-1 trees against
margin-aware trees on NRemote and tree size across margin weights.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.mcml_dt import MCMLDTParams, MCMLDTPartitioner

from .conftest import record, strong_options

K = 8
MARGIN_WEIGHTS = (0.0, 0.05, 0.2)


@pytest.mark.parametrize("margin", MARGIN_WEIGHTS)
def test_margin_weight_sweep(benchmark, short_sequence, margin):
    snap = short_sequence[10]
    params = MCMLDTParams(
        margin_weight=margin, pad=0.1, options=strong_options()
    )
    pt = MCMLDTPartitioner(K, params)
    pt.fit(snap)

    def per_step():
        tree, _ = pt.build_descriptors(snap)
        plan = pt.search_plan(snap, tree)
        return tree, plan

    tree, plan = benchmark(per_step)
    record(
        benchmark,
        margin_weight=margin,
        nt_nodes=tree.n_nodes,
        n_remote=plan.n_remote,
    )


def test_margin_trees_remain_correct(benchmark, short_sequence):
    """Margin-aware trees must still classify every contact point into
    its own partition (purity is unaffected by the tie-breaking)."""
    from repro.dtree.query import predict_partition

    snap = short_sequence[10]
    params = MCMLDTParams(margin_weight=0.2, options=strong_options())
    pt = MCMLDTPartitioner(K, params)
    pt.fit(snap)

    def build():
        return pt.build_descriptors(snap)

    tree, _ = benchmark(build)
    coords = snap.mesh.nodes[snap.contact_nodes]
    got = predict_partition(tree, coords)
    assert np.array_equal(got, pt.part[snap.contact_nodes])
