"""RCB substrate bench: build and incremental-update costs, UpdComm.

ML+RCB re-fits its RCB decomposition every step; the paper's UpdComm
metric counts the contact points that migrate. The bench times both
operations at evaluation scale and records the migration volume for
the real motion field (projectile translation + crater growth).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.geometry.rcb import rcb_partition

from .conftest import record

K = 25


def test_rcb_build(benchmark, bench_sequence):
    snap = bench_sequence[0]
    coords = snap.mesh.nodes[snap.contact_nodes]
    labels, tree = benchmark(lambda: rcb_partition(coords, K))
    counts = np.bincount(labels, minlength=K)
    record(
        benchmark,
        n_points=len(coords),
        tree_nodes=tree.n_nodes,
        max_count=int(counts.max()),
        min_count=int(counts.min()),
    )
    assert counts.min() > 0


def test_rcb_incremental_update(benchmark, bench_sequence):
    """Per-step incremental re-fit on the real motion field."""
    snap0 = bench_sequence[0]
    snap1 = bench_sequence[1]
    coords0 = snap0.mesh.nodes[snap0.contact_nodes]
    _, tree = rcb_partition(coords0, K)
    coords1 = snap1.mesh.nodes[snap1.contact_nodes]

    labels = benchmark(lambda: tree.update(coords1))
    counts = np.bincount(labels, minlength=K)
    record(benchmark, n_points=len(coords1), max_count=int(counts.max()))
    assert counts.min() > 0


def test_rcb_updcomm_over_sequence(benchmark, bench_sequence):
    """Total UpdComm across the full run stays small relative to the
    contact-point count (paper: UpdComm ≪ M2MComm)."""

    def replay():
        from repro.metrics.mapping import update_comm

        snap0 = bench_sequence[0]
        labels, tree = rcb_partition(
            bench_sequence[0].mesh.nodes[snap0.contact_nodes], K
        )
        prev_labels, prev_ids = labels, snap0.contact_nodes
        total = 0
        for snap in bench_sequence.snapshots[1:]:
            coords = snap.mesh.nodes[snap.contact_nodes]
            new_labels = tree.update(coords)
            total += update_comm(
                prev_labels, new_labels, prev_ids, snap.contact_nodes
            )
            prev_labels, prev_ids = new_labels, snap.contact_nodes
        return total

    total = benchmark.pedantic(replay, rounds=1, iterations=1)
    n_contact = bench_sequence[0].num_contact_nodes
    record(benchmark, total_updcomm=total,
           per_step=total / (len(bench_sequence) - 1),
           contact_nodes=n_contact)
    # migrations happen, but each step moves only a small fraction
    assert total > 0
    assert total / (len(bench_sequence) - 1) < 0.25 * n_contact
