"""Figure 1: subdomain descriptors for a 3-way partition of 45 contact
points.

Reproduces the paper's worked example: 45 points in three clustered
partitions are described by a handful of axis-parallel rectangles from
a small decision tree, and the tree answers point/box queries. The
bench times pure-tree induction at the figure's size and at the
evaluation scale, and records the descriptor statistics (tree size,
leaf count, zero-overlap invariant).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.dtree.descriptors import SubdomainDescriptors
from repro.dtree.induction import induce_pure_tree
from repro.geometry.bbox import bbox_of_points

from .conftest import record


def figure1_points(seed: int = 0):
    """45 contact points in three clustered partitions (paper Fig. 1a)."""
    rng = np.random.default_rng(seed)
    pts = np.concatenate(
        [
            rng.random((15, 2)) * [2.0, 2.5] + [0.2, 2.2],   # top-left
            rng.random((15, 2)) * [2.5, 2.0] + [2.8, 2.8],   # top-right
            rng.random((15, 2)) * [3.5, 1.8] + [0.8, 0.2],   # bottom
        ]
    )
    labels = np.repeat(np.arange(3), 15)
    return pts, labels


def test_fig1_tree_induction(benchmark):
    pts, labels = figure1_points()

    tree, _ = benchmark(lambda: induce_pure_tree(pts, labels, 3))
    tree.validate()
    desc = SubdomainDescriptors.from_tree(tree, bbox_of_points(pts))
    record(
        benchmark,
        nt_nodes=tree.n_nodes,
        n_leaves=tree.n_leaves,
        depth=tree.depth(),
        n_regions=desc.n_regions(),
        overlap_volume=desc.total_overlap_volume(),
    )
    # the paper's figure uses ~10 rectangles for 45 points; clustered
    # partitions must stay in that small-tree regime
    assert tree.n_leaves <= 12
    assert desc.total_overlap_volume() == 0.0


def test_fig1_induction_scaling(benchmark, bench_sequence):
    """Pure-tree induction at evaluation scale (the per-step cost of
    MCML+DT's descriptor update)."""
    from repro.core.mcml_dt import MCMLDTParams, MCMLDTPartitioner

    from .conftest import strong_options

    snap = bench_sequence[0]
    pt = MCMLDTPartitioner(
        8, MCMLDTParams(options=strong_options())
    ).fit(snap)
    cn = snap.contact_nodes
    coords = snap.mesh.nodes[cn]
    labels = pt.part[cn]

    tree, _ = benchmark(lambda: induce_pure_tree(coords, labels, 8))
    record(
        benchmark,
        n_points=len(coords),
        nt_nodes=tree.n_nodes,
        depth=tree.depth(),
    )
