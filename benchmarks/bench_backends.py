"""Execution backends head-to-head on the parallel contact search.

Runs the identical two-superstep global search (k=4 ranks) on the
serial, thread, and process backends over a synthetic impact mesh, and
registers the measured times for the session-end ``BENCH_backends.json``
report (``benchmarks/conftest.py``). The process backend's pool is
warmed before timing, so the numbers measure steady-state superstep
dispatch — the regime a driver loop (one search per time step) runs in.

Every backend must produce the *identical* candidate set and ledger —
asserted here, not just in the test suite, so the report can never show
a speedup over a wrong answer.

The process-vs-serial speedup is hardware-dependent: the search
superstep is dominated by per-rank KD-tree queries, which parallelise
across workers only when the machine has cores to run them
(``cpu_count`` is recorded in the report for exactly this reason).
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.core.contact_search import parallel_contact_search
from repro.core.mcml_dt import MCMLDTParams, MCMLDTPartitioner
from repro.geometry.bbox import element_bboxes
from repro.obs.tracer import Tracer
from repro.runtime.backends import build_backend

from .conftest import record, register_backend_result, strong_options

K = 4  # ranks
WORKERS = 4
PAD = 0.3
ROUNDS = 5


@pytest.fixture(scope="module")
def scene(bench_sequence):
    snap = bench_sequence[40]
    pt = MCMLDTPartitioner(
        K, MCMLDTParams(options=strong_options(), pad=PAD)
    ).fit(snap)
    plan = pt.search_plan(snap)
    boxes = element_bboxes(snap.mesh.nodes, snap.contact_faces)
    boxes[:, 0] -= PAD
    boxes[:, 1] += PAD
    coords = snap.mesh.nodes[snap.contact_nodes]
    point_part = pt.part[snap.contact_nodes]
    return snap, plan, boxes, coords, point_part


_reference = {}


def _run_backend(benchmark, scene, name):
    snap, plan, boxes, coords, point_part = scene
    backend = build_backend(name, workers=WORKERS)
    tracer = Tracer()

    def run():
        return parallel_contact_search(
            plan, boxes, snap.contact_faces, coords,
            snap.contact_nodes, point_part, K,
            backend=backend, tracer=tracer,
        )

    try:
        run()  # warm the pool / caches outside the timed region
        best = None
        timings = []
        for _ in range(ROUNDS):
            t0 = time.perf_counter()
            pairs, ledger = run()
            dt = time.perf_counter() - t0
            timings.append(dt)
            best = dt if best is None else min(best, dt)
        benchmark.pedantic(run, rounds=1, iterations=1)
    finally:
        backend.close()

    outcome = (frozenset(pairs), tuple(sorted(ledger.summary().items())))
    _reference.setdefault("outcome", outcome)
    assert outcome == _reference["outcome"], (
        f"{name} backend diverged from the first-run reference"
    )
    spans = {
        path: {
            "n_calls": span.n_calls,
            "total_ms": round(span.total_s * 1e3, 3),
        }
        for path, span in tracer.root.walk()
        if "global-search" in path
    }
    register_backend_result(
        name,
        best_s=round(best, 6),
        mean_s=round(sum(timings) / len(timings), 6),
        rounds=ROUNDS,
        ranks=K,
        workers=WORKERS if name != "serial" else 1,
        candidates=len(pairs),
        exchanged=ledger.items("contact-exchange"),
        bytes_sent=getattr(backend, "bytes_sent", 0),
        bytes_recv=getattr(backend, "bytes_recv", 0),
        spans=spans,
    )
    record(
        benchmark, tracer=tracer, best_s=round(best, 6),
        candidates=len(pairs), backend=name,
    )


def test_backend_serial(benchmark, scene):
    _run_backend(benchmark, scene, "serial")


def test_backend_thread(benchmark, scene):
    _run_backend(benchmark, scene, "thread")


def test_backend_process(benchmark, scene):
    _run_backend(benchmark, scene, "process")
