"""Supporting bench: the multilevel partitioner behaves like one.

Not a table in the paper, but every Table-1 number sits on top of the
partitioner, so its quality envelope is benchmarked explicitly: cut
growth with k on structured grids, balance under one and two
constraints, recursive-bisection vs direct multilevel k-way, and
coarsening throughput.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph.build import grid_graph
from repro.graph.metrics import edge_cut, load_imbalance
from repro.partition.coarsen import coarsen
from repro.partition.kway import partition_kway
from repro.partition.matching import heavy_edge_matching
from repro.partition.mlkway import multilevel_kway

from .conftest import record, strong_options


@pytest.mark.parametrize("k", [4, 16, 64])
def test_partition_grid_quality(benchmark, k):
    """50×50 grid: cut should stay within a small factor of the ideal
    straight-cut tiling and balance within tolerance."""
    g = grid_graph(50, 50)
    opts = strong_options()

    part = benchmark.pedantic(
        lambda: partition_kway(g, k, opts), rounds=1, iterations=1
    )
    cut = edge_cut(g, part)
    imb = load_imbalance(g, part, k).max()
    # ideal tiling of a 50x50 grid into k squares cuts ~2*50*(sqrt(k)-1)
    ideal = 2 * 50 * (np.sqrt(k) - 1)
    record(benchmark, k=k, cut=cut, ideal_cut=ideal, imbalance=imb)
    assert imb <= 1.06
    assert cut <= 2.2 * ideal


def test_partition_two_constraint_overhead(benchmark, short_sequence):
    """Balancing the second (contact) constraint costs cut quality; the
    overhead factor is recorded for the record."""
    from repro.core.weights import build_contact_graph

    snap = short_sequence[0]
    g2 = build_contact_graph(snap, 1)
    g1 = g2.with_vwgts(g2.vwgts[:, :1])
    opts = strong_options()

    def run_both():
        p1 = partition_kway(g1, 8, opts)
        p2 = partition_kway(g2, 8, opts)
        return p1, p2

    p1, p2 = benchmark.pedantic(run_both, rounds=1, iterations=1)
    c1, c2 = edge_cut(g1, p1), edge_cut(g2, p2)
    record(benchmark, cut_1con=c1, cut_2con=c2, overhead=c2 / max(c1, 1))
    assert load_imbalance(g2, p2, 8).max() <= 1.12


def test_rb_vs_direct_kway(benchmark, short_sequence):
    """Recursive bisection vs the direct multilevel k-way driver on the
    two-constraint contact graph (architecture ablation)."""
    from repro.core.weights import build_contact_graph

    snap = short_sequence[0]
    g = build_contact_graph(snap, 5)
    opts = strong_options()

    def run_both():
        rb = partition_kway(g, 8, opts)
        ml = multilevel_kway(g, 8, opts)
        return rb, ml

    rb, ml = benchmark.pedantic(run_both, rounds=1, iterations=1)
    record(
        benchmark,
        rb_cut=edge_cut(g, rb),
        mlkway_cut=edge_cut(g, ml),
        rb_imb=float(load_imbalance(g, rb, 8).max()),
        mlkway_imb=float(load_imbalance(g, ml, 8).max()),
    )
    assert load_imbalance(g, ml, 8).max() <= 1.12


def test_matching_throughput(benchmark):
    """Heavy-edge matching over a 200×200 grid (vectorised rounds)."""
    g = grid_graph(200, 200)
    cmap, nc = benchmark(lambda: heavy_edge_matching(g, seed=0))
    record(benchmark, n=g.num_vertices, n_coarse=nc,
           shrink=nc / g.num_vertices)
    assert nc < 0.65 * g.num_vertices


def test_coarsening_throughput(benchmark):
    """Full coarsening hierarchy of a 120×120 grid."""
    g = grid_graph(120, 120)
    opts = strong_options()
    h = benchmark(lambda: coarsen(g, opts))
    record(benchmark, levels=len(h.levels),
           coarsest=h.coarsest.num_vertices)


def test_smoke_traced_fit(benchmark):
    """CI smoke benchmark: one traced MCML+DT fit at k=8 on a coarse
    scene, phase timings attached to the JSON artifact (rounds=1)."""
    from repro.core.mcml_dt import MCMLDTParams, MCMLDTPartitioner
    from repro.obs import Tracer
    from repro.sim.projectile import ImpactConfig
    from repro.sim.sequence import simulate_impact

    snap = simulate_impact(ImpactConfig(n_steps=1, refine=0.6))[0]
    tracer = Tracer()
    params = MCMLDTParams(options=strong_options())

    pt = benchmark.pedantic(
        lambda: MCMLDTPartitioner(8, params).fit(snap, tracer=tracer),
        rounds=1,
        iterations=1,
    )
    root = tracer.finish()
    record(
        benchmark,
        tracer=tracer,
        k=8,
        edgecut=pt.diagnostics.edge_cut_final,
        nodes=snap.mesh.num_nodes,
    )
    assert root.find("fit/partition/coarsen") is not None
    assert root.find("fit/refine-G'") is not None


def _scalar_candidate_pairs(boxes, points, point_ids):
    """Pre-vectorisation reference: the per-box/per-point Python loop
    the certified ``box_candidate_pairs`` kernel replaced (kept here,
    outside the linted tree, as the before/after yardstick)."""
    from scipy.spatial import cKDTree

    if len(points) == 0 or len(boxes) == 0:
        return []
    tree = cKDTree(points)
    centers = (boxes[:, 0] + boxes[:, 1]) / 2.0
    radii = np.linalg.norm(boxes[:, 1] - boxes[:, 0], axis=1) / 2.0
    out = []
    hits = tree.query_ball_point(centers, radii + 1e-12)
    for b, cand in enumerate(hits):
        if not cand:
            continue
        cand = np.asarray(cand, dtype=np.int64)
        pts = points[cand]
        inside = (
            (pts >= boxes[b, 0]) & (pts <= boxes[b, 1])
        ).all(axis=1)
        for pid in point_ids[cand[inside]]:
            out.append((b, int(pid)))
    return out


def test_smoke_traced_search(benchmark):
    """CI smoke benchmark: the contact-search inner kernel, vectorised
    (certified ``box_candidate_pairs``) vs the scalar Python loop it
    replaced — both measured, speedup recorded in the JSON artifact."""
    from time import perf_counter

    from repro.geometry.bbox import element_bboxes
    from repro.geometry.boxsearch import candidate_pairs
    from repro.sim.projectile import ImpactConfig
    from repro.sim.sequence import simulate_impact

    snap = simulate_impact(ImpactConfig(n_steps=1, refine=0.6))[0]
    boxes = element_bboxes(snap.mesh.nodes, snap.contact_faces)
    boxes[:, 0] -= 0.2
    boxes[:, 1] += 0.2
    points = snap.mesh.nodes[snap.contact_nodes]
    ids = np.asarray(snap.contact_nodes, dtype=np.int64)

    b_idx, node_ids = benchmark.pedantic(
        lambda: candidate_pairs(boxes, points, ids),
        rounds=3,
        iterations=1,
    )

    t0 = perf_counter()
    scalar = _scalar_candidate_pairs(boxes, points, ids)
    scalar_s = perf_counter() - t0
    t0 = perf_counter()
    candidate_pairs(boxes, points, ids)
    vector_s = perf_counter() - t0

    assert set(zip(b_idx.tolist(), node_ids.tolist())) == set(scalar)
    record(
        benchmark,
        n_boxes=len(boxes),
        n_points=len(points),
        n_pairs=len(b_idx),
        scalar_s=round(scalar_s, 6),
        vectorized_s=round(vector_s, 6),
        speedup=round(scalar_s / max(vector_s, 1e-12), 2),
    )
