"""Ablation: a-priori (§3 first-class) vs prediction-free partitioning.

When contacting surfaces are predictable, virtual edges between the
predicted pairs pull them into the same partition. The bench measures
the pair-colocation fraction and NRemote for the a-priori partitioner
against MCML+DT on a snapshot where the projectile has engaged the
upper plate, and times the extra prediction/augmentation work.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.apriori import AprioriParams, AprioriPartitioner
from repro.core.mcml_dt import MCMLDTParams, MCMLDTPartitioner
from repro.core.weights import build_contact_graph
from repro.graph.metrics import load_imbalance
from repro.metrics.comm import fe_comm

from .conftest import record, strong_options

K = 8


def engaged_snapshot(seq):
    for snap in seq:
        if snap.tip_z < 0.1:
            return snap
    return seq[-1]


def test_apriori_fit(benchmark, short_sequence):
    snap = engaged_snapshot(short_sequence)
    params = AprioriParams(options=strong_options())

    def fit():
        return AprioriPartitioner(K, params).fit(snap)

    ap = benchmark.pedantic(fit, rounds=1, iterations=1)
    graph = build_contact_graph(snap)
    record(
        benchmark,
        predicted_pairs=len(ap.predicted_pairs),
        colocation=ap.colocation_fraction(),
        fe_comm=fe_comm(graph, ap.part),
        imbalance=float(load_imbalance(graph, ap.part, K).max()),
        n_remote=ap.search_plan(snap).n_remote,
    )


def test_apriori_vs_mcml_colocation(benchmark, short_sequence):
    """Virtual edges must colocate predicted pairs better than the
    prediction-free MCML+DT partition does."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    snap = engaged_snapshot(short_sequence)
    ap = AprioriPartitioner(
        K, AprioriParams(options=strong_options())
    ).fit(snap)
    mc = MCMLDTPartitioner(
        K, MCMLDTParams(options=strong_options())
    ).fit(snap)
    pairs = ap.predicted_pairs
    mc_coloc = float(
        (mc.part[pairs[:, 0]] == mc.part[pairs[:, 1]]).mean()
    ) if len(pairs) else 1.0
    record(
        benchmark,
        apriori_colocation=ap.colocation_fraction(),
        mcml_colocation=mc_coloc,
    )
    assert ap.colocation_fraction() >= mc_coloc
