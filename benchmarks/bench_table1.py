"""Table 1: MCML+DT vs ML+RCB over the 100-snapshot sequence.

Regenerates the paper's headline table — FEComm / NTNodes / NRemote for
MCML+DT and FEComm / M2MComm / UpdComm / NRemote for ML+RCB, averaged
over the sequence — and prints it in the paper's layout. The shape
claims under test (paper §5.2):

* ML+RCB's raw FEComm is lower (it balances one constraint, not two);
* adding the 2×M2MComm round trip makes ML+RCB's total FE-side
  communication higher than MCML+DT's;
* NRemote is comparable at small k;
* NTNodes and UpdComm are small relative to the other overheads.
"""

from __future__ import annotations

import pytest

from repro.core.mcml_dt import MCMLDTParams
from repro.core.ml_rcb import MLRCBParams
from repro.core.pipeline import evaluate_mcml_dt, evaluate_ml_rcb
from repro.metrics.report import MetricTable
from repro.partition.config import PartitionOptions

from .conftest import BENCH_KS, record, strong_options

_RESULTS = {}


def _params():
    return (
        MCMLDTParams(options=strong_options()),
        MLRCBParams(options=strong_options()),
    )


@pytest.mark.parametrize("k", BENCH_KS)
def test_table1_mcml_dt(benchmark, bench_sequence, k):
    mcml_params, _ = _params()

    def run():
        return evaluate_mcml_dt(bench_sequence, k, mcml_params)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    _RESULTS[("MCML+DT", k)] = result
    record(
        benchmark,
        fe_comm=result.mean("fe_comm"),
        nt_nodes=result.mean("nt_nodes"),
        n_remote=result.mean("n_remote"),
        imbalance_fe=result.mean("imbalance_fe"),
        imbalance_search=result.mean("imbalance_search"),
    )


@pytest.mark.parametrize("k", BENCH_KS)
def test_table1_ml_rcb(benchmark, bench_sequence, k):
    _, ml_params = _params()

    def run():
        return evaluate_ml_rcb(bench_sequence, k, ml_params)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    _RESULTS[("ML+RCB", k)] = result
    record(
        benchmark,
        fe_comm=result.mean("fe_comm"),
        n_remote=result.mean("n_remote"),
        m2m_comm=result.mean("m2m_comm"),
        upd_comm=result.mean("upd_comm"),
        imbalance_fe=result.mean("imbalance_fe"),
    )


@pytest.mark.parametrize("k", BENCH_KS)
def test_table1_shape_claims(benchmark, bench_sequence, k):
    """Assert the paper's qualitative claims on the measured values
    (runs after the two benches above populate the cache). The trivial
    benchmark call keeps this assertion active under --benchmark-only.
    """
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    mc = _RESULTS.get(("MCML+DT", k))
    ml = _RESULTS.get(("ML+RCB", k))
    if mc is None or ml is None:
        pytest.skip("table1 benches must run first (same session)")

    # claim 1: raw FEComm favours ML+RCB (one constraint vs two)
    assert ml.mean("fe_comm") <= mc.mean("fe_comm") * 1.10

    # claim 2: with the 2×M2MComm round trip, ML+RCB needs more total
    # FE-side communication than MCML+DT
    assert ml.total_fe_side_comm() > mc.total_fe_side_comm()

    # claim 3: NRemote comparable — within a small factor either way
    assert mc.mean("n_remote") <= 2.5 * max(ml.mean("n_remote"), 1.0)

    # claim 4: NTNodes and UpdComm are small next to FEComm
    assert mc.mean("nt_nodes") < mc.mean("fe_comm")
    assert ml.mean("upd_comm") < ml.mean("fe_comm")


def test_table1_print(benchmark, bench_sequence, capsys):
    """Emit the paper-layout table into the bench log."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    if len(_RESULTS) < 2 * len(BENCH_KS):
        pytest.skip("table1 benches must run first (same session)")
    table = MetricTable(
        title="Table 1 (reproduction) — averages over 100 snapshots",
        columns=["FEComm", "NTNodes", "NRemote", "M2MComm", "UpdComm",
                 "FE-side total"],
    )
    for k in BENCH_KS:
        mc = _RESULTS[("MCML+DT", k)]
        ml = _RESULTS[("ML+RCB", k)]
        table.add_row(
            f"{k}-way MCML+DT",
            [mc.mean("fe_comm"), mc.mean("nt_nodes"), mc.mean("n_remote"),
             0, 0, mc.total_fe_side_comm()],
        )
        table.add_row(
            f"{k}-way ML+RCB",
            [ml.mean("fe_comm"), 0, ml.mean("n_remote"),
             ml.mean("m2m_comm"), ml.mean("upd_comm"),
             ml.total_fe_side_comm()],
        )
    with capsys.disabled():
        print()
        print(table.render())
