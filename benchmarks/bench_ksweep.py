"""k-sweep: how the MCML+DT vs ML+RCB balance shifts with partition
count.

The paper reports two k values; this sweep fills in the curve — the
FE-side total ratio (ML+RCB / MCML+DT) and the NRemote ratio as
functions of k — showing the trends the paper's Table 1 samples:
ML+RCB's mesh-to-mesh overhead dominates at small k, while its
advantage on raw FEComm grows with k.
"""

from __future__ import annotations

import pytest

from repro.core.mcml_dt import MCMLDTParams
from repro.core.ml_rcb import MLRCBParams
from repro.core.pipeline import evaluate_mcml_dt, evaluate_ml_rcb

from .conftest import record, strong_options

KS = (4, 8, 16)
_SWEEP = {}


@pytest.mark.parametrize("k", KS)
def test_ksweep(benchmark, short_sequence, k):
    def run():
        mc = evaluate_mcml_dt(
            short_sequence, k, MCMLDTParams(options=strong_options())
        )
        ml = evaluate_ml_rcb(
            short_sequence, k, MLRCBParams(options=strong_options())
        )
        return mc, ml

    mc, ml = benchmark.pedantic(run, rounds=1, iterations=1)
    _SWEEP[k] = (mc, ml)
    record(
        benchmark,
        k=k,
        mcml_total=mc.total_fe_side_comm(),
        ml_total=ml.total_fe_side_comm(),
        ratio=ml.total_fe_side_comm() / mc.total_fe_side_comm(),
        nremote_ratio=mc.mean("n_remote") / max(ml.mean("n_remote"), 1.0),
    )


def test_ksweep_trend(benchmark, short_sequence):
    """The FE-side advantage of MCML+DT shrinks as k grows (the
    paper's 72% → 29% trend)."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    if len(_SWEEP) < len(KS):
        pytest.skip("sweep benches must run first")
    ratios = [
        _SWEEP[k][1].total_fe_side_comm()
        / _SWEEP[k][0].total_fe_side_comm()
        for k in KS
    ]
    record(benchmark, **{f"ratio_k{k}": r for k, r in zip(KS, ratios)})
    # monotone non-increasing within noise tolerance
    for a, b in zip(ratios, ratios[1:]):
        assert b <= a * 1.10
    # and the small-k end clearly favours MCML+DT
    assert ratios[0] > 1.0
