"""Ablation: sensitivity to the reshaping bounds max_p / max_i (§4.2).

The paper recommends ``n/k^1.5 <= max_p <= n/k`` and
``n/k^2.5 <= max_i <= n/k²``, arguing small values make post-refinement
easy (good cut/balance, bigger trees) while large values strand weight
in immovable regions (balance violations, worse cut). The bench sweeps
inside and outside those windows and records cut, balance, and
descriptor-tree size per setting.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.mcml_dt import MCMLDTParams, MCMLDTPartitioner
from repro.core.weights import build_contact_graph
from repro.graph.metrics import edge_cut, load_imbalance
from repro.metrics.comm import fe_comm

from .conftest import record, strong_options

K = 8

# positions within (and beyond) the paper's windows, as exponents e in
# max_p = n/k^e: the window is e in [1, 1.5]; 0.5 is out-of-range high
SETTINGS = {
    "window-low (n/k^1.5, n/k^2.5)": (1.5, 2.5),
    "window-mid (n/k^1.25, n/k^2.25)": (1.25, 2.25),
    "window-high (n/k, n/k^2)": (1.0, 2.0),
    "too-high (n/k^0.5, n/k^1.5)": (0.5, 1.5),
}


@pytest.mark.parametrize("setting", list(SETTINGS))
def test_maxpi_sensitivity(benchmark, short_sequence, setting):
    snap = short_sequence[0]
    n = len(snap.mesh.used_nodes())
    ep, ei = SETTINGS[setting]
    max_p = max(1, int(n / K**ep))
    max_i = max(1, int(n / K**ei))
    params = MCMLDTParams(
        max_p=max_p, max_i=max_i, options=strong_options()
    )

    def fit():
        return MCMLDTPartitioner(K, params).fit(snap)

    pt = benchmark.pedantic(fit, rounds=1, iterations=1)
    graph = build_contact_graph(snap)
    tree, _ = pt.build_descriptors(snap)
    imb = load_imbalance(graph, pt.part, K)
    record(
        benchmark,
        max_p=max_p,
        max_i=max_i,
        edge_cut=edge_cut(graph, pt.part),
        fe_comm=fe_comm(graph, pt.part),
        imbalance_fe=float(imb[0]),
        imbalance_search=float(imb[1]),
        reshape_tree_nodes=pt.diagnostics.reshape_tree_nodes,
        descriptor_nodes=tree.n_nodes,
    )


def test_maxpi_in_window_beats_too_high(benchmark, short_sequence):
    """The paper's claim: bounds above the window hurt balance (heavy
    immovable regions)."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    snap = short_sequence[0]
    n = len(snap.mesh.used_nodes())
    graph = build_contact_graph(snap)

    def run(ep, ei):
        params = MCMLDTParams(
            max_p=max(1, int(n / K**ep)),
            max_i=max(1, int(n / K**ei)),
            options=strong_options(),
        )
        result = MCMLDTPartitioner(K, params).fit(snap)
        return load_imbalance(graph, result.labels, K).max()

    in_window = run(1.25, 2.25)
    too_high = run(0.5, 1.5)
    record(benchmark, in_window_imb=in_window, too_high_imb=too_high)
    assert in_window <= too_high + 0.02
