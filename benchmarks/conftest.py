"""Shared benchmark fixtures.

Benchmarks use ``ImpactConfig.paper_scale()`` (≈18k nodes, ≈16%
contact nodes — a ~9× linear reduction of the paper's 156k-node EPIC
mesh). The full 100-snapshot sequence is generated once per session.
Table-1-style benches run each algorithm once (rounds=1); micro-benches
(tree induction, splits, queries) use normal pytest-benchmark
statistics.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import numpy as np
import pytest

from repro.partition.config import PartitionOptions
from repro.sim.projectile import ImpactConfig
from repro.sim.sequence import simulate_impact

#: results registered by ``bench_backends`` during the session; when
#: non-empty, ``pytest_sessionfinish`` summarises them into
#: ``BENCH_backends.json`` at the repo root (uploaded from CI)
BACKEND_RESULTS: dict = {}

_BACKEND_REPORT = Path(__file__).resolve().parent.parent / (
    "BENCH_backends.json"
)


def register_backend_result(backend: str, **payload) -> None:
    """Record one backend's measured contact-search run for the
    end-of-session ``BENCH_backends.json`` report."""
    BACKEND_RESULTS[backend] = payload


#: per-kernel pure-vs-compiled timings registered by ``bench_kernels``;
#: summarised into ``BENCH_kernels.json`` at session end (CI artifact)
KERNEL_RESULTS: dict = {}

_KERNEL_REPORT = Path(__file__).resolve().parent.parent / (
    "BENCH_kernels.json"
)


def register_kernel_result(kernel: str, **payload) -> None:
    """Record one kernel's pure-vs-compiled measurement for the
    end-of-session ``BENCH_kernels.json`` report."""
    KERNEL_RESULTS[kernel] = payload


#: service latency/throughput measurements registered by
#: ``bench_service``; summarised into ``BENCH_service.json`` at session
#: end (CI artifact)
SERVICE_RESULTS: dict = {}

_SERVICE_REPORT = Path(__file__).resolve().parent.parent / (
    "BENCH_service.json"
)


def register_service_result(name: str, **payload) -> None:
    """Record one service measurement (cold/cached latency, coalesced
    throughput) for the end-of-session ``BENCH_service.json`` report."""
    SERVICE_RESULTS[name] = payload


def _write_service_report(session) -> None:
    cold = SERVICE_RESULTS.get("cold_vs_cached", {})
    ratio = None
    if cold.get("cold_s") and cold.get("cached_s"):
        ratio = round(cold["cached_s"] / cold["cold_s"], 5)
    report = {
        "schema": "repro.bench-service/1",
        "cpu_count": os.cpu_count(),
        "results": SERVICE_RESULTS,
        "cached_over_cold_ratio": ratio,
    }
    _SERVICE_REPORT.write_text(json.dumps(report, indent=2) + "\n")
    rep = session.config.pluginmanager.get_plugin("terminalreporter")
    if rep is not None:
        rep.write_line(f"service report written to {_SERVICE_REPORT}")


def _write_kernel_report(session) -> None:
    from repro.runtime.compiled import numba_available

    compiled_active = numba_available()
    report = {
        "schema": "repro.bench-kernels/1",
        "cpu_count": os.cpu_count(),
        "numba_available": compiled_active,
        "platform_note": (
            "compiled tier active (numba jit)"
            if compiled_active
            else (
                "numba is not installed on this platform: the compiled "
                "tier falls back per kernel to the pure NumPy path, so "
                "compiled timings equal pure dispatch timings and no "
                "speedup is expected (the >=1.5x contact-search target "
                "applies only where numba is importable)"
            )
        ),
        "results": KERNEL_RESULTS,
    }
    _KERNEL_REPORT.write_text(json.dumps(report, indent=2) + "\n")
    rep = session.config.pluginmanager.get_plugin("terminalreporter")
    if rep is not None:
        rep.write_line(f"kernel report written to {_KERNEL_REPORT}")


#: distributed-backend measurements registered by ``bench_tcp``;
#: summarised into ``BENCH_tcp.json`` at session end (CI artifact)
TCP_RESULTS: dict = {}

_TCP_REPORT = Path(__file__).resolve().parent.parent / "BENCH_tcp.json"


def register_tcp_result(name: str, **payload) -> None:
    """Record one distributed-backend measurement (search run or
    superstep dispatch overhead) for the end-of-session
    ``BENCH_tcp.json`` report."""
    TCP_RESULTS[name] = payload


def _write_tcp_report(session) -> None:
    report = {
        "schema": "repro.bench-tcp/1",
        "cpu_count": os.cpu_count(),
        "results": TCP_RESULTS,
    }
    _TCP_REPORT.write_text(json.dumps(report, indent=2) + "\n")
    rep = session.config.pluginmanager.get_plugin("terminalreporter")
    if rep is not None:
        rep.write_line(f"tcp report written to {_TCP_REPORT}")


def pytest_sessionfinish(session, exitstatus):
    if SERVICE_RESULTS:
        _write_service_report(session)
    if KERNEL_RESULTS:
        _write_kernel_report(session)
    if TCP_RESULTS:
        _write_tcp_report(session)
    if not BACKEND_RESULTS:
        return
    serial = BACKEND_RESULTS.get("serial", {})
    process = BACKEND_RESULTS.get("process", {})
    speedup = None
    if serial.get("best_s") and process.get("best_s"):
        speedup = round(serial["best_s"] / process["best_s"], 3)
    report = {
        "schema": "repro.bench-backends/1",
        "cpu_count": os.cpu_count(),
        "results": BACKEND_RESULTS,
        "process_speedup_vs_serial": speedup,
    }
    _BACKEND_REPORT.write_text(json.dumps(report, indent=2) + "\n")
    rep = session.config.pluginmanager.get_plugin("terminalreporter")
    if rep is not None:
        rep.write_line(f"backend report written to {_BACKEND_REPORT}")

# partition counts for the headline comparison. The paper used 25 and
# 100 on a mesh ~9× larger; since partition interface effects scale
# with nodes-per-partition, our (8, 25) probes the same regimes the
# paper's (25, 100) did.
BENCH_KS = (8, 25)


def strong_options(seed: int = 0) -> PartitionOptions:
    """Partitioner options for evaluation runs: more initial trials and
    refinement passes than the test defaults (quality over speed, as a
    production METIS run would)."""
    return PartitionOptions(
        seed=seed,
        n_init_trials=12,
        fm_passes=10,
        kway_passes=16,
        fm_neg_moves=120,
    )


@pytest.fixture(scope="session")
def bench_sequence():
    """The 100-snapshot evaluation sequence (paper §5 analogue)."""
    return simulate_impact(ImpactConfig.paper_scale())


@pytest.fixture(scope="session")
def short_sequence():
    """25 default-resolution snapshots for the heavier per-step
    ablations (smaller mesh: ablations sweep many configurations)."""
    return simulate_impact(ImpactConfig(n_steps=25))


@pytest.fixture()
def options():
    return strong_options()


def record(benchmark, tracer=None, **info):
    """Attach metric values to the benchmark JSON/terminal output.

    Passing a recording :class:`repro.obs.Tracer` additionally flattens
    its span tree into ``extra_info["spans"]`` as
    ``{path: {"n_calls": ..., "total_ms": ...}}`` so phase timings ride
    along in the ``--benchmark-json`` artifact.
    """
    for key, value in info.items():
        benchmark.extra_info[key] = value
    if tracer is not None and getattr(tracer, "enabled", False):
        benchmark.extra_info["spans"] = {
            path: {
                "n_calls": span.n_calls,
                "total_ms": round(span.total_s * 1e3, 3),
                "self_ms": round(span.self_s * 1e3, 3),
            }
            for path, span in tracer.root.walk()
        }
