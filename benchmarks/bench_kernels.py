"""Pure vs compiled execution tier for every certified kernel.

Each kernel is timed through its real dispatcher (the callable the
library actually invokes) under ``REPRO_KERNELS=pure`` and
``REPRO_KERNELS=compiled`` on a representative workload, warm-cache:
the compiled tier is warmed first so jit compilation is paid (and
recorded) outside the timed region.  Results land in
``BENCH_kernels.json`` via ``benchmarks/conftest.py`` (CI artifact).

Correctness rides along: every timed pair of runs must be bit-identical
(the conformance suite's invariant, re-asserted on the bench workload
so the report can never show a speedup over a wrong answer).

The smoke-level regression guard: when the compiled tier is genuinely
active (numba importable, no fallback), the contact-search kernels must
not be slower compiled than pure on warm repeat runs.  Where numba is
absent the tier falls back per kernel, timings converge by
construction, and the artifact's ``platform_note`` documents the cap
instead of failing the bench.
"""

from __future__ import annotations

import time
import warnings

import numpy as np
import pytest

from repro.kernels import declared_kernels, kernel_dispatchers
from repro.runtime import compiled as rc

from .conftest import register_kernel_result

ROUNDS = 5

#: kernels on the contact-search hot path (ROADMAP item 1's
#: `run/global-search/search` span) — the regression-guarded set
CONTACT_SEARCH_KERNELS = {
    "repro.geometry.boxsearch.box_candidate_pairs",
    "repro.core.contact_search.row_majority",
}


def _bbox_workload(rng):
    boxes_a = rng.normal(size=(400, 2, 3))
    boxes_a.sort(axis=1)
    boxes_b = rng.normal(size=(400, 2, 3))
    boxes_b.sort(axis=1)
    return (boxes_a, boxes_b), {"pad": 0.1}


def _boxsearch_workload(rng):
    boxes = rng.normal(size=(5000, 2, 3))
    boxes.sort(axis=1)
    points = rng.normal(size=(20000, 3))
    box_index = rng.integers(0, 5000, 200000).astype(np.int64)
    point_index = rng.integers(0, 20000, 200000).astype(np.int64)
    return (boxes, points, box_index, point_index), {}


def _row_majority_workload(rng):
    return (rng.integers(0, 16, (20000, 8)).astype(np.int64),), {}


def _split_curve_workload(rng):
    coords = np.round(rng.normal(size=100000), 3)  # tie-heavy
    labels = rng.integers(0, 8, 100000).astype(np.int64)
    return (coords, labels), {}


WORKLOADS = {
    "repro.geometry.bbox.bboxes_intersect_matrix": _bbox_workload,
    "repro.geometry.boxsearch.box_candidate_pairs": _boxsearch_workload,
    "repro.core.contact_search.row_majority": _row_majority_workload,
    "repro.dtree.splitter.split_index_curve": _split_curve_workload,
}


def _as_tuple(out):
    return out if isinstance(out, tuple) else (out,)


def _best_of(fn, args, kwargs, rounds=ROUNDS):
    best = None
    result = None
    for _ in range(rounds):
        t0 = time.perf_counter()
        result = fn(*args, **kwargs)
        dt = time.perf_counter() - t0
        best = dt if best is None else min(best, dt)
    return best, result


def test_workloads_cover_every_kernel():
    assert set(WORKLOADS) == set(declared_kernels())


@pytest.mark.parametrize("name", sorted(WORKLOADS))
def test_kernel_pure_vs_compiled(name):
    args, kwargs = WORKLOADS[name](np.random.default_rng(7))
    dispatcher = kernel_dispatchers()[name]
    try:
        rc.set_kernel_tier("pure")
        pure_best, pure_out = _best_of(dispatcher, args, kwargs)

        rc.set_kernel_tier("compiled")
        before = rc.stats_snapshot()
        with warnings.catch_warnings():
            # numba-absent fallback warns once per kernel; the bench
            # records the fact instead of printing it
            warnings.simplefilter("ignore", RuntimeWarning)
            dispatcher(*args, **kwargs)  # warm: compile off-clock
            compiled_best, compiled_out = _best_of(
                dispatcher, args, kwargs
            )
        delta = rc.stats_delta(before)
    finally:
        rc.set_kernel_tier(None)

    compiled_active = (
        delta["kernel_calls_compiled"] > 0
        and name not in rc.fallback_reasons()
    )
    for w, g in zip(_as_tuple(pure_out), _as_tuple(compiled_out)):
        assert w.dtype == g.dtype and w.shape == g.shape
        assert np.array_equal(w, g)

    speedup = round(pure_best / compiled_best, 3) if compiled_best else None
    register_kernel_result(
        name,
        pure_best_s=round(pure_best, 6),
        compiled_best_s=round(compiled_best, 6),
        speedup_compiled_vs_pure=speedup,
        compiled_active=compiled_active,
        compile_seconds=round(delta["kernel_compile_seconds"], 6),
        fallback_reason=rc.fallback_reasons().get(name),
        rounds=ROUNDS,
    )

    if compiled_active and name in CONTACT_SEARCH_KERNELS:
        # the regression guard: warm compiled contact-search must not
        # lose to pure — otherwise the tier is a pessimisation
        assert compiled_best <= pure_best, (
            f"{name}: compiled warm path ({compiled_best:.6f}s) is "
            f"slower than pure ({pure_best:.6f}s)"
        )
