"""Ablation: the contact-contact edge weight (§5 set it to 5).

Cutting an edge between two contact points costs communication in both
computation phases, so the paper up-weights those edges. The sweep
records, per weight: how many contact-contact edges the partition cuts
(should fall as the weight rises), the FE communication volume (should
rise — the partitioner sacrifices ordinary edges), and NRemote.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.mcml_dt import MCMLDTParams, MCMLDTPartitioner
from repro.core.weights import build_contact_graph
from repro.metrics.comm import fe_comm

from .conftest import record, strong_options

K = 8
WEIGHTS = (1, 5, 10)


def cut_contact_edges(graph, snap, part):
    """Number of contact-contact edges cut by ``part``."""
    n = graph.num_vertices
    is_contact = np.zeros(n, dtype=bool)
    is_contact[snap.contact_nodes] = True
    src = np.repeat(np.arange(n), graph.degrees())
    both = is_contact[src] & is_contact[graph.adjncy]
    cut = part[src] != part[graph.adjncy]
    return int((both & cut).sum() // 2)


@pytest.mark.parametrize("weight", WEIGHTS)
def test_edgeweight_sweep(benchmark, short_sequence, weight):
    snap = short_sequence[0]
    params = MCMLDTParams(
        contact_edge_weight=weight, options=strong_options()
    )

    def fit():
        return MCMLDTPartitioner(K, params).fit(snap)

    pt = benchmark.pedantic(fit, rounds=1, iterations=1)
    graph = build_contact_graph(snap, weight)
    plan = pt.search_plan(snap)
    record(
        benchmark,
        weight=weight,
        cut_contact_edges=cut_contact_edges(graph, snap, pt.part),
        fe_comm=fe_comm(graph, pt.part),
        n_remote=plan.n_remote,
    )


def test_edgeweight_protects_contact_edges(benchmark, short_sequence):
    """Weight 5 must cut fewer contact-contact edges than weight 1 in
    the multi-constraint partition itself (the mechanism the paper
    relies on). Measured pre-reshape: the P→P'→P'' step optimises
    geometry, not the weighted cut, and can give some of the protection
    back — both values are recorded."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    snap = short_sequence[0]

    def run(weight, reshape):
        params = MCMLDTParams(
            contact_edge_weight=weight, reshape=reshape,
            options=strong_options(),
        )
        result = MCMLDTPartitioner(K, params).fit(snap)
        graph = build_contact_graph(snap, weight)
        return cut_contact_edges(graph, snap, result.labels)

    cut1 = run(1, reshape=False)
    cut5 = run(5, reshape=False)
    record(
        benchmark,
        cut_w1=cut1,
        cut_w5=cut5,
        cut_w1_reshaped=run(1, reshape=True),
        cut_w5_reshaped=run(5, reshape=True),
    )
    assert cut5 <= cut1
