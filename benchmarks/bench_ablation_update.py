"""Ablation: the §4.3 update strategies over a running simulation.

Replays the sequence under descriptor-only updates, per-step
multi-constraint repartitioning, and the hybrid scheme, recording mean
descriptor-tree size, worst balance drift, and total vertices
redistributed — the three quantities whose trade-off motivates the
paper's hybrid recommendation.
"""

from __future__ import annotations

import pytest

from repro.core.mcml_dt import MCMLDTParams
from repro.core.update import UpdateStrategy, replay_sequence

from .conftest import record, strong_options

K = 8


@pytest.mark.parametrize(
    "strategy",
    [
        UpdateStrategy.DESCRIPTOR_ONLY,
        UpdateStrategy.REPARTITION,
        UpdateStrategy.HYBRID,
    ],
    ids=lambda s: s.value,
)
def test_update_strategy(benchmark, short_sequence, strategy):
    params = MCMLDTParams(options=strong_options())

    def run():
        return replay_sequence(
            short_sequence, K, strategy, period=8, params=params
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    record(
        benchmark,
        mean_nt_nodes=result.mean_nt_nodes(),
        max_imbalance=result.max_imbalance(),
        total_moved=result.total_moved(),
    )


def test_update_tradeoff_shape(benchmark, short_sequence):
    """Descriptor-only must move nothing; repartitioning must bound the
    imbalance drift at least as tightly; hybrid must move less than
    per-step repartitioning."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    params = MCMLDTParams(options=strong_options())
    fixed = replay_sequence(
        short_sequence, K, UpdateStrategy.DESCRIPTOR_ONLY, params=params
    )
    repart = replay_sequence(
        short_sequence, K, UpdateStrategy.REPARTITION, params=params
    )
    hybrid = replay_sequence(
        short_sequence, K, UpdateStrategy.HYBRID, period=8, params=params
    )
    record(
        benchmark,
        fixed_imb=fixed.max_imbalance(),
        repart_imb=repart.max_imbalance(),
        hybrid_imb=hybrid.max_imbalance(),
        repart_moved=repart.total_moved(),
        hybrid_moved=hybrid.total_moved(),
    )
    assert fixed.total_moved() == 0
    assert repart.max_imbalance() <= fixed.max_imbalance() + 0.05
    assert hybrid.total_moved() <= repart.total_moved()
