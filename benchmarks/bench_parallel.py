"""The §6 parallel formulations: communication and throughput.

The paper argues MCML+DT parallelises because parallel multi-constraint
partitioning, refinement, and decision-tree induction all exist. These
benches execute the distributed tree induction and distributed RCB on
the simulated runtime at evaluation scale and record what actually
crossed the (simulated) network — the histogram/count protocols move a
small fraction of what gathering the points would.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.mcml_dt import MCMLDTParams, MCMLDTPartitioner
from repro.dtree.parallel import parallel_induce_pure_tree
from repro.dtree.query import predict_partition
from repro.geometry.parallel_rcb import parallel_rcb

from .conftest import record, strong_options

K = 8


@pytest.fixture(scope="module")
def distributed_points(bench_sequence):
    snap = bench_sequence[0]
    pt = MCMLDTPartitioner(
        K, MCMLDTParams(options=strong_options())
    ).fit(snap)
    coords = snap.mesh.nodes[snap.contact_nodes]
    labels = pt.part[snap.contact_nodes]
    return coords, labels


def test_parallel_tree_induction(benchmark, distributed_points):
    coords, labels = distributed_points

    def run():
        return parallel_induce_pure_tree(
            coords, labels, K, owner_rank=labels, n_ranks=K
        )

    tree, ledger = benchmark.pedantic(run, rounds=1, iterations=1)
    assert np.array_equal(predict_partition(tree, coords), labels)
    gather_everything = len(coords) * coords.shape[1]
    record(
        benchmark,
        n_points=len(coords),
        nt_nodes=tree.n_nodes,
        hist_items=ledger.items("dtree-hist"),
        gather_items=ledger.items("dtree-gather"),
        naive_gather_cost=gather_everything,
    )
    # point-gather traffic must be a small fraction of shipping all
    # points to one rank
    assert ledger.items("dtree-gather") < 0.5 * len(coords)


def test_parallel_rcb_at_scale(benchmark, distributed_points):
    coords, labels = distributed_points

    def run():
        return parallel_rcb(coords, K, owner_rank=labels, n_ranks=K)

    rcb_labels, ledger = benchmark.pedantic(run, rounds=1, iterations=1)
    counts = np.bincount(rcb_labels, minlength=K)
    record(
        benchmark,
        n_points=len(coords),
        count_items=ledger.items("rcb-count"),
        extent_items=ledger.items("rcb-extent"),
        max_count=int(counts.max()),
        min_count=int(counts.min()),
    )
    assert counts.min() > 0
    assert ledger.items("rcb-count") < len(coords)


def test_parallel_partition_at_scale(benchmark, bench_sequence):
    """Distributed multilevel partitioning of the full contact graph:
    the complete §6 claim, with the ledger separating halo traffic from
    the (much smaller) coarsest-graph gather."""
    from repro.core.weights import build_contact_graph
    from repro.graph.metrics import edge_cut, load_imbalance
    from repro.partition.kway import partition_kway
    from repro.partition.parallel_kway import parallel_partition_kway

    snap = bench_sequence[0]
    graph = build_contact_graph(snap, 5)

    def run():
        return parallel_partition_kway(
            graph, K, n_ranks=K, options=strong_options()
        )

    res = benchmark.pedantic(run, rounds=1, iterations=1)
    serial = partition_kway(graph, K, strong_options())
    record(
        benchmark,
        levels=res.levels,
        halo_items=res.ledger.items("pk-halo"),
        gather_items=res.ledger.items("pk-gather"),
        par_cut=edge_cut(graph, res.part),
        serial_cut=edge_cut(graph, serial),
        par_imbalance=float(load_imbalance(graph, res.part, K).max()),
    )
    assert load_imbalance(graph, res.part, K).max() <= 1.30
    # the gathered coarse graph must be much smaller than the input
    assert res.ledger.items("pk-gather") < graph.num_vertices


def test_parallel_repartition_at_scale(benchmark, bench_sequence):
    """Distributed diffusion repartitioning after a mid-run drift: the
    §4.3 update executed as an SPMD protocol."""
    from repro.core.weights import build_contact_graph
    from repro.graph.metrics import load_imbalance
    from repro.partition.parallel_repartition import (
        parallel_diffusion_repartition,
    )

    snap0 = bench_sequence[0]
    snap_late = bench_sequence[60]
    pt = MCMLDTPartitioner(
        K, MCMLDTParams(options=strong_options())
    ).fit(snap0)
    graph_late = build_contact_graph(snap_late)
    before = load_imbalance(graph_late, pt.part, K).max()

    def run():
        return parallel_diffusion_repartition(
            graph_late, pt.part, K, strong_options()
        )

    res = benchmark.pedantic(run, rounds=1, iterations=1)
    after = load_imbalance(graph_late, res.part, K).max()
    record(
        benchmark,
        imbalance_before=float(before),
        imbalance_after=float(after),
        n_moved=res.n_moved,
        migrate_items=res.ledger.items("repart-migrate"),
        rounds=res.rounds,
    )
    assert after <= before + 1e-9
