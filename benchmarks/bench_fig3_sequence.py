"""Figure 3: stages of the penetration simulation.

The paper's Figure 3 shows mesh snapshots at several stages. The
synthetic analogue is characterised by its per-snapshot statistics:
projectile nose depth, live element count (erosion), and contact
face/node counts (the contact surface grows as the channel opens).
The bench times full sequence generation and prints the stage table.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.metrics.report import format_table
from repro.sim.projectile import ImpactConfig
from repro.sim.sequence import simulate_impact

from .conftest import record


def test_fig3_sequence_generation(benchmark):
    """Time full 100-snapshot generation at evaluation scale."""
    seq = benchmark.pedantic(
        lambda: simulate_impact(ImpactConfig.paper_scale()),
        rounds=1, iterations=1,
    )
    record(
        benchmark,
        snapshots=len(seq),
        nodes=seq.num_nodes,
        elements_start=seq[0].mesh.num_elements,
        elements_end=seq[-1].mesh.num_elements,
        contact_nodes_start=seq[0].num_contact_nodes,
        contact_nodes_end=seq[-1].num_contact_nodes,
    )


def test_fig3_stage_progression(benchmark, bench_sequence, capsys):
    """Verify the penetration arc and print the stage table."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    seq = bench_sequence

    tips = np.array([s.tip_z for s in seq])
    elems = np.array([s.mesh.num_elements for s in seq])
    cnodes = np.array([s.num_contact_nodes for s in seq])

    # monotone descent, monotone erosion
    assert (np.diff(tips) < 0).all()
    assert (np.diff(elems) <= 0).all()
    # the projectile actually penetrates: elements were eroded
    assert elems[-1] < elems[0]
    # the contact surface grows while the channel opens
    assert cnodes.max() > cnodes[0]
    # the nose traverses both plates during the run
    assert tips[0] > 0.0
    assert tips[-1] < -2.0

    rows = {}
    for s in seq:
        if s.step % 10 == 0 or s.step == len(seq) - 1:
            rows[f"step {s.step:3d}"] = [
                round(s.tip_z, 2), s.mesh.num_elements,
                s.num_contact_faces, s.num_contact_nodes,
            ]
    with capsys.disabled():
        print()
        print(format_table(
            "Figure 3 (reproduction) — simulation stages",
            ["tip_z", "live elements", "contact faces", "contact nodes"],
            rows,
        ))
