"""Global-search filters head-to-head: decision tree vs bounding box.

Times the two filters on the same snapshot and partition, and records
their false-positive behaviour: the tree filter sends each element only
to partitions whose descriptor regions it touches, while the bbox
filter sends it to every partition whose (overlapping) bounding box it
touches. Also benchmarks the end-to-end simulated-parallel search.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.contact_search import (
    parallel_contact_search,
    serial_candidate_pairs,
)
from repro.core.mcml_dt import MCMLDTParams, MCMLDTPartitioner
from repro.geometry.bbox import element_bboxes
from repro.geometry.boxsearch import bbox_filter_search
from repro.dtree.query import tree_filter_search

from .conftest import record, strong_options

K = 8


PAD = 0.3  # contact capture distance (plate spacing ≈ 0.41)


@pytest.fixture(scope="module")
def scene(bench_sequence):
    snap = bench_sequence[40]
    pt = MCMLDTPartitioner(
        K, MCMLDTParams(options=strong_options())
    ).fit(snap)
    tree, _ = pt.build_descriptors(snap)
    boxes = element_bboxes(snap.mesh.nodes, snap.contact_faces)
    boxes[:, 0] -= PAD
    boxes[:, 1] += PAD
    from repro.core.contact_search import face_owner_partition

    owner = face_owner_partition(pt.part, snap.contact_faces)
    coords = snap.mesh.nodes[snap.contact_nodes]
    point_part = pt.part[snap.contact_nodes]
    return snap, pt, tree, boxes, owner, coords, point_part


def test_tree_filter_throughput(benchmark, scene):
    snap, pt, tree, boxes, owner, coords, point_part = scene
    plan = benchmark(lambda: tree_filter_search(tree, boxes, owner, K))
    record(benchmark, n_elements=len(boxes), n_remote=plan.n_remote)


def test_bbox_filter_throughput(benchmark, scene):
    snap, pt, tree, boxes, owner, coords, point_part = scene
    plan = benchmark(
        lambda: bbox_filter_search(boxes, owner, coords, point_part, K)
    )
    record(benchmark, n_elements=len(boxes), n_remote=plan.n_remote)


def test_tree_filter_fewer_false_positives(benchmark, scene):
    """On the same partition, the tree filter's sends are a subset of
    the bbox filter's in aggregate (the paper's false-positive
    argument)."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    snap, pt, tree, boxes, owner, coords, point_part = scene
    tree_plan = tree_filter_search(tree, boxes, owner, K)
    bbox_plan = bbox_filter_search(boxes, owner, coords, point_part, K)
    record(
        benchmark,
        tree_n_remote=tree_plan.n_remote,
        bbox_n_remote=bbox_plan.n_remote,
    )
    assert tree_plan.n_remote <= bbox_plan.n_remote


def test_parallel_search_end_to_end(benchmark, scene):
    """Full simulated-parallel global search (exchange + local KD-tree
    detection on every rank)."""
    snap, pt, tree, boxes, owner, coords, point_part = scene
    plan = tree_filter_search(tree, boxes, owner, K)

    def run():
        return parallel_contact_search(
            plan, boxes, snap.contact_faces, coords,
            snap.contact_nodes, point_part, K,
        )

    pairs, ledger = benchmark(run)
    record(
        benchmark,
        candidates=len(pairs),
        exchanged=ledger.items("contact-exchange"),
    )


def test_serial_search_reference(benchmark, scene):
    snap, pt, tree, boxes, owner, coords, point_part = scene
    pairs = benchmark(
        lambda: serial_candidate_pairs(
            boxes, snap.contact_faces, coords, snap.contact_nodes
        )
    )
    record(benchmark, candidates=len(pairs))
