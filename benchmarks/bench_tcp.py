"""Distributed tcp backend measurements (loopback, 2 agents).

Two numbers matter for the socket transport and both land in
``BENCH_tcp.json`` (``benchmarks/conftest.py``):

* the parallel contact search end-to-end over sockets, asserted
  bit-identical to the serial run it is compared against (pairs and
  ledger), with the traffic the wire moved; and
* raw superstep dispatch overhead — the round-trip cost of shipping a
  trivial superstep to the fleet and merging its replies, which bounds
  how fine-grained distributed supersteps can be.

Loopback with locally spawned agents, so the measurement captures the
protocol cost (framing, pickling, scheduling), not network latency.
"""

from __future__ import annotations

import time
from functools import partial

import pytest

from repro.core.contact_search import parallel_contact_search
from repro.core.mcml_dt import MCMLDTParams, MCMLDTPartitioner
from repro.geometry.bbox import element_bboxes
from repro.obs.tracer import Tracer
from repro.runtime.backends import build_backend
from repro.runtime.backends.base import call_without_arg
from repro.runtime.ledger import CommLedger
from repro.sim.projectile import ImpactConfig
from repro.sim.sequence import simulate_impact

from .conftest import record, register_tcp_result, strong_options

K = 4  # ranks
WORKERS = 2
PAD = 0.3
ROUNDS = 3
TCP_SPEC = "tcp://127.0.0.1:0?accept_timeout=60"


@pytest.fixture(scope="module")
def scene():
    """A coarse impact snapshot (kept small: this module's job is to
    measure the transport, not the search)."""
    snap = simulate_impact(ImpactConfig(n_steps=12, refine=0.6))[8]
    pt = MCMLDTPartitioner(
        K, MCMLDTParams(options=strong_options(), pad=PAD)
    )
    pt.fit(snap)
    plan = pt.search_plan(snap)
    boxes = element_bboxes(snap.mesh.nodes, snap.contact_faces)
    boxes[:, 0] -= PAD
    boxes[:, 1] += PAD
    coords = snap.mesh.nodes[snap.contact_nodes]
    point_part = pt.part[snap.contact_nodes]
    return snap, plan, boxes, coords, point_part


def test_tcp_contact_search(benchmark, scene):
    snap, plan, boxes, coords, point_part = scene

    def search(backend, tracer=None):
        return parallel_contact_search(
            plan, boxes, snap.contact_faces, coords,
            snap.contact_nodes, point_part, K,
            backend=backend, tracer=tracer,
        )

    serial = build_backend("serial")
    try:
        expected_pairs, expected_ledger = search(serial)
    finally:
        serial.close()

    backend = build_backend(TCP_SPEC, workers=WORKERS)
    tracer = Tracer()
    try:
        search(backend)  # brings the fleet up outside the timed region
        best = None
        timings = []
        for _ in range(ROUNDS):
            t0 = time.perf_counter()
            pairs, ledger = search(backend, tracer=tracer)
            dt = time.perf_counter() - t0
            timings.append(dt)
            best = dt if best is None else min(best, dt)
        benchmark.pedantic(
            lambda: search(backend), rounds=1, iterations=1
        )
        bytes_sent, bytes_recv = backend.bytes_sent, backend.bytes_recv
    finally:
        backend.close()

    assert frozenset(pairs) == frozenset(expected_pairs), (
        "tcp backend diverged from the serial reference"
    )
    assert ledger.summary() == expected_ledger.summary()
    register_tcp_result(
        "contact_search",
        best_s=round(best, 6),
        mean_s=round(sum(timings) / len(timings), 6),
        rounds=ROUNDS,
        ranks=K,
        workers=WORKERS,
        candidates=len(pairs),
        exchanged=ledger.items("contact-exchange"),
        bytes_sent=bytes_sent,
        bytes_recv=bytes_recv,
    )
    record(
        benchmark, tracer=tracer, best_s=round(best, 6),
        candidates=len(pairs), backend="tcp",
    )


def _noop_step(ctx):
    return ctx.rank


def _dispatch_steps(session, fn, steps):
    """The measured region: ``steps`` round-trips to the fleet (no
    clock reads in here — the caller times the whole call)."""
    for _ in range(steps):
        session.step(fn)


def test_tcp_step_dispatch_overhead(benchmark, scene):
    steps = 50
    backend = build_backend(TCP_SPEC, workers=WORKERS)
    try:
        with backend.open_session(K, ledger=CommLedger()) as session:
            fn = partial(call_without_arg, _noop_step)
            _dispatch_steps(session, fn, 1)  # open + handshake unbilled
            sent0, recv0 = backend.bytes_sent, backend.bytes_recv
            t0 = time.perf_counter()
            _dispatch_steps(session, fn, steps)
            elapsed = time.perf_counter() - t0
            per_step_bytes = (
                backend.bytes_sent - sent0 + backend.bytes_recv - recv0
            ) / steps
        benchmark.pedantic(
            lambda: None, rounds=1, iterations=1
        )
    finally:
        backend.close()

    per_step_ms = elapsed / steps * 1e3
    register_tcp_result(
        "step_dispatch",
        steps=steps,
        per_step_ms=round(per_step_ms, 4),
        per_step_bytes=round(per_step_bytes, 1),
        ranks=K,
        workers=WORKERS,
    )
    record(
        benchmark, per_step_ms=round(per_step_ms, 4),
        per_step_bytes=round(per_step_bytes, 1), backend="tcp",
    )
