"""Service-layer latency and throughput over real HTTP.

Boots the full stack — engine, workers, asyncio HTTP server on an
ephemeral port — and measures what a client actually experiences:

* ``cold_vs_cached``: wall time of the first partition request (fit +
  serialisation + transport) against the identical repeat served from
  the content-addressed cache.  The acceptance bar is cache-hit
  latency **< 10% of cold** — asserted here, not just reported.
* ``coalesced_throughput``: N identical requests fired concurrently
  through a thread pool; single-flight must collapse them onto ONE
  partitioner fit, and the report records achieved requests/second.

Registered measurements are summarised into ``BENCH_service.json`` at
session end (``benchmarks/conftest.py``; uploaded from CI).
"""

from __future__ import annotations

import concurrent.futures
import time

import pytest

from repro.service.client import ServiceClient
from repro.service.engine import EngineConfig
from repro.service.http import ServerThread

from .conftest import record, register_service_result

#: a mid-size scene: big enough that a fit dominates transport, small
#: enough to keep the bench quick
SOURCE = {"kind": "impact", "n_steps": 3, "refine": 1.0}
K = 8
COALESCED_CLIENTS = 12


@pytest.fixture(scope="module")
def server():
    with ServerThread(EngineConfig(workers=4)) as srv:
        yield srv


def test_cold_vs_cached_latency(benchmark, server):
    client = ServiceClient(server.address)

    t0 = time.perf_counter()
    cold = client.partition(K, SOURCE, wait_s=600)
    cold_s = time.perf_counter() - t0
    assert cold["cache"] == "miss"
    fits_after_cold = server.engine.fits_total

    # repeat the identical request a few times; report the best, the
    # regime a steady client sees
    cached_s = None
    for _ in range(5):
        t0 = time.perf_counter()
        cached = client.partition(K, SOURCE, wait_s=600)
        dt = time.perf_counter() - t0
        cached_s = dt if cached_s is None else min(cached_s, dt)
        assert cached["cache"] == "hit"
        assert cached["labels"] == cold["labels"]  # bit-identical

    # the partitioner never ran again
    assert server.engine.fits_total == fits_after_cold

    ratio = cached_s / cold_s
    assert ratio < 0.10, (
        f"cache-hit latency {cached_s * 1e3:.1f}ms is "
        f"{ratio:.1%} of cold {cold_s * 1e3:.1f}ms (must be < 10%)"
    )

    register_service_result(
        "cold_vs_cached",
        cold_s=round(cold_s, 6),
        cached_s=round(cached_s, 6),
        ratio=round(ratio, 5),
        nodes=len(cold["labels"]),
        k=K,
    )
    record(
        benchmark,
        cold_s=round(cold_s, 6),
        cached_s=round(cached_s, 6),
        ratio=round(ratio, 5),
    )
    benchmark.pedantic(
        lambda: client.partition(K, SOURCE, wait_s=600),
        rounds=1,
        iterations=1,
    )


def test_coalesced_throughput(benchmark, server):
    client = ServiceClient(server.address)
    # a distinct scene so this test starts cold and cannot hit the
    # cache entry the latency test created
    source = {"kind": "impact", "n_steps": 3, "refine": 0.9}
    fits_before = server.engine.fits_total

    def one_request(_):
        rec = client.submit("partition", K, source)
        return client.result(rec["id"], wait_s=600)

    t0 = time.perf_counter()
    with concurrent.futures.ThreadPoolExecutor(COALESCED_CLIENTS) as pool:
        results = list(pool.map(one_request, range(COALESCED_CLIENTS)))
    wall_s = time.perf_counter() - t0

    fits = server.engine.fits_total - fits_before
    assert fits == 1, f"single-flight failed: {fits} fits for identical load"
    baseline = results[0]["labels"]
    assert all(r["labels"] == baseline for r in results)

    throughput = COALESCED_CLIENTS / wall_s
    register_service_result(
        "coalesced_throughput",
        clients=COALESCED_CLIENTS,
        wall_s=round(wall_s, 6),
        requests_per_s=round(throughput, 3),
        fits_executed=fits,
        coalesced=server.engine.coalesced_total,
    )
    record(
        benchmark,
        clients=COALESCED_CLIENTS,
        wall_s=round(wall_s, 6),
        requests_per_s=round(throughput, 3),
    )
    benchmark.pedantic(
        lambda: client.partition(K, source, wait_s=600),
        rounds=1,
        iterations=1,
    )
