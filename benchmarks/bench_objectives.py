"""Pareto sweep of the two communication objectives (§2 / [31]).

The §4.2 contact-edge weight 5 is one point on a trade-off curve
between FE-phase cut (objective 0) and search-phase cut (objective 1).
Sweeping the scalarisation coefficient traces that curve; the sweep
shows the monotone exchange the multi-objective formulation predicts
and locates the paper's choice on it.
"""

from __future__ import annotations

import pytest

from repro.partition.objectives import (
    build_contact_objectives,
    multi_objective_partition,
)

from .conftest import record, strong_options

K = 8
COEFFS = (0.0, 4.0, 19.0)
SEEDS = (0, 1, 2)  # the partitioner is a heuristic; average out noise
_CURVE = {}


@pytest.mark.parametrize("c", COEFFS)
def test_pareto_sweep(benchmark, short_sequence, c):
    snap = short_sequence[0]
    obj = build_contact_objectives(snap)

    def run():
        cut_sum = None
        for seed in SEEDS:
            _, cuts = multi_objective_partition(
                obj, K, [1.0, c], strong_options(seed=seed)
            )
            cut_sum = cuts if cut_sum is None else cut_sum + cuts
        return cut_sum / len(SEEDS)

    mean_cuts = benchmark.pedantic(run, rounds=1, iterations=1)
    _CURVE[c] = mean_cuts
    record(
        benchmark,
        coefficient=c,
        fe_cut=float(mean_cuts[0]),
        contact_cut=float(mean_cuts[1]),
    )


def test_pareto_shape(benchmark, short_sequence):
    """Seed-averaged endpoints of the trade-off: the largest contact
    coefficient buys the smallest contact cut, the smallest coefficient
    the smallest FE cut."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    if len(_CURVE) < len(COEFFS):
        pytest.skip("sweep benches must run first")
    contact_cuts = {c: float(v[1]) for c, v in _CURVE.items()}
    fe_cuts = {c: float(v[0]) for c, v in _CURVE.items()}
    record(
        benchmark,
        **{f"contact_cut_c{c}": v for c, v in contact_cuts.items()},
        **{f"fe_cut_c{c}": v for c, v in fe_cuts.items()},
    )
    cmax, cmin = max(COEFFS), min(COEFFS)
    assert contact_cuts[cmax] <= contact_cuts[cmin] * 1.05
    assert fe_cuts[cmin] <= fe_cuts[cmax] * 1.05
