"""Ablation: three routes to geometry-friendly subdomains (§4.2 / §6).

The paper reshapes a graph partition with a decision tree (P→P'→P'');
its §6 future work asks for partitioners that are geometry-aware from
the start. This bench compares, on straight and oblique penetrations:

* ``raw``      — multi-constraint partition, no reshaping;
* ``reshaped`` — the paper's P→P'→P'';
* ``geometric``— RCB-seeded multi-constraint refinement (§6 candidate).

Reported per variant: FEComm, descriptor-tree size (NTNodes), NRemote.
The oblique scene is where geometry handling matters most: the channel
(and hence the natural subdomain boundaries) is diagonal.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.mcml_dt import MCMLDTParams, MCMLDTPartitioner
from repro.core.weights import build_contact_graph
from repro.dtree.induction import induce_pure_tree
from repro.dtree.query import tree_filter_search
from repro.core.contact_search import face_owner_partition
from repro.geometry.bbox import element_bboxes
from repro.graph.metrics import load_imbalance
from repro.metrics.comm import fe_comm
from repro.partition.geometric import geometric_seed_partition
from repro.sim.projectile import ImpactConfig
from repro.sim.sequence import simulate_impact

from .conftest import record, strong_options

K = 8


def scene(oblique: bool):
    config = ImpactConfig(
        n_steps=1, obliquity=0.6 if oblique else 0.0
    )
    return simulate_impact(config)[0]


def evaluate(snap, part, k):
    """Descriptor size, NRemote, FEComm for an arbitrary partition."""
    graph = build_contact_graph(snap)
    cn = snap.contact_nodes
    tree, _ = induce_pure_tree(snap.mesh.nodes[cn], part[cn], k)
    boxes = element_bboxes(snap.mesh.nodes, snap.contact_faces)
    owner = face_owner_partition(part, snap.contact_faces)
    plan = tree_filter_search(tree, boxes, owner, k)
    return {
        "fe_comm": fe_comm(graph, part),
        "nt_nodes": tree.n_nodes,
        "n_remote": plan.n_remote,
        "imbalance": float(load_imbalance(graph, part, k).max()),
    }


@pytest.mark.parametrize("oblique", [False, True],
                         ids=["straight", "oblique"])
@pytest.mark.parametrize(
    "variant", ["raw", "reshaped", "geometric"]
)
def test_geometry_aware_variants(benchmark, variant, oblique):
    snap = scene(oblique)

    def fit():
        if variant == "geometric":
            graph = build_contact_graph(snap, 5)
            return geometric_seed_partition(
                graph, snap.mesh.nodes, K, strong_options()
            )
        params = MCMLDTParams(
            reshape=(variant == "reshaped"), options=strong_options()
        )
        return MCMLDTPartitioner(K, params).fit(snap).labels

    part = benchmark.pedantic(fit, rounds=1, iterations=1)
    metrics = evaluate(snap, part, K)
    record(benchmark, variant=variant, oblique=oblique, **metrics)


def test_reshaping_helps_on_oblique(benchmark):
    """The paper's motivation, demonstrated where it bites: on the
    oblique scene (diagonal channel → diagonal natural boundaries) the
    P→P'→P'' reshaping shrinks the descriptor tree relative to the raw
    multi-constraint partition (seed-averaged). The naive RCB-seeded
    §6 candidate does *not* achieve this — its post-seed refinement
    roughens the boxes with nothing to clean them up, an honest
    negative recorded in EXPERIMENTS.md."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    snap = scene(oblique=True)

    def tree_nodes(variant, seed):
        if variant == "geometric":
            graph = build_contact_graph(snap, 5)
            part = geometric_seed_partition(
                graph, snap.mesh.nodes, K, strong_options(seed=seed)
            )
        else:
            params = MCMLDTParams(
                reshape=(variant == "reshaped"),
                options=strong_options(seed=seed),
            )
            part = MCMLDTPartitioner(K, params).fit(snap).labels
        cn = snap.contact_nodes
        tree, _ = induce_pure_tree(snap.mesh.nodes[cn], part[cn], K)
        return tree.n_nodes

    seeds = (0, 1)
    raw = np.mean([tree_nodes("raw", s) for s in seeds])
    reshaped = np.mean([tree_nodes("reshaped", s) for s in seeds])
    geo = np.mean([tree_nodes("geometric", s) for s in seeds])
    record(
        benchmark, raw_mean=raw, reshaped_mean=reshaped,
        geometric_mean=geo,
    )
    assert reshaped <= raw
