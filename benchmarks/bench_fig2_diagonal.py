"""Figure 2: diagonal subdomain boundaries blow up the decision tree.

The paper's motivation for the P→P'→P'' reshaping step: axis-parallel
boundaries give O(1)-sized trees, while a diagonal boundary of the same
point count forces a staircase of cuts. The bench measures tree size
versus boundary angle and verifies the reshaping step actually removes
the blow-up on the real workload.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.dtree.induction import induce_pure_tree

from .conftest import record, strong_options


def boundary_points(angle_deg: float, n: int = 200, seed: int = 0):
    """Points uniformly in the unit square, split by a line through the
    centre at ``angle_deg`` to the x-axis."""
    rng = np.random.default_rng(seed)
    pts = rng.random((n, 2))
    theta = np.deg2rad(angle_deg)
    normal = np.array([-np.sin(theta), np.cos(theta)])
    labels = ((pts - 0.5) @ normal > 0).astype(np.int64)
    return pts, labels


@pytest.mark.parametrize("angle", [0, 15, 30, 45])
def test_fig2_tree_size_vs_angle(benchmark, angle):
    pts, labels = boundary_points(angle)
    tree, _ = benchmark(lambda: induce_pure_tree(pts, labels, 2))
    record(benchmark, angle=angle, nt_nodes=tree.n_nodes,
           depth=tree.depth())


def test_fig2_axis_aligned_is_minimal(benchmark):
    """A 0° boundary needs exactly one cut (3 nodes)."""
    pts, labels = boundary_points(0.0)
    tree, _ = benchmark(lambda: induce_pure_tree(pts, labels, 2))
    assert tree.n_nodes == 3


def test_fig2_diagonal_blowup_factor(benchmark):
    """45° boundary: the tree is an order of magnitude larger."""
    pts0, labels0 = boundary_points(0.0)
    pts45, labels45 = boundary_points(45.0)

    def build_both():
        t0, _ = induce_pure_tree(pts0, labels0, 2)
        t45, _ = induce_pure_tree(pts45, labels45, 2)
        return t0, t45

    t0, t45 = benchmark(build_both)
    record(benchmark, axis_nodes=t0.n_nodes, diag_nodes=t45.n_nodes,
           blowup=t45.n_nodes / t0.n_nodes)
    assert t45.n_nodes >= 8 * t0.n_nodes


def test_fig2_reshaping_removes_blowup(benchmark):
    """On the *oblique* workload — where the slanted channel makes the
    natural subdomain boundaries diagonal, i.e. exactly the Figure-2
    situation — the P→P'→P'' step yields descriptor trees no larger
    than the raw multi-constraint partition's (seed-averaged; on
    straight scenes the raw boundaries are already near-axis-parallel
    and reshaping buys geometry guarantees rather than tree size)."""
    import numpy as np

    from repro.core.mcml_dt import MCMLDTParams, MCMLDTPartitioner
    from repro.sim.projectile import ImpactConfig
    from repro.sim.sequence import simulate_impact

    snap = simulate_impact(ImpactConfig(n_steps=1, obliquity=0.6))[0]
    k = 8
    seeds = (0, 1)

    def fit_all():
        raw_sizes, shaped_sizes = [], []
        for seed in seeds:
            raw = MCMLDTPartitioner(
                k, MCMLDTParams(reshape=False,
                                options=strong_options(seed=seed))
            ).fit(snap)
            shaped = MCMLDTPartitioner(
                k, MCMLDTParams(options=strong_options(seed=seed))
            ).fit(snap)
            raw_sizes.append(raw.build_descriptors(snap)[0].n_nodes)
            shaped_sizes.append(
                shaped.build_descriptors(snap)[0].n_nodes
            )
        return float(np.mean(raw_sizes)), float(np.mean(shaped_sizes))

    raw_mean, shaped_mean = benchmark.pedantic(
        fit_all, rounds=1, iterations=1
    )
    record(benchmark, raw_nodes=raw_mean, shaped_nodes=shaped_mean)
    assert shaped_mean <= raw_mean
