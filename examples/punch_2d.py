#!/usr/bin/env python
"""2D punch-through-two-bars, with the decomposition drawn in the
terminal.

The paper's machinery is dimension-generic; this example runs the whole
MCML+DT pipeline on a 2D quad-mesh scene and *shows* the result — the
contact points coloured by partition and the axis-parallel descriptor
rectangles around them — at three stages of the punch's travel.

Run:  python examples/punch_2d.py
"""

import numpy as np

from repro.core.mcml_dt import MCMLDTParams, MCMLDTPartitioner
from repro.dtree.render import render_descriptors
from repro.partition.config import PartitionOptions
from repro.sim.impact2d import Impact2DConfig, simulate_impact_2d

K = 4


def main() -> None:
    print("Simulating the 2D punch scene...")
    seq = simulate_impact_2d(Impact2DConfig(n_steps=60))
    snap0 = seq[0]
    print(
        f"  {snap0.mesh.num_nodes} nodes, {snap0.mesh.num_elements} "
        f"quads, {snap0.num_contact_nodes} contact nodes\n"
    )

    pt = MCMLDTPartitioner(
        K, MCMLDTParams(options=PartitionOptions(seed=0))
    )
    pt.fit(snap0)
    print(
        f"MCML+DT k={K}: imbalance "
        f"{pt.diagnostics.imbalance_final.round(3).tolist()}"
    )

    for step in (0, 30, 59):
        snap = seq[step]
        tree, _ = pt.build_descriptors(snap)
        plan = pt.search_plan(snap, tree)
        coords = snap.mesh.nodes[snap.contact_nodes]
        labels = pt.part[snap.contact_nodes]
        print(
            f"\n--- step {step}: punch tip y = {snap.tip_z:+.2f}, "
            f"NTNodes = {tree.n_nodes}, NRemote = {plan.n_remote} ---"
        )
        print(render_descriptors(tree, coords, labels,
                                 width=72, height=20))


if __name__ == "__main__":
    main()
