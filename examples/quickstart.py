#!/usr/bin/env python
"""Quickstart: partition a contact/impact simulation with MCML+DT.

Runs a small synthetic projectile-impact scene, fits the paper's
multi-constraint + decision-tree partitioner, and walks through what
it produced: the balanced two-constraint partition, the subdomain
geometric descriptors (Figure 1 of the paper), and a global contact
search filtered through them.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import (
    ImpactConfig,
    MCMLDTParams,
    MCMLDTPartitioner,
    PartitionOptions,
    build_contact_graph,
    simulate_impact,
)
from repro.dtree.descriptors import SubdomainDescriptors
from repro.geometry.bbox import bbox_of_points
from repro.graph.metrics import load_imbalance


def main() -> None:
    k = 4

    print("1. Simulating a projectile striking two plates...")
    seq = simulate_impact(ImpactConfig(n_steps=10, refine=0.8))
    snap = seq[0]
    print(
        f"   mesh: {snap.mesh.num_nodes} nodes, "
        f"{snap.mesh.num_elements} hex elements, "
        f"{snap.num_contact_nodes} contact nodes"
    )

    print(f"\n2. Fitting MCML+DT for k={k} partitions...")
    pt = MCMLDTPartitioner(
        k, MCMLDTParams(options=PartitionOptions(seed=0))
    )
    pt.fit(snap)
    graph = build_contact_graph(snap)
    imb = load_imbalance(graph, pt.part, k)
    print(
        f"   FE-work imbalance      : {imb[0]:.3f}  (target <= 1.05)\n"
        f"   search-work imbalance  : {imb[1]:.3f}\n"
        f"   edge cut               : {pt.diagnostics.edge_cut_final}\n"
        f"   reshaped vertices      : {pt.diagnostics.reshape_moved}"
    )

    print("\n3. Building the subdomain geometric descriptors (Fig. 1)...")
    tree, _ = pt.build_descriptors(snap)
    coords = snap.mesh.nodes[snap.contact_nodes]
    desc = SubdomainDescriptors.from_tree(tree, bbox_of_points(coords))
    print(
        f"   decision tree: {tree.n_nodes} nodes, "
        f"{tree.n_leaves} leaf boxes, depth {tree.depth()}"
    )
    for p in sorted(desc.regions_of):
        print(
            f"   subdomain {p}: {len(desc.regions_of[p])} boxes, "
            f"volume {desc.volume_of(p):.1f}"
        )
    print(
        f"   descriptor overlap volume: "
        f"{desc.total_overlap_volume():.4f}  (always exactly 0)"
    )

    print("\n4. Global contact search through the tree filter...")
    plan = pt.search_plan(snap, tree)
    print(
        f"   {len(snap.contact_faces)} surface elements; "
        f"{plan.n_remote} element-sends to remote partitions (NRemote)"
    )
    recv = plan.per_partition_receive_counts(k)
    for p in range(k):
        print(f"   partition {p} receives {recv[p]} remote elements")


if __name__ == "__main__":
    main()
