#!/usr/bin/env python
"""Reproduce the paper's Figure 1 in the terminal.

45 contact points in three partitions (a), their axis-parallel
rectangle descriptors (b), and the underlying decision tree (c) — plus
the Figure 2 contrast: the same machinery on a diagonal boundary, where
the tree explodes (the motivation for MCML+DT's reshaping step).

Run:  python examples/figure1_descriptors.py
"""

import numpy as np

from repro.dtree.induction import induce_pure_tree
from repro.dtree.render import render_descriptors, render_points, render_tree


def figure1_points():
    rng = np.random.default_rng(7)
    pts = np.concatenate(
        [
            rng.random((15, 2)) * [2.0, 2.5] + [0.2, 2.2],
            rng.random((15, 2)) * [2.5, 2.0] + [2.8, 2.8],
            rng.random((15, 2)) * [3.5, 1.8] + [0.8, 0.2],
        ]
    )
    return pts, np.repeat(np.arange(3), 15)


def figure2_points(n=28):
    rng = np.random.default_rng(1)
    t = np.linspace(0.05, 0.95, n)
    pts = np.column_stack([t, t + 0.05 * rng.standard_normal(n)])
    return pts, (pts[:, 1] > pts[:, 0]).astype(np.int64)


def main() -> None:
    pts, labels = figure1_points()
    tree, _ = induce_pure_tree(pts, labels, 3)

    print("Figure 1(a): 45 contact points in 3 partitions "
          "(glyphs o, ^, #)\n")
    print(render_points(pts, labels))

    print("\nFigure 1(b): subdomain descriptors — each rectangle holds "
          "points of one partition\n")
    print(render_descriptors(tree, pts, labels))

    print(f"\nFigure 1(c): the decision tree ({tree.n_nodes} nodes, "
          f"{tree.n_leaves} leaves)\n")
    print(render_tree(tree))

    dpts, dlabels = figure2_points()
    dtree, _ = induce_pure_tree(dpts, dlabels, 2)
    print(
        f"\nFigure 2: a diagonal boundary between 2 partitions of "
        f"{len(dpts)} points forces a staircase of "
        f"{dtree.n_nodes} tree nodes:\n"
    )
    print(render_descriptors(dtree, dpts, dlabels))

    # publication-grade vector versions alongside the terminal ones
    from repro.dtree.svg import save_descriptors_svg

    save_descriptors_svg(
        "figure1.svg", tree, pts, labels,
        title="Figure 1(b): subdomain descriptors (3-way, 45 points)",
    )
    save_descriptors_svg(
        "figure2.svg", dtree, dpts, dlabels,
        title="Figure 2: diagonal boundary staircase",
    )
    print("\nWrote figure1.svg and figure2.svg to the current directory.")


if __name__ == "__main__":
    main()
