#!/usr/bin/env python
"""Tour of the substrates as standalone tools.

The paper's pipeline is built from parts that are useful on their own:
a multilevel (multi-constraint) graph partitioner, a recursive
coordinate bisection with incremental updates, and a decision-tree
inducer over labelled point sets. This example exercises each directly.

Run:  python examples/partitioner_tour.py
"""

import numpy as np

from repro.dtree import induce_pure_tree
from repro.dtree.query import predict_partition
from repro.geometry.rcb import rcb_partition
from repro.graph import grid_graph
from repro.graph.build import grid_coords, random_geometric_graph
from repro.graph.metrics import edge_cut, load_imbalance, total_comm_volume
from repro.partition import PartitionOptions, partition_kway
from repro.partition.repartition import diffusion_repartition


def tour_graph_partitioner() -> None:
    print("1. Multilevel graph partitioner")
    g = grid_graph(40, 40)
    for k in (4, 8, 16):
        part = partition_kway(g, k, PartitionOptions(seed=0))
        print(
            f"   40x40 grid, k={k:2d}: cut {edge_cut(g, part):4d}, "
            f"comm volume {total_comm_volume(g, part):4d}, "
            f"imbalance {load_imbalance(g, part, k).max():.3f}"
        )

    # multi-constraint: balance total work AND a sparse secondary load
    vw = np.ones((1600, 2), dtype=np.int64)
    vw[:, 1] = (np.arange(1600) % 11 == 0).astype(np.int64)
    g2 = g.with_vwgts(vw)
    part = partition_kway(g2, 8, PartitionOptions(seed=0))
    imb = load_imbalance(g2, part, 8)
    print(
        f"   two constraints, k=8: imbalance "
        f"(work={imb[0]:.3f}, secondary={imb[1]:.3f})"
    )


def tour_repartitioner() -> None:
    print("\n2. Diffusion repartitioning (adaptive load change)")
    g = grid_graph(30, 30)
    part = partition_kway(g, 6, PartitionOptions(seed=0))
    # a hot region triples its cost
    vw = np.ones((900, 1), dtype=np.int64)
    vw[:150, 0] = 3
    g_hot = g.with_vwgts(vw)
    before = load_imbalance(g_hot, part, 6).max()
    res = diffusion_repartition(g_hot, part, 6, PartitionOptions(seed=0))
    after = load_imbalance(g_hot, res.part, 6).max()
    print(
        f"   imbalance {before:.2f} -> {after:.2f} by moving "
        f"{res.n_moved}/900 vertices"
    )


def tour_rcb() -> None:
    print("\n3. Recursive coordinate bisection with incremental update")
    rng = np.random.default_rng(0)
    pts = rng.random((2000, 3))
    labels, tree = rcb_partition(pts, 12)
    counts = np.bincount(labels, minlength=12)
    print(f"   2000 points, k=12: counts {counts.min()}..{counts.max()}, "
          f"{tree.n_nodes} tree nodes")
    drifted = pts + 0.01 * rng.standard_normal((2000, 3))
    new_labels = tree.update(drifted)
    moved = int((new_labels != labels).sum())
    print(f"   after small drift: {moved} points migrated (UpdComm)")


def tour_decision_tree() -> None:
    print("\n4. Decision-tree induction (paper Eq. 1)")
    g_coords = grid_coords(40, 40)
    g = grid_graph(40, 40)
    part = partition_kway(g, 6, PartitionOptions(seed=0))
    tree, _ = induce_pure_tree(g_coords, part, 6)
    pred = predict_partition(tree, g_coords)
    print(
        f"   6-way grid partition -> pure tree with {tree.n_nodes} nodes, "
        f"depth {tree.depth()}; classifies all "
        f"{int((pred == part).sum())}/1600 vertices correctly"
    )


def main() -> None:
    tour_graph_partitioner()
    tour_repartitioner()
    tour_rcb()
    tour_decision_tree()


if __name__ == "__main__":
    main()
