#!/usr/bin/env python
"""The paper's evaluation (§5): projectile penetrating two plates.

Regenerates Table 1 — MCML+DT vs ML+RCB averaged over the snapshot
sequence — plus the Figure-3 stage statistics, at a configurable scale.

Run:
  python examples/projectile_impact.py                  # quick (k=4,8)
  python examples/projectile_impact.py --full           # paper-scale
  python examples/projectile_impact.py --stages         # Figure 3 only
"""

import argparse

import numpy as np

from repro import ImpactConfig, simulate_impact, table1
from repro.core.mcml_dt import MCMLDTParams
from repro.core.ml_rcb import MLRCBParams
from repro.metrics.report import format_table
from repro.partition.config import PartitionOptions


def stages_table(seq) -> str:
    rows = {}
    step_stride = max(1, len(seq) // 10)
    for s in seq:
        if s.step % step_stride == 0 or s.step == len(seq) - 1:
            rows[f"step {s.step:3d}"] = [
                round(s.tip_z, 2),
                s.mesh.num_elements,
                s.num_contact_faces,
                s.num_contact_nodes,
            ]
    return format_table(
        "Figure 3 (reproduction) — simulation stages",
        ["tip_z", "live elements", "contact faces", "contact nodes"],
        rows,
    )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--full", action="store_true",
        help="paper-scale mesh and k=(8, 25); takes several minutes",
    )
    parser.add_argument(
        "--epic", action="store_true",
        help="EPIC-size mesh (~155k nodes) and k=(25, 100); very slow "
        "in pure Python — expect an hour-plus",
    )
    parser.add_argument("--steps", type=int, default=None)
    parser.add_argument("--stages", action="store_true",
                        help="print only the Figure-3 stage table")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    if args.epic:
        config = ImpactConfig.epic_scale(n_steps=args.steps or 100)
        ks = (25, 100)
        options = PartitionOptions(
            seed=args.seed, n_init_trials=12, fm_passes=10,
            kway_passes=16, fm_neg_moves=120,
        )
    elif args.full:
        config = ImpactConfig.paper_scale(n_steps=args.steps or 100)
        ks = (8, 25)
        options = PartitionOptions(
            seed=args.seed, n_init_trials=12, fm_passes=10,
            kway_passes=16, fm_neg_moves=120,
        )
    else:
        config = ImpactConfig(n_steps=args.steps or 20)
        ks = (4, 8)
        options = PartitionOptions(seed=args.seed)

    print(
        f"Simulating {config.n_steps} snapshots "
        f"(refine={config.refine}, plates {config.plate_nxy}^2 x "
        f"{config.plate_nz})..."
    )
    seq = simulate_impact(config)
    snap = seq[0]
    print(
        f"Mesh: {snap.mesh.num_nodes} nodes, "
        f"{snap.mesh.num_elements} elements, "
        f"{snap.num_contact_nodes} contact nodes "
        f"({100 * snap.num_contact_nodes / snap.mesh.num_nodes:.0f}%)\n"
    )

    print(stages_table(seq))
    if args.stages:
        return

    print(f"\nEvaluating MCML+DT and ML+RCB at k={ks} "
          f"(this runs both algorithms over every snapshot)...")
    table = table1(
        seq,
        ks=ks,
        mcml_params=MCMLDTParams(options=options),
        ml_params=MLRCBParams(options=options),
    )
    print()
    print(table.render())
    print(
        "\nReading the table (paper §5.2): ML+RCB wins on raw FEComm\n"
        "but pays the mesh-to-mesh transfer twice per iteration, so its\n"
        "FE-side total (FEComm + 2*M2MComm) exceeds MCML+DT's; NTNodes\n"
        "and UpdComm are small next to the other overheads."
    )


if __name__ == "__main__":
    main()
