#!/usr/bin/env python
"""A complete contact-detection time step, end to end.

Chains every stage a production contact/impact code runs per iteration:

  1. (once) MCML+DT decomposition of the mesh,
  2. descriptor update — re-induce the search tree on the moved
     contact points,
  3. global search — ship surface elements through the tree filter on
     the simulated parallel machine,
  4. local search — resolve every candidate to a closest-point
     projection and a signed gap,
  5. report — penetration statistics per snapshot.

Watching several snapshots shows the gap closing as the projectile
approaches and first penetrations appearing at impact.

Run:  python examples/full_contact_step.py
"""

import numpy as np

from repro import ImpactConfig, simulate_impact
from repro.core.contact_search import parallel_contact_search
from repro.core.local_search import penetration_summary, resolve_candidates
from repro.core.mcml_dt import MCMLDTParams, MCMLDTPartitioner
from repro.geometry.bbox import element_bboxes
from repro.partition.config import PartitionOptions

K = 6
PAD = 0.25  # capture distance for candidate detection


def detection_step(pt, snap):
    """Stages 2-5 for one snapshot. Returns the report dict."""
    tree, _ = pt.build_descriptors(snap)                 # stage 2
    plan = pt.search_plan(snap, tree)                    # stage 3 filter
    boxes = element_bboxes(snap.mesh.nodes, snap.contact_faces)
    boxes[:, 0] -= PAD
    boxes[:, 1] += PAD
    coords = snap.mesh.nodes[snap.contact_nodes]
    pairs, ledger = parallel_contact_search(             # stage 3 exchange
        plan, boxes, snap.contact_faces, coords,
        snap.contact_nodes, pt.part[snap.contact_nodes], K,
    )
    resolution = resolve_candidates(                     # stage 4
        snap.mesh.nodes, snap.contact_faces, sorted(pairs)
    )
    report = penetration_summary(resolution)             # stage 5
    report["nt_nodes"] = tree.n_nodes
    report["n_remote"] = plan.n_remote
    report["exchanged"] = ledger.items("contact-exchange")
    return report


def main() -> None:
    print("Simulating impact scene...")
    seq = simulate_impact(ImpactConfig(n_steps=40))
    snap0 = seq[0]
    print(
        f"  {snap0.mesh.num_nodes} nodes, "
        f"{snap0.num_contact_nodes} contact nodes\n"
    )

    print(f"Stage 1: MCML+DT decomposition (k={K}, once per run)")
    pt = MCMLDTPartitioner(
        K, MCMLDTParams(pad=PAD, options=PartitionOptions(seed=0))
    )
    pt.fit(snap0)
    print(
        f"  imbalance {pt.diagnostics.imbalance_final.round(3).tolist()}\n"
    )

    header = (
        f"{'step':>4} {'tip_z':>7} {'NTNodes':>8} {'NRemote':>8} "
        f"{'candidates':>10} {'penetrating':>11} {'worst gap':>10}"
    )
    print(header)
    print("-" * len(header))
    for step in (0, 5, 10, 14, 18, 22, 26, 30, 35, 39):
        snap = seq[step]
        r = detection_step(pt, snap)
        print(
            f"{step:>4} {snap.tip_z:>7.2f} {r['nt_nodes']:>8.0f} "
            f"{r['n_remote']:>8.0f} {r['candidates']:>10.0f} "
            f"{r['penetrating']:>11.0f} {r['worst_penetration']:>10.3f}"
        )

    print(
        "\nThe candidate count rises as the projectile reaches the plate"
        "\n(tip_z < 0) and the worst signed gap goes negative exactly"
        "\nwhen surfaces start to interpenetrate."
    )


if __name__ == "__main__":
    main()
