#!/usr/bin/env python
"""Crash-box scenario: using the library on your own meshes.

The built-in simulator is one workload; this example shows the path a
simulation code would take — build the bodies yourself, identify the
contact surfaces yourself, wrap them in a snapshot, and drive the
MCML+DT pipeline plus the simulated-parallel global search directly.

Scene: a stiff box (a "bumper") closing on a wall at an oblique angle,
the kind of geometry where single-box subdomain descriptors produce
many false-positive sends.

Run:  python examples/crash_box.py
"""

import numpy as np

from repro.core.contact_search import (
    parallel_contact_search,
    serial_candidate_pairs,
)
from repro.core.mcml_dt import MCMLDTParams, MCMLDTPartitioner
from repro.geometry.bbox import element_bboxes
from repro.mesh.generators import merge_meshes, structured_box_mesh
from repro.mesh.surface import boundary_faces
from repro.partition.config import PartitionOptions
from repro.sim.sequence import ContactSnapshot


def build_scene():
    """A box tilted toward a wall, nearly touching."""
    wall = structured_box_mesh(24, 24, 3, origin=(-6, -6, 0),
                               size=(12, 12, 1.5))
    box = structured_box_mesh(8, 8, 8, origin=(-2, -2, 1.7),
                              size=(4, 4, 4))
    scene = merge_meshes([wall, box])
    # tilt the box 15 degrees about x so one edge leads
    nodes = scene.nodes.copy()
    box_nodes = np.unique(scene.elements[scene.body_id == 1])
    c = nodes[box_nodes].mean(axis=0)
    theta = np.deg2rad(15)
    rel = nodes[box_nodes] - c
    rot = np.array(
        [[1, 0, 0],
         [0, np.cos(theta), -np.sin(theta)],
         [0, np.sin(theta), np.cos(theta)]]
    )
    nodes[box_nodes] = rel @ rot.T + c
    return scene.with_nodes(nodes)


def make_snapshot(mesh) -> ContactSnapshot:
    """Contact surfaces: the box's whole boundary plus the wall's upper
    face region beneath it."""
    faces, owner = boundary_faces(mesh)
    centroids = mesh.nodes[faces].mean(axis=1)
    is_box = mesh.body_id[owner] == 1
    near_impact = (
        (np.abs(centroids[:, 0]) < 4.0)
        & (np.abs(centroids[:, 1]) < 4.0)
        & (centroids[:, 2] > 1.0)
    )
    keep = is_box | near_impact
    faces, owner = faces[keep], owner[keep]
    return ContactSnapshot(
        mesh=mesh,
        contact_faces=faces,
        contact_face_owner=owner,
        contact_nodes=np.unique(faces),
        step=0,
        time=0.0,
        tip_z=float(mesh.nodes[:, 2].max()),
    )


def main() -> None:
    k = 6
    pad = 0.4  # contact capture distance

    mesh = build_scene()
    snap = make_snapshot(mesh)
    print(
        f"Scene: {mesh.num_nodes} nodes, {mesh.num_elements} elements, "
        f"{snap.num_contact_nodes} contact nodes on "
        f"{snap.num_contact_faces} contact faces"
    )

    print(f"\nPartitioning with MCML+DT, k={k}...")
    pt = MCMLDTPartitioner(
        k, MCMLDTParams(pad=pad, options=PartitionOptions(seed=0))
    )
    pt.fit(snap)
    d = pt.diagnostics
    print(
        f"  cut {d.edge_cut_final}, imbalance "
        f"{d.imbalance_final.round(3).tolist()}, "
        f"{d.reshape_moved} vertices reshaped"
    )

    tree, _ = pt.build_descriptors(snap)
    plan = pt.search_plan(snap, tree)
    print(
        f"  descriptor tree: {tree.n_nodes} nodes; "
        f"NRemote = {plan.n_remote}"
    )

    print("\nRunning the simulated-parallel global search...")
    boxes = element_bboxes(mesh.nodes, snap.contact_faces)
    boxes[:, 0] -= pad
    boxes[:, 1] += pad
    coords = mesh.nodes[snap.contact_nodes]
    pairs, ledger = parallel_contact_search(
        plan, boxes, snap.contact_faces, coords,
        snap.contact_nodes, pt.part[snap.contact_nodes], k,
    )
    serial = serial_candidate_pairs(
        boxes, snap.contact_faces, coords, snap.contact_nodes
    )
    assert pairs == serial, "parallel search must match the serial one"
    print(
        f"  candidate (element, node) contacts: {len(pairs)} "
        f"(verified equal to the serial search)"
    )
    print(f"  elements exchanged: {ledger.items('contact-exchange')}")
    print(f"  messages: {ledger.messages('contact-exchange')}")
    hot = ledger.max_rank_send("contact-exchange", k)
    print(f"  busiest rank sent {hot} elements")


if __name__ == "__main__":
    main()
