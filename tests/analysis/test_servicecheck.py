"""Service pass driver: fixtures, goldens, and the self-clean gate."""

import dataclasses
import json
from pathlib import Path

from repro.analysis.reporters import as_json_payload, as_sarif_payload
from repro.analysis.servicecheck import ServiceAnalyzer, service_rules

FIXDIR = Path(__file__).parent / "service_fixtures"
GOLDEN = Path(__file__).parent / "golden"
ROOT = Path(__file__).resolve().parents[2]

SERVICE_CODES = (
    "ASYNC001", "ASYNC002", "ASYNC003", "TIME001",
    "SM001", "SM002", "TRUST001",
)


class TestRegistry:
    def test_every_issue_rule_is_registered(self):
        assert {r.code for r in service_rules()} == set(SERVICE_CODES)

    def test_service_rules_are_opt_in(self):
        assert all(r.opt_in for r in service_rules())

    def test_select_and_ignore_narrow_the_rule_set(self):
        assert [
            r.code for r in ServiceAnalyzer(select=["SM001"]).rules
        ] == ["SM001"]
        assert "TRUST001" not in {
            r.code for r in ServiceAnalyzer(ignore=["TRUST001"]).rules
        }


class TestGoldenFixtures:
    def _normalized(self):
        diags = ServiceAnalyzer().analyze_paths([FIXDIR])
        return sorted(
            dataclasses.replace(d, path=Path(d.path).name) for d in diags
        )

    def test_exact_code_counts(self):
        summary = {}
        for d in self._normalized():
            summary[d.code] = summary.get(d.code, 0) + 1
        assert summary == {
            "ASYNC001": 5,
            "ASYNC002": 2,
            "ASYNC003": 2,
            "TIME001": 3,
            "SM001": 3,
            "SM002": 5,
            "TRUST001": 3,
        }

    def test_every_seeded_file_fires_only_its_rule(self):
        by_file = {}
        for d in self._normalized():
            by_file.setdefault(d.path, set()).add(d.code)
        assert by_file == {
            "async_block.py": {"ASYNC001"},
            "async_orphan.py": {"ASYNC002"},
            "async_race.py": {"ASYNC003"},
            "clock_mix.py": {"TIME001"},
            "machine.py": {"SM001", "SM002"},
            "handlers.py": {"TRUST001"},
        }

    def test_clean_modules_stay_clean(self):
        paths = {d.path for d in self._normalized()}
        assert "clean.py" not in paths
        assert "schemas.py" not in paths

    def test_matches_golden_json(self):
        golden = json.loads(
            (GOLDEN / "service_fixtures.json").read_text()
        )
        assert as_json_payload(self._normalized()) == golden

    def test_matches_golden_sarif(self):
        golden = json.loads(
            (GOLDEN / "service_fixtures.sarif").read_text()
        )
        assert as_sarif_payload(self._normalized()) == golden

    def test_sarif_carries_rule_metadata_for_every_code(self):
        sarif = as_sarif_payload(self._normalized())
        rules = sarif["runs"][0]["tool"]["driver"]["rules"]
        assert {r["id"] for r in rules} == set(SERVICE_CODES)


class TestRealTree:
    def test_shipped_tree_is_clean(self):
        """Acceptance: zero service diagnostics on src+tests+benchmarks
        (the fixture packages deliberately seed findings and are
        excluded, exactly as CI runs the pass)."""
        diags = ServiceAnalyzer().analyze_paths(
            [ROOT / "src" / "repro", ROOT / "tests", ROOT / "benchmarks"],
            exclude=["*/analysis/*fixtures/*"],
        )
        assert diags == []

    def test_suppressions_in_the_tree_are_justified(self):
        """Every in-tree service-rule suppression must carry prose
        after the code — a bare disable is not an argument."""
        import re

        pattern = re.compile(
            r"#\s*repro-lint:\s*disable(?:-file)?\s*=\s*"
            r"((?:ASYNC|TIME|SM|TRUST)\d+)\s*(.*)"
        )
        for py in (ROOT / "src" / "repro").rglob("*.py"):
            for i, line in enumerate(
                py.read_text(encoding="utf-8").splitlines(), 1
            ):
                m = pattern.search(line)
                if m:
                    assert m.group(2).strip(), (
                        f"{py}:{i}: suppression of {m.group(1)} "
                        "carries no justification"
                    )
