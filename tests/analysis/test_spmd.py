"""The SPMD rule family: per-rule cases, discovery, and golden output.

The fixture package under ``spmd_fixtures/`` seeds exactly the
violations the analyzer must find (and only those); the JSON and SARIF
renderings of that run are pinned as golden files.  The SPMD001 seeds
are re-validated *dynamically* in ``tests/runtime/test_sentinel.py``.
"""

import dataclasses
import json
import textwrap
from pathlib import Path

from repro.analysis.engine import LintEngine
from repro.analysis.reporters import as_json_payload, as_sarif_payload
from repro.analysis.spmd import SpmdAnalyzer, spmd_rules

FIXDIR = Path(__file__).parent / "spmd_fixtures"
GOLDEN = Path(__file__).parent / "golden"


def analyze(source, module="m", path="m.py", select=None, ignore=None):
    analyzer = SpmdAnalyzer(select=select, ignore=ignore)
    return analyzer.analyze_source(
        textwrap.dedent(source), module=module, path=path
    )


def codes(source, **kwargs):
    return [d.code for d in analyze(source, **kwargs)]


class TestSPMD001:
    def test_global_mutation_in_superstep(self):
        src = """
            ACC = []

            def _step(ctx):
                ACC.append(ctx.rank)

            def run():
                spmd_run(2, [_step])
        """
        assert codes(src) == ["SPMD001"]

    def test_transitively_reached_helper_is_checked(self):
        src = """
            ACC = []

            def _helper(ctx):
                ACC.append(ctx.rank)

            def _step(ctx):
                return _helper(ctx)

            def run():
                spmd_run(2, [_step])
        """
        assert codes(src) == ["SPMD001"]

    def test_ctx_state_mutation_is_clean(self):
        src = """
            def _step(ctx):
                ctx.state["k"] = ctx.rank
                ctx.state.setdefault("log", []).append(1)

            def run():
                spmd_run(2, [_step])
        """
        assert codes(src) == []

    def test_local_mutation_is_clean(self):
        src = """
            def _step(ctx):
                acc = []
                acc.append(ctx.rank)
                return acc

            def run():
                spmd_run(2, [_step])
        """
        assert codes(src) == []

    def test_step_argument_mutation_flagged(self):
        src = """
            def _step(ctx, arg):
                arg.append(ctx.rank)

            def run(sess):
                sess.step(_step, [])
        """
        assert codes(src) == ["SPMD001"]

    def test_alias_of_shared_flagged(self):
        src = """
            def _step(ctx):
                table = ctx.shared["table"]
                table[ctx.rank] = 1

            def run():
                spmd_run(2, [_step])
        """
        assert codes(src) == ["SPMD001"]

    def test_global_rebinding_flagged(self):
        src = """
            COUNT = 0

            def _step(ctx):
                global COUNT
                COUNT = COUNT + 1

            def run():
                spmd_run(2, [_step])
        """
        assert codes(src) == ["SPMD001"]

    def test_unregistered_function_not_checked(self):
        src = """
            ACC = []

            def helper(ctx):
                ACC.append(ctx.rank)
        """
        assert codes(src) == []

    def test_chaos_step_wrapped_superstep_still_checked(self):
        """The fault harness's ChaosStep wrapper is transparent to the
        pass — the wrapped superstep's races are still found."""
        src = """
            from repro.runtime.faults import ChaosStep

            ACC = []

            def _step(ctx, arg):
                ACC.append(ctx.rank)

            def run(session):
                session.step(ChaosStep(_step, 0, {}), None)
        """
        assert codes(src) == ["SPMD001"]

    def test_chaos_step_wrapped_clean_superstep(self):
        src = """
            from repro.runtime.faults import ChaosStep

            def _step(ctx, arg):
                ctx.state["n"] = ctx.rank

            def run(session):
                session.step(ChaosStep(_step, 0, {}), None)
        """
        assert codes(src) == []


class TestSPMD002:
    def test_lambda_superstep_rng(self):
        src = """
            import numpy as np

            def run():
                spmd_run(2, [lambda ctx: np.random.random()])
        """
        assert codes(src) == ["SPMD002"]

    def test_bare_import_from_random(self):
        src = """
            from random import randint

            def _step(ctx):
                return randint(0, 9)

            def run():
                spmd_run(2, [_step])
        """
        assert codes(src) == ["SPMD002"]

    def test_non_rng_random_name_is_clean(self):
        src = """
            def random(): return 4

            def _step(ctx):
                return random()

            def run():
                spmd_run(2, [_step])
        """
        assert codes(src) == []


class TestSPMD003:
    def test_partial_wrapped_superstep(self):
        src = """
            from functools import partial
            import threading

            def run():
                lock = threading.Lock()

                def _step(ctx, arg):
                    with lock:
                        return arg

                spmd_run(2, [partial(_step, 7)])
        """
        assert codes(src) == ["SPMD003"]

    def test_module_level_superstep_never_flagged(self):
        src = """
            import threading
            GUARD = threading.Lock()

            def _step(ctx):
                return ctx.rank

            def run():
                spmd_run(2, [_step])
        """
        assert codes(src) == []


class TestDET001:
    def test_coordinator_checked_too(self):
        src = """
            import time

            def _step(ctx):
                return ctx.rank

            def run():
                started = time.time()
                spmd_run(2, [_step])
                return started
        """
        assert codes(src) == ["DET001"]

    def test_sorted_set_iteration_is_clean(self):
        src = """
            def _step(ctx):
                pending = {3, 1, 2}
                return [x for x in sorted(pending)]

            def run():
                spmd_run(2, [_step])
        """
        assert codes(src) == []


class TestFLOAT001:
    def test_values_sum_allowed_in_coordinator(self):
        # coordinator-side dict folds are insertion-ordered by the
        # deterministic rank-ordered merge (the dtree/_induce_rounds
        # pattern) — only rank-side arrival-order folds are flagged
        src = """
            def _step(ctx):
                return ctx.rank

            def run():
                hists = {}
                spmd_run(2, [_step])
                return sum(h for h in hists.values())
        """
        assert codes(src) == []

    def test_fsum_over_set_flagged(self):
        src = """
            import math

            def _step(ctx):
                vals = {0.1, 0.2}
                return math.fsum(vals)

            def run():
                spmd_run(2, [_step])
        """
        assert codes(src) == ["FLOAT001"]


class TestAnalyzerPlumbing:
    def test_rules_registered(self):
        assert [r.code for r in spmd_rules()] == [
            "DET001",
            "FLOAT001",
            "SPMD001",
            "SPMD002",
            "SPMD003",
        ]

    def test_select_and_ignore(self):
        src = """
            import numpy as np
            ACC = []

            def _step(ctx):
                ACC.append(np.random.random())

            def run():
                spmd_run(2, [_step])
        """
        assert codes(src) == ["SPMD001", "SPMD002"]
        assert codes(src, select=["SPMD002"]) == ["SPMD002"]
        assert codes(src, ignore=["SPMD002"]) == ["SPMD001"]

    def test_suppression_comment_honoured(self):
        src = """
            ACC = []

            def _step(ctx):
                ACC.append(ctx.rank)  # repro-lint: disable=SPMD001

            def run():
                spmd_run(2, [_step])
        """
        assert codes(src) == []

    def test_unresolvable_step_is_skipped(self):
        src = """
            def run(steps):
                spmd_run(2, steps)

            def run2(sess, fn):
                sess.step(fn)
        """
        assert codes(src) == []

    def test_syntax_error_file_skipped(self, tmp_path):
        (tmp_path / "bad.py").write_text("def f(:\n")
        (tmp_path / "ok.py").write_text(
            "ACC = []\n\n"
            "def _step(ctx):\n    ACC.append(1)\n\n"
            "def run():\n    spmd_run(2, [_step])\n"
        )
        diags = SpmdAnalyzer().analyze_paths([tmp_path])
        assert [d.code for d in diags] == ["SPMD001"]


class TestFixtureGoldens:
    def _normalized(self):
        diags = sorted(
            set(LintEngine().lint_paths([FIXDIR]))
            | set(SpmdAnalyzer().analyze_paths([FIXDIR]))
        )
        return sorted(
            dataclasses.replace(d, path=Path(d.path).name) for d in diags
        )

    def test_exact_code_counts(self):
        diags = self._normalized()
        summary = as_json_payload(diags)["summary"]
        assert summary == {
            "DET001": 3,
            "FLOAT001": 2,
            "SPMD001": 4,
            "SPMD002": 2,
            "SPMD003": 4,
        }

    def test_clean_modules_stay_clean(self):
        diags = self._normalized()
        flagged = {d.path for d in diags}
        assert "clean.py" not in flagged
        assert "__init__.py" not in flagged

    def test_matches_golden_json(self):
        golden = json.loads((GOLDEN / "spmd_fixtures.json").read_text())
        assert as_json_payload(self._normalized()) == golden

    def test_matches_golden_sarif(self):
        golden = json.loads((GOLDEN / "spmd_fixtures.sarif").read_text())
        assert as_sarif_payload(self._normalized()) == golden

    def test_real_tree_is_spmd_clean(self):
        src_root = Path(__file__).resolve().parents[2] / "src" / "repro"
        assert SpmdAnalyzer().analyze_paths([src_root]) == []
