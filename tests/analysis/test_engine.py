"""Engine-level behaviour: suppressions, selection, discovery."""

from pathlib import Path

import pytest

from repro.analysis.engine import (
    SYNTAX_ERROR_CODE,
    Diagnostic,
    LintEngine,
    module_name_for,
)

FIXTURES = Path(__file__).parent / "fixtures"

ASSERT_SRC = "def f(x):\n    assert x\n"


class TestSuppressions:
    def test_line_level_disable(self):
        src = "def f(x):\n    assert x  # repro-lint: disable=ASSERT001\n"
        assert LintEngine().lint_source(src, module="repro.m") == []

    def test_line_level_disable_all(self):
        src = "def f(x):\n    assert x  # repro-lint: disable=all\n"
        assert LintEngine().lint_source(src, module="repro.m") == []

    def test_other_code_does_not_suppress(self):
        src = "def f(x):\n    assert x  # repro-lint: disable=ARR001\n"
        codes = [d.code for d in LintEngine().lint_source(src, module="repro.m")]
        assert codes == ["ASSERT001"]

    def test_file_level_disable(self):
        src = (
            "# repro-lint: disable-file=ASSERT001\n"
            "def f(x):\n    assert x\n\n"
            "def g(x):\n    assert not x\n"
        )
        assert LintEngine().lint_source(src, module="repro.m") == []

    def test_comment_inside_string_does_not_suppress(self):
        src = (
            'NOTE = "# repro-lint: disable-file=ASSERT001"\n'
            "def f(x):\n    assert x\n"
        )
        codes = [d.code for d in LintEngine().lint_source(src, module="repro.m")]
        assert codes == ["ASSERT001"]

    def test_suppression_only_covers_its_line(self):
        src = (
            "def f(x):\n"
            "    assert x  # repro-lint: disable=ASSERT001\n"
            "    assert not x\n"
        )
        diags = LintEngine().lint_source(src, module="repro.m")
        assert [d.line for d in diags] == [3]

    def test_file_level_disable_all(self):
        src = (
            "# repro-lint: disable-file=all\n"
            "def f(x):\n    assert x\n"
        )
        assert LintEngine().lint_source(src, module="repro.m") == []

    def test_multi_code_list_with_odd_whitespace(self):
        src = (
            "def f(x):\n"
            "    assert x  #   repro-lint:   disable = ASSERT001 ,"
            "   ARR001\n"
        )
        assert LintEngine().lint_source(src, module="repro.m") == []

    def test_multi_code_list_only_named_codes_suppressed(self):
        src = (
            "def f(x):\n"
            "    assert x  # repro-lint: disable=ARR001, RNG001\n"
        )
        codes = [
            d.code for d in LintEngine().lint_source(src, module="repro.m")
        ]
        assert codes == ["ASSERT001"]

    def test_suppression_on_decorator_line_covers_def(self):
        # VAL001 anchors at the def statement, but authors write the
        # comment next to the decorator — both placements must silence
        src = (
            "@wrapped  # repro-lint: disable=VAL001\n"
            "def partition_kway(csr, k):\n"
            "    return csr\n"
        )
        assert (
            LintEngine().lint_source(src, module="repro.partition.kway")
            == []
        )

    def test_undecorated_def_still_flagged(self):
        src = "def partition_kway(csr, k):\n    return csr\n"
        codes = [
            d.code
            for d in LintEngine().lint_source(
                src, module="repro.partition.kway"
            )
        ]
        assert codes == ["VAL001"]


class TestSelection:
    def test_select_narrows(self):
        engine = LintEngine(select=["ARR001"])
        assert [r.code for r in engine.rules] == ["ARR001"]

    def test_ignore_drops(self):
        engine = LintEngine(ignore=["ASSERT001"])
        assert "ASSERT001" not in [r.code for r in engine.rules]

    def test_unknown_select_raises(self):
        with pytest.raises(KeyError, match="NOPE999"):
            LintEngine(select=["NOPE999"])


class TestModuleNames:
    def test_src_layout(self):
        assert module_name_for("src/repro/graph/csr.py") == "repro.graph.csr"

    def test_init_maps_to_package(self):
        assert module_name_for("src/repro/graph/__init__.py") == "repro.graph"

    def test_fixture_layout(self):
        path = "tests/analysis/fixtures/repro/partition/arr_bad.py"
        assert module_name_for(path) == "repro.partition.arr_bad"

    def test_unanchored_path_uses_basename(self):
        assert module_name_for("/tmp/scratch/thing.py") == "thing"


class TestDiscovery:
    def test_fixture_tree_yields_expected_codes(self):
        diags = LintEngine().lint_paths([FIXTURES])
        by_code = {}
        for d in diags:
            by_code.setdefault(d.code, []).append(d)
        assert set(by_code) == {
            "ARR001",
            "ARR002",
            "ASSERT001",
            "LOOP001",
            "RNG001",
            "VAL001",
        }
        # the suppressed np.arange site must not be reported
        assert len(by_code["ARR001"]) == 1
        assert len(by_code["ARR002"]) == 2
        assert len(by_code["RNG001"]) == 2

    def test_clean_fixture_is_clean(self):
        clean = FIXTURES / "repro" / "clean_ok.py"
        assert LintEngine().lint_file(clean) == []

    def test_missing_path_raises(self):
        with pytest.raises(FileNotFoundError):
            LintEngine().lint_paths([FIXTURES / "does_not_exist"])

    def test_diagnostics_are_sorted(self):
        diags = LintEngine().lint_paths([FIXTURES])
        assert diags == sorted(diags)


class TestSyntaxErrors:
    def test_unparsable_source_reports_e999(self):
        diags = LintEngine().lint_source("def f(:\n", module="repro.m")
        assert [d.code for d in diags] == [SYNTAX_ERROR_CODE]
        assert diags[0].col >= 1  # 1-based like every other column

    def test_e999_file_inside_multi_target_run(self, tmp_path):
        (tmp_path / "bad.py").write_text("def f(:\n")
        (tmp_path / "flagged.py").write_text("def f(x):\n    assert x\n")
        # module name must not look like a test module for ASSERT001
        diags = LintEngine().lint_paths(
            [tmp_path / "bad.py", tmp_path / "flagged.py"]
        )
        assert [d.code for d in diags] == [SYNTAX_ERROR_CODE, "ASSERT001"]

    def test_e999_does_not_abort_directory_walk(self, tmp_path):
        (tmp_path / "a_bad.py").write_text("def f(:\n")
        (tmp_path / "b_ok.py").write_text("x = 1\n")
        diags = LintEngine().lint_paths([tmp_path])
        assert [d.code for d in diags] == [SYNTAX_ERROR_CODE]


class TestExcludePatterns:
    def test_exclude_glob_skips_matching_files(self, tmp_path):
        sub = tmp_path / "fixtures"
        sub.mkdir()
        (sub / "seeded.py").write_text("def f(x):\n    assert x\n")
        (tmp_path / "real.py").write_text("def f(x):\n    assert x\n")
        diags = LintEngine().lint_paths(
            [tmp_path], exclude=["*/fixtures/*"]
        )
        assert [Path(d.path).name for d in diags] == ["real.py"]

    def test_exclude_applies_to_explicit_files(self, tmp_path):
        target = tmp_path / "skip_me.py"
        target.write_text("def f(x):\n    assert x\n")
        assert LintEngine().lint_paths([target], exclude=["*skip_me*"]) == []


class TestColumns:
    def test_columns_are_one_based(self):
        src = "def f(x):\n    assert x\n"
        diags = LintEngine().lint_source(src, module="repro.m")
        # the assert starts at 0-based offset 4 → reported column 5
        assert [(d.line, d.col) for d in diags] == [(2, 5)]


class TestDiagnostic:
    def test_render_format(self):
        d = Diagnostic("a.py", 3, 7, "ARR001", "msg here")
        assert d.render() == "a.py:3:7: ARR001 msg here"

    def test_as_dict_roundtrip(self):
        d = Diagnostic("a.py", 3, 7, "ARR001", "msg")
        assert d.as_dict() == {
            "path": "a.py",
            "line": 3,
            "col": 7,
            "code": "ARR001",
            "message": "msg",
        }
