"""Engine-level behaviour: suppressions, selection, discovery."""

from pathlib import Path

import pytest

from repro.analysis.engine import (
    SYNTAX_ERROR_CODE,
    Diagnostic,
    LintEngine,
    module_name_for,
)

FIXTURES = Path(__file__).parent / "fixtures"

ASSERT_SRC = "def f(x):\n    assert x\n"


class TestSuppressions:
    def test_line_level_disable(self):
        src = "def f(x):\n    assert x  # repro-lint: disable=ASSERT001\n"
        assert LintEngine().lint_source(src, module="repro.m") == []

    def test_line_level_disable_all(self):
        src = "def f(x):\n    assert x  # repro-lint: disable=all\n"
        assert LintEngine().lint_source(src, module="repro.m") == []

    def test_other_code_does_not_suppress(self):
        src = "def f(x):\n    assert x  # repro-lint: disable=ARR001\n"
        codes = [d.code for d in LintEngine().lint_source(src, module="repro.m")]
        assert codes == ["ASSERT001"]

    def test_file_level_disable(self):
        src = (
            "# repro-lint: disable-file=ASSERT001\n"
            "def f(x):\n    assert x\n\n"
            "def g(x):\n    assert not x\n"
        )
        assert LintEngine().lint_source(src, module="repro.m") == []

    def test_comment_inside_string_does_not_suppress(self):
        src = (
            'NOTE = "# repro-lint: disable-file=ASSERT001"\n'
            "def f(x):\n    assert x\n"
        )
        codes = [d.code for d in LintEngine().lint_source(src, module="repro.m")]
        assert codes == ["ASSERT001"]

    def test_suppression_only_covers_its_line(self):
        src = (
            "def f(x):\n"
            "    assert x  # repro-lint: disable=ASSERT001\n"
            "    assert not x\n"
        )
        diags = LintEngine().lint_source(src, module="repro.m")
        assert [d.line for d in diags] == [3]


class TestSelection:
    def test_select_narrows(self):
        engine = LintEngine(select=["ARR001"])
        assert [r.code for r in engine.rules] == ["ARR001"]

    def test_ignore_drops(self):
        engine = LintEngine(ignore=["ASSERT001"])
        assert "ASSERT001" not in [r.code for r in engine.rules]

    def test_unknown_select_raises(self):
        with pytest.raises(KeyError, match="NOPE999"):
            LintEngine(select=["NOPE999"])


class TestModuleNames:
    def test_src_layout(self):
        assert module_name_for("src/repro/graph/csr.py") == "repro.graph.csr"

    def test_init_maps_to_package(self):
        assert module_name_for("src/repro/graph/__init__.py") == "repro.graph"

    def test_fixture_layout(self):
        path = "tests/analysis/fixtures/repro/partition/arr_bad.py"
        assert module_name_for(path) == "repro.partition.arr_bad"

    def test_unanchored_path_uses_basename(self):
        assert module_name_for("/tmp/scratch/thing.py") == "thing"


class TestDiscovery:
    def test_fixture_tree_yields_expected_codes(self):
        diags = LintEngine().lint_paths([FIXTURES])
        by_code = {}
        for d in diags:
            by_code.setdefault(d.code, []).append(d)
        assert set(by_code) == {
            "ARR001",
            "ARR002",
            "ASSERT001",
            "LOOP001",
            "RNG001",
            "VAL001",
        }
        # the suppressed np.arange site must not be reported
        assert len(by_code["ARR001"]) == 1
        assert len(by_code["ARR002"]) == 2
        assert len(by_code["RNG001"]) == 2

    def test_clean_fixture_is_clean(self):
        clean = FIXTURES / "repro" / "clean_ok.py"
        assert LintEngine().lint_file(clean) == []

    def test_missing_path_raises(self):
        with pytest.raises(FileNotFoundError):
            LintEngine().lint_paths([FIXTURES / "does_not_exist"])

    def test_diagnostics_are_sorted(self):
        diags = LintEngine().lint_paths([FIXTURES])
        assert diags == sorted(diags)


class TestSyntaxErrors:
    def test_unparsable_source_reports_e999(self):
        diags = LintEngine().lint_source("def f(:\n", module="repro.m")
        assert [d.code for d in diags] == [SYNTAX_ERROR_CODE]


class TestDiagnostic:
    def test_render_format(self):
        d = Diagnostic("a.py", 3, 7, "ARR001", "msg here")
        assert d.render() == "a.py:3:7: ARR001 msg here"

    def test_as_dict_roundtrip(self):
        d = Diagnostic("a.py", 3, 7, "ARR001", "msg")
        assert d.as_dict() == {
            "path": "a.py",
            "line": 3,
            "col": 7,
            "code": "ARR001",
            "message": "msg",
        }
