"""SPMD002 seeds: module-level RNG streams inside rank code.

Uses the raw ``open_session``/``step`` protocol so the analyzer's
session-variable recognition is exercised too.
"""

import random

import numpy as np

from repro.runtime.backends.base import resolve_backend


def _draw_numpy(ctx, arg):
    return np.random.random()  # SPMD002: process-global numpy stream


def _draw_stdlib(ctx, arg):
    return random.random()  # SPMD002: process-global stdlib stream


def run_draws(backend=None):
    sess = resolve_backend(backend).open_session(2)
    try:
        first = sess.step(_draw_numpy)
        second = sess.step(_draw_stdlib)
    finally:
        sess.close()
    return first, second
