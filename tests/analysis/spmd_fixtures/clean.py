"""A clean SPMD module: every pattern the rules must permit."""

from repro.runtime.executor import spmd_run


def _local_fold(ctx):
    ctx.state["acc"] = float(ctx.rank)
    values = [0.25, 0.5, 0.25]
    total = 0.0
    for v in values:
        total += v
    return sum(values) + total


def run_clean(backend=None):
    results = spmd_run(2, [_local_fold], backend=backend)
    # step results arrive rank-ordered, so this fold is deterministic
    return sum(results[0])
