"""SPMD001 seeds: supersteps that mutate state shared across ranks.

Every violation has a ``run_*`` entry point so the dynamic race
sentinel can reproduce the static finding; ``run_clean`` exercises the
permitted pattern (mutation confined to ``ctx.state``).
"""

from repro.runtime.executor import spmd_run

TOTALS = []
CACHE = {}


def _append_global(ctx):
    TOTALS.append(ctx.rank)  # SPMD001: module-level list


def _store_global(ctx):
    CACHE[ctx.rank] = ctx.size  # SPMD001: module-level dict


def _write_shared(ctx):
    ctx.shared["acc"].append(ctx.rank)  # SPMD001: broadcast mapping


def _clean_state(ctx):
    ctx.state["seen"] = ctx.rank
    ctx.state.setdefault("log", []).append(ctx.size)
    return ctx.state["seen"]


def run_append_global(backend=None):
    return spmd_run(2, [_append_global], backend=backend)


def run_store_global(backend=None):
    return spmd_run(2, [_store_global], backend=backend)


def run_write_shared(backend=None):
    return spmd_run(2, [_write_shared], backend=backend, shared={"acc": []})


def run_closure_append(backend=None):
    acc = []

    def _append_closure(ctx):
        acc.append(ctx.rank)  # SPMD001: captured from enclosing scope

    spmd_run(2, [_append_closure], backend=backend)
    return acc


def run_clean(backend=None):
    return spmd_run(2, [_clean_state], backend=backend)
