"""FLOAT001 seeds: float accumulation over unordered containers."""

from repro.runtime.executor import spmd_run


def _fold_set(ctx):
    weights = {0.1, 0.2, 0.7}
    return sum(weights)  # FLOAT001: set (hash order)


def _fold_values(ctx):
    parts = {}
    for src, val in ctx.inbox():
        parts[src] = val
    return sum(parts.values())  # FLOAT001: arrival-order dict in rank code


def run_float(backend=None):
    return spmd_run(2, [_fold_set, _fold_values], backend=backend)
