"""SPMD003 seeds: superstep closures over non-picklable objects."""

import threading

from repro.runtime.executor import spmd_run


def run_lock_capture(backend=None):
    guard = threading.Lock()

    def _locked(ctx):  # SPMD003: captures a lock
        with guard:
            return ctx.rank

    return spmd_run(2, [_locked], backend=backend)


def run_file_capture(backend=None):
    log = open("/dev/null", "w")

    def _logged(ctx):  # SPMD003: captures a file handle
        log.write(str(ctx.rank))
        return ctx.rank

    return spmd_run(2, [_logged], backend=backend)


def run_generator_capture(backend=None):
    stream = (i * i for i in range(8))

    def _pull(ctx):  # SPMD003: captures a generator
        return next(stream)

    return spmd_run(2, [_pull], backend=backend)


def run_local_class_capture(backend=None):
    class Acc:
        pass

    box = Acc()

    def _boxed(ctx):  # SPMD003: captures a local-class instance
        return (box, ctx.rank)

    return spmd_run(2, [_boxed], backend=backend)
