"""Seeded SPMD-rule violations (linted as a project in tests).

Each module plants exactly the violations its name says; the SPMD001
cases double as *runnable* entry points so the race sentinel can
reproduce every static finding dynamically (see
``tests/runtime/test_sentinel.py``).  This tree is excluded from the
real CI lint run.
"""
