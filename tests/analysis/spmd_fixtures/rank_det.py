"""DET001 seeds: nondeterminism sources in rank code."""

import time

from repro.runtime.executor import spmd_run


def _stamp(ctx):
    return time.perf_counter()  # DET001: wall-clock read


def _set_fold(ctx):
    pending = {3, 1, 2}
    order = []
    for item in pending:  # DET001: set iteration feeding a result
        order.append(item)
    return order


def _id_order(ctx):
    items = [object() for _ in range(3)]
    return sorted(items, key=id)  # DET001: allocation-address ordering


def run_det(backend=None):
    return spmd_run(2, [_stamp, _set_fold, _id_order], backend=backend)
