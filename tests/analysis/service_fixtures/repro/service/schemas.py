"""Fixture stand-in for the request validators (the taint sanitizer).

``boundary.py`` treats any ``validate_*`` function living in a
``.schemas`` module as the trust boundary — calls through it launder
taint, and its body is deliberately not followed.
"""

from __future__ import annotations

from typing import Any, Dict


def validate_job_request(document: object) -> Dict[str, Any]:
    if not isinstance(document, dict):
        raise ValueError("request body must be a JSON object")
    return dict(document)
