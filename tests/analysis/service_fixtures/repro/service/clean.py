"""Clean fixture: the sanctioned service patterns, zero findings.

Blocking work routed through ``run_in_executor``, loop-only state
mutation (single-writer, no lock needed), awaited coroutines, and
record-only wall-clock use.
"""

from __future__ import annotations

import asyncio
import time


class CleanService:
    def __init__(self) -> None:
        self.jobs_done = 0

    async def handle(self) -> int:
        loop = asyncio.get_event_loop()
        payload = await loop.run_in_executor(None, self._read_disk)
        self.jobs_done += 1  # loop-only mutation: single writer
        await asyncio.sleep(0)
        return len(payload)

    def _read_disk(self) -> bytes:
        with open("payload.bin", "rb") as fh:  # executor context
            return fh.read()

    def uptime(self, started: float) -> float:
        return time.time() - started  # record-only wall clock
