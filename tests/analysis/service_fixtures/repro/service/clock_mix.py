"""TIME001 fixture: wall clock mixed into deadline/backoff arithmetic.

Three findings in ``schedule_retry``: a ``time.time()`` result
assigned to a deadline, one compared against a deadline attribute, and
one subtracted from a monotonic reading.  Recording timestamps for
human consumption (``record_timestamps``) stays clean — wall clock is
the right source there.
"""

from __future__ import annotations

import time

RETRY_BUDGET_S = 5.0


class RetryJob:
    def __init__(self) -> None:
        self.deadline_s = time.monotonic() + RETRY_BUDGET_S


def schedule_retry(job: RetryJob) -> float:
    deadline = time.time() + RETRY_BUDGET_S  # TIME001: NTP step skews this
    if time.time() >= job.deadline_s:  # TIME001: compares to monotonic deadline
        return 0.0
    backoff = time.monotonic() - time.time()  # TIME001: mixed clock domains
    return deadline + backoff


def record_timestamps() -> dict:
    started = time.time()  # clean: record-only wall clock
    elapsed = time.time() - started  # clean: no deadline involved
    return {"started": started, "elapsed": elapsed}
