"""ASYNC002 fixture: coroutines called but never awaited or scheduled.

Two findings: a bare module-level coroutine call and a discarded
``self.<coroutine>()`` call.  The awaited and ``create_task``-scheduled
variants stay clean.
"""

from __future__ import annotations

import asyncio


async def refresh_cache() -> None:
    await asyncio.sleep(0)


async def tick() -> None:
    refresh_cache()  # ASYNC002: coroutine object silently discarded
    await refresh_cache()  # clean: awaited
    asyncio.create_task(refresh_cache())  # clean: scheduled


class Worker:
    async def pulse(self) -> None:
        await asyncio.sleep(0)

    async def run(self) -> None:
        self.pulse()  # ASYNC002: discarded bound coroutine
        await self.pulse()  # clean
