"""TRUST001 fixture: request fields reaching sinks without validation.

Three findings: the acceptance-criterion flow (``json.loads`` body
straight into ``np.load``), an interprocedural flow where the tainted
field crosses a helper boundary before hitting ``open``, and a tainted
element inside a ``subprocess.run`` argv list.  ``admitted`` routes
the document through the schema validator first and stays clean.
"""

from __future__ import annotations

import json
import subprocess
from typing import Any, Dict

import numpy as np

from repro.service.schemas import validate_job_request


def load_request_mesh(body: bytes) -> "np.ndarray":
    doc = json.loads(body.decode("utf-8"))
    return np.load(doc["path"])  # TRUST001: unvalidated path from the wire


def submit(body: bytes) -> None:
    doc = json.loads(body.decode("utf-8"))
    _probe(doc["source"])  # taint flows into the helper


def _probe(source: Dict[str, Any]) -> None:
    with open(source["path"], "rb"):  # TRUST001: via 'submit'
        pass


def convert(body: bytes) -> None:
    doc = json.loads(body)
    subprocess.run(["mesh-convert", doc["path"]])  # TRUST001: tainted argv


def admitted(body: bytes) -> "np.ndarray":
    request = validate_job_request(json.loads(body))
    # clean: every field passed through the schema validator
    return np.load(request["source"]["path"])
