"""ASYNC003 fixture: state mutated from both loop and executor context.

``unsafe_total`` is bumped by the coroutine *and* by the executor
worker with no lock on either side — both sites are flagged.
``safe_total`` follows the same cross-context pattern but every site
holds a lock (asyncio lock on the loop side, thread lock on the
executor side), so it stays clean.
"""

from __future__ import annotations

import asyncio
import threading


class SharedCounters:
    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._loop_lock = asyncio.Lock()
        self.unsafe_total = 0
        self.safe_total = 0

    async def record(self) -> None:
        self.unsafe_total += 1  # ASYNC003: unlocked loop-side write
        async with self._loop_lock:
            self.safe_total += 1  # clean: locked
        loop = asyncio.get_event_loop()
        await loop.run_in_executor(None, self._work)

    def _work(self) -> None:
        self.unsafe_total += 1  # ASYNC003: unlocked executor-side write
        with self._lock:
            self.safe_total += 1  # clean: locked
