"""ASYNC001 fixture: blocking calls reachable from coroutine context.

Five findings: ``time.sleep`` and ``np.load`` directly inside a
coroutine, ``open`` inside a sync helper that a coroutine calls, a
``threading.Lock`` acquired inside a coroutine, and a blocking
``queue.Queue.get``.  The executor-routed helper at the bottom stays
clean — that is the sanctioned escape hatch.
"""

from __future__ import annotations

import asyncio
import queue as queue_mod
import threading
import time

import numpy as np


class BlockingService:
    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.handled = 0

    async def handle(self) -> bytes:
        time.sleep(0.01)  # ASYNC001: blocking sleep on the loop
        grid = np.load("grid.npy")  # ASYNC001: synchronous file I/O
        config = self._read_config()  # drags the helper into loop context
        with self._lock:  # ASYNC001: thread lock can park the loop
            self.handled += 1
        await asyncio.sleep(0)
        return config.encode() + bytes(grid.shape[0])

    def _read_config(self) -> str:
        with open("service.cfg") as fh:  # ASYNC001: via coroutine 'handle'
            return fh.read()

    async def drain(self) -> None:
        backlog: queue_mod.Queue = queue_mod.Queue()
        backlog.get()  # ASYNC001: blocking queue op on the loop

    async def offloaded(self) -> bytes:
        loop = asyncio.get_event_loop()
        return await loop.run_in_executor(None, self._read_disk)

    def _read_disk(self) -> bytes:
        # clean: only ever reached through run_in_executor
        with open("payload.bin", "rb") as fh:
            return fh.read()
