"""SM001/SM002 fixture: a deliberately broken job state machine.

The transition table is a mutated copy of the real
``repro.service.queue._TRANSITIONS`` seeding every table-shape
diagnostic (SM002): a dangling edge (``running -> ghost``), a declared
terminal state with an exit (``failed``), an unreachable state
(``orphan`` — which drags ``stuck`` into a second unreachable
finding), and a state with no outgoing edges that is not declared
terminal (``stuck``).

``settle`` seeds the call-site diagnostics (SM001): an illegal
consecutive pair (``running -> cancelled`` is not an edge), a
transition to an unknown state, and a transition into a state no edge
ever enters.
"""

from __future__ import annotations

_TRANSITIONS = {
    "queued": ("running", "cancelled"),
    "running": ("done", "failed", "ghost"),  # SM002: 'ghost' is not a state
    "done": (),
    "failed": ("queued",),  # SM002: terminal state with an outgoing edge
    "cancelled": (),
    "orphan": ("done",),  # SM002: unreachable from 'queued'
    "stuck": (),  # SM002: unreachable, and dead-ends without being terminal
}

_TERMINAL = ("done", "failed", "cancelled")


class LifecycleJob:
    def __init__(self) -> None:
        self.state = "queued"

    def transition(self, state: str) -> None:
        if state not in _TRANSITIONS.get(self.state, ()):
            raise RuntimeError(f"illegal transition {self.state} -> {state}")
        self.state = state


def settle(job: LifecycleJob) -> None:
    job.transition("running")  # clean on its own
    job.transition("cancelled")  # SM001: 'running' -> 'cancelled' not an edge
    job.transition("nowhere")  # SM001: not a state at all
    job.transition("orphan")  # SM001: no edge ever enters 'orphan'
