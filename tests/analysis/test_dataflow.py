"""Unit coverage for the scope/capture/call-graph summaries."""

import ast
import textwrap

from repro.analysis.dataflow import (
    ProjectIndex,
    dotted_parts,
    dotted_text,
    summarize_module,
)


def summarize(source, module="m", path="m.py"):
    tree = ast.parse(textwrap.dedent(source))
    return summarize_module(module, path, tree)


class TestDottedParts:
    def test_name(self):
        assert dotted_parts(ast.parse("x", mode="eval").body) == ("x",)

    def test_attribute_chain(self):
        expr = ast.parse("a.b.c", mode="eval").body
        assert dotted_parts(expr) == ("a", "b", "c")

    def test_subscript_is_transparent(self):
        expr = ast.parse("ctx.shared['k'].append", mode="eval").body
        assert dotted_parts(expr) == ("ctx", "shared", "append")

    def test_unrooted_chain_is_none(self):
        expr = ast.parse("f().attr", mode="eval").body
        assert dotted_parts(expr) is None
        assert dotted_text(expr) is None


class TestScopeFacts:
    def test_params_locals_and_loads(self):
        s = summarize(
            """
            def f(a, b=1, *args, kw=None, **extra):
                local = a + other
                return local
            """
        )
        fn = s.functions["f"]
        assert fn.params == {"a", "b", "args", "kw", "extra"}
        assert "local" in fn.bound
        assert "other" in fn.loads
        assert fn.is_local("local") and not fn.is_local("other")

    def test_mutations_recorded_by_kind(self):
        s = summarize(
            """
            def f(ctx):
                ctx.state["k"] = 1
                acc = []
                acc.append(2)
                total = 0
                total += 1
                del ctx.state["k"]
            """
        )
        kinds = {
            (m.kind, m.chain) for m in s.functions["f"].mutations
        }
        assert ("store", ("ctx", "state")) in kinds
        assert ("method", ("acc",)) in kinds
        assert ("augassign", ("total",)) in kinds
        assert ("delete", ("ctx", "state")) in kinds

    def test_captures_resolve_to_enclosing_binding(self):
        s = summarize(
            """
            def outer():
                acc = []
                def inner(ctx):
                    acc.append(ctx.rank)
                return inner
            """
        )
        inner = s.functions["outer.<locals>.inner"]
        assert "acc" in inner.captured
        assert isinstance(inner.captured["acc"], ast.List)

    def test_nonlocal_is_always_captured(self):
        s = summarize(
            """
            def outer():
                n = 0
                def bump():
                    nonlocal n
                    n += 1
                return bump
            """
        )
        bump = s.functions["outer.<locals>.bump"]
        assert "n" in bump.captured

    def test_global_reads_exclude_imports_and_builtins(self):
        s = summarize(
            """
            import numpy as np
            TOTALS = []

            def f(ctx):
                TOTALS.append(len(np.zeros(1)))
            """
        )
        fn = s.functions["f"]
        assert fn.global_reads == {"TOTALS"}

    def test_session_variable_recognised(self):
        s = summarize(
            """
            def run(backend):
                handle = backend.open_session(4)
                with backend.open_session(2) as managed:
                    pass
            """
        )
        assert s.session_names == {"handle", "managed"}

    def test_lambda_gets_a_summary(self):
        s = summarize("f = lambda ctx: ctx.rank\n")
        names = [fn.name for fn in s.functions.values()]
        assert names == ["<lambda-1>"]


class TestProjectIndex:
    def test_resolves_from_import(self):
        lib = summarize("def step(ctx):\n    return ctx.rank\n", "lib", "lib.py")
        app_tree = ast.parse(
            "from lib import step\n\ndef go():\n    step(None)\n"
        )
        index = ProjectIndex(
            [lib, summarize_module("app", "app.py", app_tree)]
        )
        fn = index.resolve_function("app", "step")
        assert fn is not None and fn.module == "lib"

    def test_resolves_module_attribute(self):
        lib = summarize("def step(ctx):\n    return 1\n", "lib", "lib.py")
        app_tree = ast.parse("import lib\n\ndef go():\n    lib.step(None)\n")
        index = ProjectIndex(
            [lib, summarize_module("app", "app.py", app_tree)]
        )
        fn = index.resolve_function("app", "lib.step")
        assert fn is not None and fn.qualname == "step"

    def test_unknown_name_resolves_to_none(self):
        lib = summarize("def step(ctx):\n    return 1\n", "lib", "lib.py")
        index = ProjectIndex([lib])
        assert index.resolve_function("lib", "missing") is None
        assert index.resolve_function("nope", "step") is None

    def test_reachable_closes_over_calls(self):
        s = summarize(
            """
            def helper():
                return leaf()

            def leaf():
                return 1

            def root(ctx):
                return helper()

            def unrelated():
                return 2
            """
        )
        index = ProjectIndex([s])
        reached = index.reachable([s.functions["root"]])
        names = {fn.qualname for fn in reached}
        assert names == {"root", "helper", "leaf"}

    def test_reachable_prefers_nested_over_module(self):
        s = summarize(
            """
            def helper():
                return "module"

            def root(ctx):
                def helper():
                    return "nested"
                return helper()
            """
        )
        index = ProjectIndex([s])
        reached = index.reachable([s.functions["root"]])
        names = {fn.qualname for fn in reached}
        assert "root.<locals>.helper" in names
        assert "helper" not in names
