"""The committed lint baseline: write/load/apply round trip, multiset
semantics, the KERN001 prohibition, and schema rejection."""

import json

import pytest

from repro.analysis.baseline import (
    BASELINE_SCHEMA_VERSION,
    BaselineError,
    apply_baseline,
    load_baseline,
    write_baseline,
)
from repro.analysis.engine import Diagnostic


def diag(path="src/repro/m.py", line=1, col=1, code="PERF001", message="m"):
    return Diagnostic(path=path, line=line, col=col, code=code,
                      message=message)


class TestRoundTrip:
    def test_write_then_apply_suppresses_everything(self, tmp_path):
        found = [diag(line=3), diag(line=9, code="PERF002", message="x")]
        path = tmp_path / "baseline.json"
        assert write_baseline(path, found) == 2
        kept, suppressed = apply_baseline(found, load_baseline(path))
        assert kept == [] and suppressed == 2

    def test_lines_do_not_matter(self, tmp_path):
        """Moving code around must not resurrect baselined findings."""
        path = tmp_path / "baseline.json"
        write_baseline(path, [diag(line=3, col=5)])
        moved = [diag(line=77, col=1)]
        kept, suppressed = apply_baseline(moved, load_baseline(path))
        assert kept == [] and suppressed == 1

    def test_hot_annotation_stripped_both_ways(self, tmp_path):
        path = tmp_path / "baseline.json"
        write_baseline(
            path, [diag(message="m [hot: run/search self=1.0ms]")]
        )
        baseline = load_baseline(path)
        kept, suppressed = apply_baseline(
            [diag(message="m [hot: run/search self=99.9ms]")], baseline
        )
        assert kept == [] and suppressed == 1
        kept, _ = apply_baseline([diag(message="m")], baseline)
        assert kept == []

    def test_multiset_semantics(self, tmp_path):
        """Each entry absorbs one finding; a second new instance of the
        same (path, code, message) still fails."""
        path = tmp_path / "baseline.json"
        write_baseline(path, [diag()])
        kept, suppressed = apply_baseline(
            [diag(line=1), diag(line=2)], load_baseline(path)
        )
        assert suppressed == 1
        assert [d.line for d in kept] == [2]

    def test_new_findings_survive(self, tmp_path):
        path = tmp_path / "baseline.json"
        write_baseline(path, [diag()])
        new = diag(code="PERF005", message="fresh")
        kept, _ = apply_baseline([diag(), new], load_baseline(path))
        assert kept == [new]


class TestKern001Prohibition:
    def test_write_drops_kern001(self, tmp_path):
        path = tmp_path / "baseline.json"
        n = write_baseline(path, [diag(), diag(code="KERN001")])
        assert n == 1
        codes = {e["code"] for e in json.loads(path.read_text())["entries"]}
        assert codes == {"PERF001"}

    def test_load_rejects_kern001_entries(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps({
            "schema": BASELINE_SCHEMA_VERSION,
            "entries": [
                {"path": "p.py", "code": "KERN001", "message": "m"}
            ],
        }))
        with pytest.raises(BaselineError, match="KERN001"):
            load_baseline(path)


class TestSchemaRejection:
    @pytest.mark.parametrize("payload, hint", [
        ("[]", "object"),
        ('{"schema": "v999", "entries": []}', "schema"),
        ('{"schema": "repro.lint-baseline/1"}', "entries"),
        ('{"schema": "repro.lint-baseline/1", "entries": [{}]}',
         "exactly"),
        ('{"schema": "repro.lint-baseline/1", "entries": '
         '[{"path": "", "code": "X", "message": "m"}]}', "non-empty"),
        ("not json", "JSON"),
    ])
    def test_malformed_rejected(self, tmp_path, payload, hint):
        path = tmp_path / "baseline.json"
        path.write_text(payload)
        with pytest.raises(BaselineError, match=hint):
            load_baseline(path)

    def test_written_files_are_sorted_and_stable(self, tmp_path):
        a = tmp_path / "a.json"
        b = tmp_path / "b.json"
        ds = [diag(line=5, code="PERF002"), diag(line=1), diag(line=9)]
        write_baseline(a, ds)
        write_baseline(b, list(reversed(ds)))
        assert a.read_text() == b.read_text()
