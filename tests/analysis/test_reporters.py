"""Reporter output contracts (human text + JSON schema v1)."""

import json

from repro.analysis.engine import Diagnostic
from repro.analysis.reporters import (
    JSON_SCHEMA_VERSION,
    as_json_payload,
    format_human,
    format_json,
)

DIAGS = [
    Diagnostic("a.py", 1, 0, "ARR001", "first"),
    Diagnostic("a.py", 9, 4, "RNG001", "second"),
    Diagnostic("b.py", 2, 0, "ARR001", "third"),
]


class TestHumanReporter:
    def test_clean_message(self):
        assert format_human([]) == "repro-lint: no issues found"

    def test_lines_and_summary(self):
        out = format_human(DIAGS)
        lines = out.splitlines()
        assert lines[0] == "a.py:1:0: ARR001 first"
        assert lines[-1] == "repro-lint: 3 issues (ARR001: 2, RNG001: 1)"

    def test_singular_issue(self):
        out = format_human(DIAGS[:1])
        assert "1 issue (ARR001: 1)" in out


class TestJsonReporter:
    def test_schema_keys(self):
        payload = as_json_payload(DIAGS)
        assert set(payload) == {"version", "count", "summary", "diagnostics"}
        assert payload["version"] == JSON_SCHEMA_VERSION
        assert payload["count"] == 3
        assert payload["summary"] == {"ARR001": 2, "RNG001": 1}

    def test_diagnostic_entries(self):
        payload = as_json_payload(DIAGS)
        entry = payload["diagnostics"][0]
        assert set(entry) == {"path", "line", "col", "code", "message"}
        assert entry == {
            "path": "a.py",
            "line": 1,
            "col": 0,
            "code": "ARR001",
            "message": "first",
        }

    def test_format_json_parses_back(self):
        assert json.loads(format_json(DIAGS)) == as_json_payload(DIAGS)

    def test_empty_payload(self):
        payload = as_json_payload([])
        assert payload["count"] == 0
        assert payload["summary"] == {}
        assert payload["diagnostics"] == []
