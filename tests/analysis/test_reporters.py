"""Reporter output contracts (human text, JSON schema v1, SARIF)."""

import json

from repro.analysis.engine import Diagnostic
from repro.analysis.reporters import (
    JSON_SCHEMA_VERSION,
    SARIF_VERSION,
    as_json_payload,
    as_sarif_payload,
    format_human,
    format_json,
    format_sarif,
    format_statistics,
)

DIAGS = [
    Diagnostic("a.py", 1, 0, "ARR001", "first"),
    Diagnostic("a.py", 9, 4, "RNG001", "second"),
    Diagnostic("b.py", 2, 0, "ARR001", "third"),
]


class TestHumanReporter:
    def test_clean_message(self):
        assert format_human([]) == "repro-lint: no issues found"

    def test_lines_and_summary(self):
        out = format_human(DIAGS)
        lines = out.splitlines()
        assert lines[0] == "a.py:1:0: ARR001 first"
        assert lines[-1] == "repro-lint: 3 issues (ARR001: 2, RNG001: 1)"

    def test_singular_issue(self):
        out = format_human(DIAGS[:1])
        assert "1 issue (ARR001: 1)" in out


class TestJsonReporter:
    def test_schema_keys(self):
        payload = as_json_payload(DIAGS)
        assert set(payload) == {"version", "count", "summary", "diagnostics"}
        assert payload["version"] == JSON_SCHEMA_VERSION
        assert payload["count"] == 3
        assert payload["summary"] == {"ARR001": 2, "RNG001": 1}

    def test_diagnostic_entries(self):
        payload = as_json_payload(DIAGS)
        entry = payload["diagnostics"][0]
        assert set(entry) == {"path", "line", "col", "code", "message"}
        assert entry == {
            "path": "a.py",
            "line": 1,
            "col": 0,
            "code": "ARR001",
            "message": "first",
        }

    def test_format_json_parses_back(self):
        assert json.loads(format_json(DIAGS)) == as_json_payload(DIAGS)

    def test_empty_payload(self):
        payload = as_json_payload([])
        assert payload["count"] == 0
        assert payload["summary"] == {}
        assert payload["diagnostics"] == []


class TestStatistics:
    def test_per_code_counts_and_total(self):
        lines = format_statistics(DIAGS).splitlines()
        assert lines[0].split()[:2] == ["2", "ARR001"]
        assert lines[1].split()[:2] == ["1", "RNG001"]
        assert lines[-1].split() == ["3", "total"]

    def test_known_codes_carry_descriptions(self):
        out = format_statistics(DIAGS)
        assert "explicit dtype" in out  # ARR001's description


class TestSarifReporter:
    def test_log_shape(self):
        log = as_sarif_payload(DIAGS)
        assert log["version"] == SARIF_VERSION
        assert "sarif-2.1.0" in log["$schema"]
        (run,) = log["runs"]
        assert run["tool"]["driver"]["name"] == "repro-lint"
        assert len(run["results"]) == 3

    def test_result_locations_are_one_based(self):
        log = as_sarif_payload(
            [Diagnostic("pkg/mod.py", 7, 3, "ARR001", "msg")]
        )
        (result,) = log["runs"][0]["results"]
        assert result["ruleId"] == "ARR001"
        assert result["level"] == "error"
        region = result["locations"][0]["physicalLocation"]["region"]
        assert region == {"startLine": 7, "startColumn": 3}
        uri = result["locations"][0]["physicalLocation"][
            "artifactLocation"
        ]["uri"]
        assert uri == "pkg/mod.py"

    def test_rules_metadata_covers_present_codes(self):
        log = as_sarif_payload(DIAGS)
        rules = log["runs"][0]["tool"]["driver"]["rules"]
        assert [r["id"] for r in rules] == ["ARR001", "RNG001"]
        assert all("shortDescription" in r for r in rules)

    def test_e999_gets_fallback_metadata(self):
        log = as_sarif_payload(
            [Diagnostic("x.py", 1, 1, "E999", "syntax error: bad")]
        )
        (rule,) = log["runs"][0]["tool"]["driver"]["rules"]
        assert rule["id"] == "E999"
        assert rule["name"] == "syntax-error"

    def test_format_sarif_parses_back(self):
        assert json.loads(format_sarif(DIAGS)) == as_sarif_payload(DIAGS)

    def test_empty_run_is_valid(self):
        log = as_sarif_payload([])
        assert log["runs"][0]["results"] == []
        assert log["runs"][0]["tool"]["driver"]["rules"] == []
