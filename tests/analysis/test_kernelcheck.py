"""The kernel-purity certifier: blocker kinds, call-graph closure,
the audit registry schema, and the real tree's certified kernels.

Property tests round-trip randomly built audits through the schema
validator — any document the certifier emits must validate, and
single-field corruptions must not.
"""

import json
import textwrap
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.kernelcheck import (
    AUDIT_SCHEMA_VERSION,
    AuditSchemaError,
    Blocker,
    KernelAudit,
    KernelEntry,
    audit_paths,
    audit_source,
    validate_kernel_audit,
)

FIXDIR = Path(__file__).parent / "perf_fixtures"
REPO = Path(__file__).resolve().parents[2]

HEADER = """
    import numpy as np
    from repro.kernels import kernel
"""


def audit(source):
    return audit_source(
        textwrap.dedent(HEADER) + textwrap.dedent(source),
        module="repro.core.m",
        path="m.py",
    )


def blockers(source):
    out = audit(source)
    assert len(out.kernels) == 1
    return sorted({b.kind for b in out.kernels[0].blockers})


class TestBlockerKinds:
    def test_certified_pure_kernel(self):
        out = audit("""
            @kernel
            def f(x: np.ndarray) -> np.ndarray:
                return np.zeros(len(x), dtype=np.float64) + x
        """)
        assert out.n_certified == 1
        assert out.kernels[0].blockers == []

    def test_object_container(self):
        assert blockers("""
            @kernel
            def f(x):
                return [x, x]
        """) == ["object-container"]

    def test_container_constructor_calls(self):
        assert blockers("""
            @kernel
            def f(x):
                return list(x)
        """) == ["object-container"]

    def test_comprehension(self):
        assert blockers("""
            @kernel
            def f(x):
                return np.asarray(
                    [v * 2 for v in x], dtype=np.float64
                )
        """) == ["object-container"]

    def test_implicit_dtype(self):
        assert blockers("""
            @kernel
            def f(n):
                return np.empty(n)
        """) == ["implicit-dtype"]

    def test_positional_dtype_accepted(self):
        out = audit("""
            @kernel
            def f(n):
                return np.zeros(n, np.float64)
        """)
        assert out.n_certified == 1

    def test_io_call(self):
        assert blockers("""
            @kernel
            def f(x):
                print(x)
                return x
        """) == ["io-call"]

    def test_tracer_call(self):
        assert blockers("""
            @kernel
            def f(x, tracer):
                tracer.count("n", 1)
                return x
        """) == ["tracer-call"]

    def test_context_manager(self):
        assert blockers("""
            @kernel
            def f(x, lock):
                with lock:
                    return x
        """) == ["context-manager"]

    def test_generator(self):
        assert blockers("""
            @kernel
            def f(x):
                yield x
        """) == ["generator"]

    def test_nested_def(self):
        assert blockers("""
            @kernel
            def f(x):
                g = lambda v: v
                return g(x)
        """) == ["nested-def"]

    def test_global_state(self):
        assert blockers("""
            TABLE = np.zeros(4, dtype=np.float64)

            @kernel
            def f(x):
                return x + TABLE
        """) == ["global-state"]

    def test_scalar_constant_allowed(self):
        out = audit("""
            EPS = 1e-9

            @kernel
            def f(x):
                return x + EPS
        """)
        assert out.n_certified == 1


class TestCallGraphClosure:
    def test_impure_helper_blocks(self):
        out = audit("""
            def _helper(x):
                return np.asarray(x)

            @kernel
            def f(x):
                return _helper(x)
        """)
        assert out.n_certified == 0
        (entry,) = out.kernels
        assert entry.blockers[0].kind == "implicit-dtype"
        assert "reached via helper _helper()" in entry.blockers[0].message

    def test_pure_helper_certifies(self):
        out = audit("""
            def _helper(x):
                return np.asarray(x, dtype=np.float64)

            @kernel
            def f(x):
                return _helper(x) * 2
        """)
        assert out.n_certified == 1


class TestDecoratorDiscovery:
    def test_aliased_import(self):
        out = audit_source(textwrap.dedent("""
            import repro.kernels as rk

            @rk.kernel
            def f(x):
                return x
        """), module="repro.core.m", path="m.py")
        assert [k.name for k in out.kernels] == ["f"]

    def test_unrelated_decorator_ignored(self):
        out = audit_source(textwrap.dedent("""
            def kernel(fn):
                return fn

            @kernel
            def f(x):
                return x
        """), module="repro.core.m", path="m.py")
        assert out.kernels == []


class TestFixtureAudit:
    def test_fixture_kernels(self):
        out = audit_paths([FIXDIR])
        by_name = {k.name: k for k in out.kernels}
        assert set(by_name) == {
            "blocked_kernel",
            "impure_by_helper",
            "global_reader",
            "prefix_normalise",
        }
        assert by_name["prefix_normalise"].certified
        assert not by_name["blocked_kernel"].certified
        kinds = {b.kind for b in by_name["blocked_kernel"].blockers}
        assert kinds == {
            "object-container",
            "implicit-dtype",
            "io-call",
            "context-manager",
            "nested-def",
        }

    def test_emitted_registry_validates(self):
        doc = json.loads(audit_paths([FIXDIR]).to_json())
        assert doc["schema"] == AUDIT_SCHEMA_VERSION
        assert validate_kernel_audit(doc) == doc


class TestRealTree:
    """Acceptance: the library's declared kernels all certify."""

    def test_declared_kernels_certify(self):
        out = audit_paths([REPO / "src" / "repro"])
        assert out.n_certified == len(out.kernels) >= 3
        names = out.certified_names()
        assert "repro.geometry.boxsearch.box_candidate_pairs" in names
        assert "repro.core.contact_search.row_majority" in names
        assert "repro.geometry.bbox.bboxes_intersect_matrix" in names
        assert "repro.dtree.splitter.split_index_curve" in names

    def test_registry_matches_runtime_declarations(self):
        """Every syntactically declared kernel is importable and marked
        at runtime (the decorator and the certifier agree)."""
        from repro.kernels import declared_kernels

        static = set(audit_paths([REPO / "src" / "repro"]).certified_names())
        runtime = set(declared_kernels())
        assert static == runtime


_NAMES = st.text(
    alphabet="abcdefghij_", min_size=1, max_size=12
).filter(lambda s: s.isidentifier())

_BLOCKERS = st.builds(
    Blocker,
    path=st.just("src/repro/m.py"),
    line=st.integers(1, 999),
    col=st.integers(1, 80),
    kind=st.sampled_from(
        ["object-container", "implicit-dtype", "io-call", "global-state"]
    ),
    message=st.text(min_size=1, max_size=40).filter(str.strip),
)


@st.composite
def _entries(draw):
    blockers = draw(st.lists(_BLOCKERS, max_size=3))
    return KernelEntry(
        name=draw(_NAMES),
        qualname=draw(_NAMES),
        module="repro.core.m",
        path="src/repro/m.py",
        line=draw(st.integers(1, 999)),
        certified=not blockers,
        blockers=blockers,
    )


class TestRegistrySchemaProperties:
    @given(st.lists(_entries(), max_size=5))
    @settings(max_examples=50, deadline=None)
    def test_emitted_audits_always_validate(self, entries):
        audit = KernelAudit(kernels=entries)
        doc = json.loads(audit.to_json())
        assert validate_kernel_audit(doc) == doc
        assert doc["n_kernels"] == len(entries)
        assert doc["n_certified"] == sum(
            1 for e in entries if e.certified
        )

    @given(st.lists(_entries(), min_size=1, max_size=4))
    @settings(max_examples=50, deadline=None)
    def test_corrupted_counts_rejected(self, entries):
        doc = KernelAudit(kernels=entries).to_dict()
        doc["n_kernels"] = doc["n_kernels"] + 1
        with pytest.raises(AuditSchemaError):
            validate_kernel_audit(doc)

    @given(st.lists(_entries(), min_size=1, max_size=4))
    @settings(max_examples=50, deadline=None)
    def test_certified_with_blockers_rejected(self, entries):
        doc = KernelAudit(kernels=entries).to_dict()
        entry = doc["kernels"][0]
        if entry["blockers"]:
            entry["certified"] = True
        else:
            entry["certified"] = False
        with pytest.raises(AuditSchemaError):
            validate_kernel_audit(doc)

    def test_diagnostics_only_from_blocked_kernels(self):
        ok = KernelEntry(
            name="a", qualname="a", module="m", path="p.py", line=1
        )
        bad = KernelEntry(
            name="b", qualname="b", module="m", path="p.py", line=9,
            certified=False,
            blockers=[Blocker("p.py", 10, 1, "io-call", "print")],
        )
        diags = KernelAudit(kernels=[ok, bad]).diagnostics()
        assert [d.code for d in diags] == ["KERN001"]
        assert "m.b" in diags[0].message
