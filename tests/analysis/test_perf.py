"""The PERF rule family: per-rule cases, profile ranking, and golden
output over the seeded fixture package.

``perf_fixtures/`` mimics a ``repro/`` package root (the PERF rules
are scoped to the numeric modules); the JSON and SARIF renderings of
the full ``--perf`` run over it — PERF findings plus the certifier's
KERN001 diagnostics — are pinned as golden files.
"""

import dataclasses
import json
import textwrap
from pathlib import Path

import pytest

from repro.analysis.kernelcheck import audit_paths
from repro.analysis.perf import (
    SPAN_MODULE_HINTS,
    HotSpot,
    PerfAnalyzer,
    hotness_of,
    load_self_times,
    module_hotness,
    perf_rules,
    rank_diagnostics,
)
from repro.analysis.reporters import as_json_payload, as_sarif_payload

FIXDIR = Path(__file__).parent / "perf_fixtures"
GOLDEN = Path(__file__).parent / "golden"


def analyze(source, module="repro.core.m", path="m.py", **kwargs):
    analyzer = PerfAnalyzer(**kwargs)
    return analyzer.analyze_source(
        textwrap.dedent(source), module=module, path=path
    )


def codes(source, **kwargs):
    return [d.code for d in analyze(source, **kwargs)]


class TestPERF001:
    def test_iterating_annotated_param(self):
        src = """
            import numpy as np
            def f(points: np.ndarray):
                for p in points:
                    yield p
        """
        assert codes(src) == ["PERF001"]

    def test_iterating_np_call_result(self):
        src = """
            import numpy as np
            def f(n):
                for v in np.arange(n, dtype=np.int64):
                    yield v
        """
        assert codes(src) == ["PERF001"]

    def test_range_len_spelling(self):
        src = """
            import numpy as np
            def f(points: np.ndarray):
                for i in range(len(points)):
                    yield points[i]
        """
        assert codes(src) == ["PERF001"]

    def test_plain_iterable_not_flagged(self):
        src = """
            def f(items):
                for x in items:
                    yield x
        """
        assert codes(src) == []

    def test_scoped_to_numeric_modules(self):
        src = """
            import numpy as np
            def f(points: np.ndarray):
                for p in points:
                    yield p
        """
        assert codes(src, module="repro.analysis.m") == []
        assert codes(src, module="tests.test_m") == []


class TestPERF002:
    def test_concatenate_in_loop(self):
        src = """
            import numpy as np
            def f(chunks):
                acc = np.empty(0, dtype=np.int64)
                for c in chunks:
                    acc = np.concatenate((acc, c))
                return acc
        """
        assert codes(src) == ["PERF002"]

    def test_list_grow_then_array(self):
        src = """
            import numpy as np
            def f(n):
                rows = []
                for i in range(n):
                    rows.append(i)
                return np.array(rows, dtype=np.int64)
        """
        assert codes(src) == ["PERF002"]

    def test_chunk_collect_concatenate_once_ok(self):
        src = """
            import numpy as np
            def f(chunks):
                out = []
                for c in chunks:
                    out.append(c * 2)
                return np.concatenate(out)
        """
        assert codes(src) == []


class TestPERF003:
    def test_three_lookups_fire(self):
        src = """
            def f(sess, work):
                for item in work:
                    sess.comm.send(item)
                    sess.comm.send(item)
                    sess.comm.send(item)
        """
        assert codes(src) == ["PERF003"]

    def test_two_lookups_are_idiom(self):
        src = """
            def f(sess, work):
                for item in work:
                    sess.comm.send(item)
                    sess.comm.send(item)
        """
        assert codes(src) == []

    def test_rebound_receiver_not_flagged(self):
        src = """
            def f(pool, work):
                for item in work:
                    w = pool.take()
                    w.push(item)
                    w.push(item)
                    w.push(item)
        """
        assert codes(src) == []

    def test_counted_once_in_outermost_loop(self):
        src = """
            def f(sess, grid):
                for row in grid:
                    for item in row:
                        sess.comm.send(item)
                        sess.comm.send(item)
                        sess.comm.send(item)
        """
        assert codes(src) == ["PERF003"]


class TestPERF004:
    def test_true_division_of_int_array(self):
        src = """
            import numpy as np
            def f(n):
                return np.arange(n, dtype=np.int64) / 2
        """
        assert codes(src) == ["PERF004"]

    def test_int_array_plus_float_scalar(self):
        src = """
            import numpy as np
            def f(n):
                return np.zeros(n, dtype=np.int64) + 0.5
        """
        assert codes(src) == ["PERF004"]

    def test_integer_arithmetic_ok(self):
        src = """
            import numpy as np
            def f(n):
                return np.ones(n, dtype=np.int64) * 2 // 2
        """
        assert codes(src) == []

    def test_float_arrays_ok(self):
        src = """
            import numpy as np
            def f(n):
                return np.zeros(n, dtype=np.float64) + 0.5
        """
        assert codes(src) == []


class TestPERF005:
    def test_math_dotted_in_loop(self):
        src = """
            import math
            def f(values):
                out = 0.0
                for v in values:
                    out += math.sqrt(v)
                return out
        """
        assert codes(src) == ["PERF005"]

    def test_from_import_spelling(self):
        src = """
            from math import hypot
            def f(xs, ys):
                total = 0.0
                for x, y in zip(xs, ys):
                    total += hypot(x, y)
                return total
        """
        assert codes(src) == ["PERF005"]

    def test_math_outside_loop_ok(self):
        src = """
            import math
            def f(v):
                return math.sqrt(v)
        """
        assert codes(src) == []


class TestSelectIgnore:
    SRC = """
        import numpy as np
        def f(points: np.ndarray, chunks):
            for p in points:
                np.concatenate((p, p))
    """

    def test_select(self):
        assert codes(self.SRC, select=["PERF002"]) == ["PERF002"]

    def test_ignore(self):
        assert codes(self.SRC, ignore=["PERF002"]) == ["PERF001"]

    def test_rules_registered(self):
        assert [r.code for r in perf_rules()] == [
            "PERF001", "PERF002", "PERF003", "PERF004", "PERF005",
        ]
        assert all(r.opt_in for r in perf_rules())


class TestProfileRanking:
    TIMES = {
        "run": 0.0,
        "run/global-search": 5.0,
        "run/global-search/search": 120.0,
        "run/fit/partition/refine": 900.0,
        "run/unknown-span": 50.0,
    }

    def test_module_hotness_uses_max_span(self):
        hot = module_hotness(self.TIMES)
        cs = hot["repro.core.contact_search"]
        assert cs.span_path == "run/global-search/search"
        assert cs.self_ms == 120.0
        assert hot["repro.partition"].self_ms == 900.0

    def test_hotness_of_covers_submodules(self):
        hot = module_hotness(self.TIMES)
        spot = hotness_of("repro.partition.refine_fm", hot)
        assert spot is not None and spot.self_ms == 900.0
        assert hotness_of("repro.obs.tracer", hot) is None

    def test_rank_orders_hot_first_and_annotates(self):
        from repro.analysis.engine import Diagnostic

        cold = Diagnostic(
            path="src/repro/mesh/io.py", line=1, col=1,
            code="PERF001", message="m",
        )
        hot = Diagnostic(
            path="src/repro/partition/refine_fm.py", line=9, col=1,
            code="PERF001", message="m",
        )
        ranked = rank_diagnostics([cold, hot], self.TIMES)
        assert ranked[0].path.endswith("refine_fm.py")
        assert "[hot: run/fit/partition/refine self=900.0ms]" in (
            ranked[0].message
        )
        assert ranked[1].message == "m"  # cold findings unannotated

    def test_span_hints_name_real_modules(self):
        import importlib

        for spans, prefixes in SPAN_MODULE_HINTS.items():
            for prefix in prefixes:
                head = prefix.rsplit(".", 1)[0]
                assert importlib.import_module(head)

    def test_load_self_times_round_trip(self, tmp_path):
        from repro.obs.report import RunReport
        from repro.obs.tracer import Tracer

        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        report = RunReport.from_run(tracer)
        path = tmp_path / "trace.json"
        report.save(path)
        times = load_self_times(path)
        assert set(times) == {"run", "run/outer", "run/outer/inner"}
        assert times["run/outer"] == pytest.approx(
            report.span_self("outer") * 1e3
        )

    def test_load_self_times_rejects_garbage(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text('{"schema": "nope"}')
        with pytest.raises(ValueError):
            load_self_times(bad)


class TestGoldenFixtures:
    def _normalized(self):
        diags = sorted(
            set(PerfAnalyzer().analyze_paths([FIXDIR]))
            | set(audit_paths([FIXDIR]).diagnostics())
        )
        return sorted(
            dataclasses.replace(d, path=Path(d.path).name) for d in diags
        )

    def test_exact_code_counts(self):
        summary = as_json_payload(self._normalized())["summary"]
        assert summary == {
            "KERN001": 8,
            "PERF001": 4,
            "PERF002": 2,
            "PERF003": 1,
            "PERF004": 2,
            "PERF005": 2,
        }

    def test_clean_modules_stay_clean(self):
        flagged = {d.path for d in self._normalized()}
        assert "kernel_ok.py" not in flagged

    def test_matches_golden_json(self):
        golden = json.loads((GOLDEN / "perf_fixtures.json").read_text())
        assert as_json_payload(self._normalized()) == golden

    def test_matches_golden_sarif(self):
        golden = json.loads((GOLDEN / "perf_fixtures.sarif").read_text())
        assert as_sarif_payload(self._normalized()) == golden

    def test_real_tree_is_clean_modulo_baseline(self):
        from repro.analysis.baseline import apply_baseline, load_baseline

        root = Path(__file__).resolve().parents[2]
        diags = sorted(
            set(PerfAnalyzer().analyze_paths([root / "src" / "repro"]))
            | set(audit_paths([root / "src" / "repro"]).diagnostics())
        )
        # the committed baseline records repo-relative paths (CI lints
        # from the repo root); normalise before subtracting
        diags = [
            dataclasses.replace(
                d, path=Path(d.path).relative_to(root).as_posix()
            )
            for d in diags
        ]
        baseline = load_baseline(root / "lint-baseline.json")
        new, _suppressed = apply_baseline(diags, baseline)
        assert new == []
