"""ARR001/LOOP001 violation fixture (never imported)."""

import numpy as np


def alloc_without_dtype(n):
    out = np.zeros(n)  # ARR001: no dtype in a numeric module
    out += np.arange(n)  # repro-lint: disable=ARR001
    return out


def python_loop_over_csr(n, xadj, adjncy):
    total = 0
    for u in range(n):
        for j in range(xadj[u], xadj[u + 1]):  # LOOP001
            total += adjncy[j]
    return total
