"""VAL001 violation fixture: the entry point skips validation."""


def partition_kway(graph, k, options=None):  # VAL001
    return [0] * k
