"""Clean fixture: every rule must pass on this file."""

import numpy as np

from repro.utils.rng import as_rng


def alloc(n):
    return np.zeros(n, dtype=np.int64) + np.arange(n, dtype=np.int64)


def shuffled(n, seed=None):
    return as_rng(seed).permutation(n)
