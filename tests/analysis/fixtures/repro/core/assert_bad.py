"""ASSERT001 violation fixture: assert as runtime validation."""


def checked_ratio(num, den):
    assert den != 0, "den must be nonzero"  # ASSERT001
    return num / den
