"""ARR002 violation fixture: asarray fed straight into CSRGraph."""

import numpy as np

from repro.graph.csr import CSRGraph


def build(xadj, adjncy, adjwgt, vwgts):
    return CSRGraph(
        np.asarray(xadj),  # ARR002
        np.ascontiguousarray(adjncy),
        np.ascontiguousarray(adjwgt),
        vwgts=np.asarray(vwgts),  # ARR002 (keyword argument)
    )
