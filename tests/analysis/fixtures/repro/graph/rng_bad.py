"""RNG001 violation fixture: randomness outside repro.utils.rng."""

import numpy as np
from numpy.random import default_rng  # RNG001 (import form)


def shuffled(n):
    rng = np.random.default_rng(0)  # RNG001 (call form)
    return rng.permutation(n)
