"""Unit tests for the coroutine-safety rules (ASYNC001-003, TIME001)."""

import ast
import textwrap

from repro.analysis.asynccheck import (
    BLOCKING_CALLS,
    expanded_call_name,
    scope_walk,
)
from repro.analysis.dataflow import summarize_module
from repro.analysis.servicecheck import ServiceAnalyzer


def _analyze(source, select=None, module="repro.service.app"):
    return ServiceAnalyzer(select=select).analyze_source(
        textwrap.dedent(source), module=module, path=f"{module}.py"
    )


def _codes(diags):
    return [d.code for d in diags]


class TestHelpers:
    def test_expanded_call_name_follows_import_aliases(self):
        summary = summarize_module(
            "m", "m.py", ast.parse("import numpy as np\nfrom time import sleep\n")
        )
        assert expanded_call_name(summary, "np.load") == "numpy.load"
        assert expanded_call_name(summary, "sleep") == "time.sleep"
        assert expanded_call_name(summary, "os.remove") == "os.remove"

    def test_scope_walk_yields_but_does_not_enter_nested_defs(self):
        tree = ast.parse(
            "def outer():\n"
            "    x = 1\n"
            "    def inner():\n"
            "        y = 2\n"
        )
        outer = tree.body[0]
        names = [
            n.id for n in scope_walk(outer) if isinstance(n, ast.Name)
        ]
        assert names == ["x"]
        assert any(
            isinstance(n, ast.FunctionDef) and n.name == "inner"
            for n in scope_walk(outer)
        )

    def test_blocking_catalogue_covers_the_issue_surface(self):
        for name in ("time.sleep", "numpy.load", "open",
                     "subprocess.run", "socket.create_connection"):
            assert name in BLOCKING_CALLS


class TestAsync001:
    def test_direct_blocking_call_in_coroutine(self):
        diags = _analyze(
            """
            import time

            async def handler():
                time.sleep(1)
            """
        )
        assert _codes(diags) == ["ASYNC001"]
        assert "time.sleep" in diags[0].message

    def test_transitive_blocking_call_names_the_coroutine(self):
        diags = _analyze(
            """
            async def handler():
                helper()

            def helper():
                open("f").read()
            """
        )
        assert _codes(diags) == ["ASYNC001"]
        assert "via coroutine 'handler'" in diags[0].message

    def test_executor_routed_helper_is_clean(self):
        diags = _analyze(
            """
            import asyncio

            async def handler():
                loop = asyncio.get_event_loop()
                await loop.run_in_executor(None, helper)

            def helper():
                open("f").read()
            """
        )
        assert diags == []

    def test_thread_lock_acquisition_in_coroutine(self):
        diags = _analyze(
            """
            import threading

            class S:
                def __init__(self):
                    self._lock = threading.Lock()

                async def handler(self):
                    with self._lock:
                        pass
            """
        )
        assert _codes(diags) == ["ASYNC001"]
        assert "thread-lock" in diags[0].message

    def test_blocking_queue_get_in_coroutine(self):
        diags = _analyze(
            """
            import queue

            async def handler():
                q = queue.Queue()
                q.get()
            """
        )
        assert _codes(diags) == ["ASYNC001"]

    def test_sync_only_code_never_fires(self):
        diags = _analyze(
            """
            import time

            def handler():
                time.sleep(1)
                open("f").read()
            """
        )
        assert diags == []

    def test_asyncio_sleep_is_not_blocking(self):
        diags = _analyze(
            """
            import asyncio

            async def handler():
                await asyncio.sleep(1)
            """
        )
        assert diags == []

    def test_suppression_comment_is_honoured(self):
        diags = _analyze(
            """
            import time

            async def handler():
                time.sleep(1)  # repro-lint: disable=ASYNC001 warm-up only
            """
        )
        assert diags == []


class TestAsync002:
    SOURCE = """
        import asyncio

        async def job():
            await asyncio.sleep(0)

        async def caller():
            job()
            await job()
            asyncio.create_task(job())
    """

    def test_discarded_coroutine_call_is_flagged_once(self):
        diags = _analyze(self.SOURCE)
        assert _codes(diags) == ["ASYNC002"]
        assert "'job'" in diags[0].message

    def test_discarded_bound_coroutine(self):
        diags = _analyze(
            """
            import asyncio

            class W:
                async def pulse(self):
                    await asyncio.sleep(0)

                async def run(self):
                    self.pulse()
            """
        )
        assert _codes(diags) == ["ASYNC002"]

    def test_plain_function_call_statement_is_clean(self):
        diags = _analyze(
            """
            def helper():
                return 1

            async def caller():
                helper()
            """
        )
        assert diags == []


class TestAsync003:
    def test_cross_context_mutation_without_lock(self):
        diags = _analyze(
            """
            import asyncio

            class S:
                def __init__(self):
                    self.total = 0

                async def handler(self):
                    self.total += 1
                    await asyncio.get_event_loop().run_in_executor(
                        None, self.work
                    )

                def work(self):
                    self.total += 1
            """
        )
        assert _codes(diags) == ["ASYNC003", "ASYNC003"]
        assert "both coroutine and executor context" in diags[0].message

    def test_locked_sites_are_clean(self):
        diags = _analyze(
            """
            import asyncio
            import threading

            class S:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._alock = asyncio.Lock()
                    self.total = 0

                async def handler(self):
                    async with self._alock:
                        self.total += 1
                    await asyncio.get_event_loop().run_in_executor(
                        None, self.work
                    )

                def work(self):
                    with self._lock:
                        self.total += 1
            """
        )
        assert diags == []

    def test_loop_only_mutation_is_clean(self):
        diags = _analyze(
            """
            class S:
                def __init__(self):
                    self.total = 0

                async def handler(self):
                    self.total += 1
            """
        )
        assert diags == []


class TestTime001:
    def test_wall_clock_assigned_to_deadline(self):
        diags = _analyze(
            """
            import time

            def plan(budget):
                deadline = time.time() + budget
                return deadline
            """
        )
        assert _codes(diags) == ["TIME001"]
        assert "monotonic" in diags[0].message

    def test_wall_clock_compared_with_deadline_attr(self):
        diags = _analyze(
            """
            import time

            def due(job):
                return time.time() >= job.deadline_s
            """
        )
        assert _codes(diags) == ["TIME001"]

    def test_mixed_clock_domains(self):
        diags = _analyze(
            """
            import time

            def skew():
                return time.monotonic() - time.time()
            """
        )
        assert _codes(diags) == ["TIME001"]

    def test_record_only_wall_clock_is_clean(self):
        diags = _analyze(
            """
            import time

            def stamp(started):
                return {"now": time.time(), "elapsed": time.time() - started}
            """
        )
        assert diags == []


class TestAnalyzerSurface:
    def test_select_narrows_to_one_code(self):
        source = """
            import time

            async def handler():
                time.sleep(1)
                deadline = time.time() + 5
                return deadline
        """
        assert _codes(_analyze(source)) == ["ASYNC001", "TIME001"]
        assert _codes(_analyze(source, select=["TIME001"])) == ["TIME001"]

    def test_service_rules_are_opt_in(self):
        from repro.analysis.engine import LintEngine

        diags = LintEngine().lint_source(
            "import time\n\nasync def h():\n    time.sleep(1)\n",
            module="repro.service.app",
            path="app.py",
        )
        assert "ASYNC001" not in {d.code for d in diags}
