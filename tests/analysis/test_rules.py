"""Per-rule pass/fail cases for the repro-lint rule catalogue.

Every rule gets at least one source snippet that must trigger it and
one that must stay clean (including module-scoping negatives).
"""

import textwrap

import pytest

from repro.analysis.engine import LintEngine


def lint(source, module, codes=None):
    """Lint dedented ``source`` as ``module``; return diagnostic codes."""
    engine = LintEngine(select=list(codes) if codes else None)
    return [d.code for d in engine.lint_source(textwrap.dedent(source), module=module)]


class TestARR001:
    def test_flags_allocator_without_dtype(self):
        src = """
            import numpy as np
            x = np.zeros(10)
            y = np.arange(5)
        """
        assert lint(src, "repro.partition.foo", ["ARR001"]) == [
            "ARR001",
            "ARR001",
        ]

    def test_passes_with_dtype_keyword(self):
        src = """
            import numpy as np
            x = np.zeros(10, dtype=np.int64)
            y = np.full(3, 0.5, dtype=np.float64)
        """
        assert lint(src, "repro.partition.foo", ["ARR001"]) == []

    def test_passes_with_positional_dtype(self):
        src = """
            import numpy as np
            x = np.zeros(10, np.int64)
            y = np.full(3, 0.5, np.float64)
        """
        assert lint(src, "repro.graph.foo", ["ARR001"]) == []

    def test_scoped_to_numeric_modules(self):
        src = "import numpy as np\nx = np.zeros(4)\n"
        assert lint(src, "repro.mesh.foo", ["ARR001"]) == []
        assert lint(src, "repro.graph.foo", ["ARR001"]) == ["ARR001"]

    def test_ignores_like_constructors(self):
        # *_like and asarray inherit dtype from their argument
        src = """
            import numpy as np
            def f(a):
                return np.zeros_like(a) + np.asarray(a)
        """
        assert lint(src, "repro.partition.foo", ["ARR001"]) == []


class TestARR002:
    def test_flags_asarray_into_csrgraph(self):
        src = """
            import numpy as np
            g = CSRGraph(np.asarray(x), adjncy, adjwgt, vwgts)
        """
        assert lint(src, "repro.anywhere", ["ARR002"]) == ["ARR002"]

    def test_flags_keyword_argument(self):
        src = """
            import numpy as np
            p = partition_kway(g, 4, options=np.asarray(o))
        """
        assert lint(src, "repro.anywhere", ["ARR002"]) == ["ARR002"]

    def test_passes_with_ascontiguousarray(self):
        src = """
            import numpy as np
            g = CSRGraph(
                np.ascontiguousarray(x), np.ascontiguousarray(a),
                np.ascontiguousarray(w), vw,
            )
        """
        assert lint(src, "repro.anywhere", ["ARR002"]) == []

    def test_ignores_other_sinks(self):
        src = "import numpy as np\ny = helper(np.asarray(x))\n"
        assert lint(src, "repro.anywhere", ["ARR002"]) == []


class TestRNG001:
    def test_flags_direct_default_rng(self):
        src = "import numpy as np\nrng = np.random.default_rng(0)\n"
        assert lint(src, "repro.partition.foo", ["RNG001"]) == ["RNG001"]

    def test_flags_global_seed_and_randomstate(self):
        src = """
            import numpy as np
            np.random.seed(0)
            rs = np.random.RandomState(1)
        """
        assert lint(src, "repro.core.foo", ["RNG001"]) == [
            "RNG001",
            "RNG001",
        ]

    def test_flags_import_form(self):
        src = "from numpy.random import default_rng\n"
        assert lint(src, "repro.core.foo", ["RNG001"]) == ["RNG001"]

    def test_exempts_the_rng_module(self):
        src = "import numpy as np\nrng = np.random.default_rng(0)\n"
        assert lint(src, "repro.utils.rng", ["RNG001"]) == []

    def test_passes_through_as_rng(self):
        src = """
            from repro.utils.rng import as_rng
            rng = as_rng(0)
        """
        assert lint(src, "repro.partition.foo", ["RNG001"]) == []


class TestASSERT001:
    def test_flags_library_assert(self):
        src = "def f(x):\n    assert x > 0\n    return x\n"
        assert lint(src, "repro.core.foo", ["ASSERT001"]) == ["ASSERT001"]

    def test_exempts_test_modules(self):
        src = "def test_f():\n    assert 1 + 1 == 2\n"
        assert lint(src, "tests.core.test_foo", ["ASSERT001"]) == []
        assert lint(src, "repro.conftest", ["ASSERT001"]) == []

    def test_passes_on_raise(self):
        src = """
            def f(x):
                if x <= 0:
                    raise ValueError("x must be positive")
                return x
        """
        assert lint(src, "repro.core.foo", ["ASSERT001"]) == []


class TestVAL001:
    def test_flags_unvalidated_entry_point(self):
        src = "def partition_kway(graph, k, options=None):\n    return None\n"
        assert lint(src, "repro.partition.kway", ["VAL001"]) == ["VAL001"]

    def test_passes_when_validated(self):
        src = """
            from repro.utils.validation import check_csr_arrays
            def partition_kway(graph, k, options=None):
                check_csr_arrays(graph)
                return None
        """
        assert lint(src, "repro.partition.kway", ["VAL001"]) == []

    def test_only_designated_functions(self):
        src = "def _helper(graph):\n    return None\n"
        assert lint(src, "repro.partition.kway", ["VAL001"]) == []

    def test_only_designated_modules(self):
        src = "def partition_kway(graph, k):\n    return None\n"
        assert lint(src, "repro.partition.refine_kway", ["VAL001"]) == []

    def test_dtree_entry_points(self):
        src = "def induce_pure_tree(points, labels, k):\n    return None\n"
        assert lint(src, "repro.dtree.induction", ["VAL001"]) == ["VAL001"]


class TestLOOP001:
    def test_flags_loop_over_xadj(self):
        src = """
            def f(xadj, adjncy):
                for j in range(xadj[0], xadj[1]):
                    yield adjncy[j]
        """
        assert lint(src, "repro.graph.foo", ["LOOP001"]) == ["LOOP001"]

    def test_flags_attribute_access(self):
        src = """
            def f(g):
                for v in g.adjncy:
                    yield v
        """
        assert lint(src, "repro.partition.foo", ["LOOP001"]) == ["LOOP001"]

    def test_passes_vectorised(self):
        src = """
            import numpy as np
            def f(g):
                src = np.repeat(
                    np.arange(g.num_vertices, dtype=np.int64), g.degrees()
                )
                return src
        """
        assert lint(src, "repro.graph.foo", ["LOOP001"]) == []

    def test_scoped_to_hot_path_modules(self):
        src = """
            def f(xadj):
                for j in range(xadj[0], xadj[1]):
                    yield j
        """
        assert lint(src, "repro.mesh.foo", ["LOOP001"]) == []


class TestRuleMetadata:
    def test_every_rule_has_pass_and_fail_coverage(self):
        # guard: a new rule must extend this file's coverage (the SPMD
        # family is covered by test_spmd.py, the PERF family by
        # test_perf.py, KERN001 by test_kernelcheck.py, the service
        # family by test_asynccheck/test_statemachine/test_boundary)
        from repro.analysis.engine import all_rules

        covered = {"ARR001", "ARR002", "RNG001", "ASSERT001", "VAL001", "LOOP001"}
        spmd = {"SPMD001", "SPMD002", "SPMD003", "DET001", "FLOAT001"}
        perf = {"PERF001", "PERF002", "PERF003", "PERF004", "PERF005"}
        kern = {"KERN001"}
        service = {
            "ASYNC001", "ASYNC002", "ASYNC003", "TIME001",
            "SM001", "SM002", "TRUST001",
        }
        assert {r.code for r in all_rules()} == (
            covered | spmd | perf | kern | service
        )

    def test_opt_in_rules_skipped_by_default(self):
        # the PERF, KERN and service families are opt-in: a default
        # engine run must not include them, an explicit --select must
        from repro.analysis.engine import LintEngine, all_rules

        default_codes = {r.code for r in LintEngine().rules}
        opt_in = {r.code for r in all_rules() if r.opt_in}
        assert opt_in == {
            "PERF001", "PERF002", "PERF003", "PERF004", "PERF005",
            "KERN001",
            "ASYNC001", "ASYNC002", "ASYNC003", "TIME001",
            "SM001", "SM002", "TRUST001",
        }
        assert not (default_codes & opt_in)
        selected = LintEngine(select=["PERF001"]).rules
        assert {r.code for r in selected} == {"PERF001"}

    def test_rules_have_docs(self):
        from repro.analysis.engine import all_rules

        for rule in all_rules():
            assert rule.code and rule.name and rule.description
            assert rule.__doc__
