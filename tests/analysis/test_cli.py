"""repro-lint CLI behaviour, including the self-clean meta-test."""

import json
from pathlib import Path

import repro
from repro.analysis.cli import main as lint_main
from repro.cli import main as contact_main

FIXTURES = Path(__file__).parent / "fixtures"
SPMD_FIXTURES = Path(__file__).parent / "spmd_fixtures"
PERF_FIXTURES = Path(__file__).parent / "perf_fixtures"
SERVICE_FIXTURES = Path(__file__).parent / "service_fixtures"
LIBRARY = Path(repro.__file__).parent

SERVICE_CODES = (
    "ASYNC001", "ASYNC002", "ASYNC003", "TIME001",
    "SM001", "SM002", "TRUST001",
)


class TestExitCodes:
    def test_violations_exit_nonzero(self, capsys):
        assert lint_main([str(FIXTURES)]) == 1
        out = capsys.readouterr().out
        assert "ARR001" in out and "VAL001" in out

    def test_clean_file_exits_zero(self, capsys):
        clean = FIXTURES / "repro" / "clean_ok.py"
        assert lint_main([str(clean)]) == 0
        assert "no issues found" in capsys.readouterr().out

    def test_unknown_rule_exits_two(self, capsys):
        assert lint_main(["--select", "NOPE999", str(FIXTURES)]) == 2
        assert "NOPE999" in capsys.readouterr().err

    def test_missing_path_exits_two(self, capsys):
        assert lint_main([str(FIXTURES / "nope")]) == 2
        assert "no such file" in capsys.readouterr().err


class TestOptions:
    def test_select_narrows_output(self, capsys):
        assert lint_main(["--select", "RNG001", str(FIXTURES)]) == 1
        out = capsys.readouterr().out
        assert "RNG001" in out and "ARR001" not in out

    def test_ignore_drops_rule(self, capsys):
        lint_main(["--ignore", "RNG001", str(FIXTURES)])
        assert "RNG001" not in capsys.readouterr().out

    def test_json_format(self, capsys):
        assert lint_main(["--format", "json", str(FIXTURES)]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["version"] == 1
        assert payload["count"] == payload["summary"]["ARR001"] + sum(
            n for c, n in payload["summary"].items() if c != "ARR001"
        )
        assert {d["code"] for d in payload["diagnostics"]} == set(
            payload["summary"]
        )

    def test_list_rules(self, capsys):
        assert lint_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for code in ("ARR001", "ARR002", "RNG001", "ASSERT001", "VAL001", "LOOP001"):
            assert code in out

    def test_list_rules_includes_spmd_family(self, capsys):
        lint_main(["--list-rules"])
        out = capsys.readouterr().out
        for code in ("SPMD001", "SPMD002", "SPMD003", "DET001", "FLOAT001"):
            assert code in out

    def test_sarif_format(self, capsys):
        assert lint_main(["--format", "sarif", str(FIXTURES)]) == 1
        log = json.loads(capsys.readouterr().out)
        assert log["version"] == "2.1.0"
        assert log["runs"][0]["results"]

    def test_statistics_appended(self, capsys):
        assert lint_main(["--statistics", str(FIXTURES)]) == 1
        out = capsys.readouterr().out
        assert "total" in out.splitlines()[-1]

    def test_exclude_pattern(self, capsys):
        code = lint_main(
            [str(FIXTURES), "--exclude", "*/fixtures/*"]
        )
        assert code == 0
        assert "no issues found" in capsys.readouterr().out


class TestSpmdFlag:
    def test_spmd_flag_finds_seeded_violations(self, capsys):
        assert lint_main(["--spmd", str(SPMD_FIXTURES)]) == 1
        out = capsys.readouterr().out
        for code in ("SPMD001", "SPMD002", "SPMD003", "DET001", "FLOAT001"):
            assert code in out

    def test_without_flag_fixtures_are_clean(self, capsys):
        # the SPMD family is project-level; the per-file engine alone
        # must not fire on the fixture tree
        assert lint_main([str(SPMD_FIXTURES)]) == 0

    def test_spmd_select_narrows(self, capsys):
        assert (
            lint_main(["--spmd", "--select", "SPMD002", str(SPMD_FIXTURES)])
            == 1
        )
        out = capsys.readouterr().out
        assert "SPMD002" in out and "SPMD001" not in out

    def test_spmd_library_lints_clean(self, capsys):
        """`repro-lint --spmd src/repro` must exit 0 (acceptance)."""
        assert lint_main(["--spmd", str(LIBRARY)]) == 0
        assert "no issues found" in capsys.readouterr().out


class TestPerfFlag:
    def test_perf_flag_finds_seeded_violations(self, capsys):
        assert lint_main(["--perf", str(PERF_FIXTURES)]) == 1
        out = capsys.readouterr().out
        for code in ("PERF001", "PERF002", "PERF003", "PERF004",
                     "PERF005", "KERN001"):
            assert code in out

    def test_without_flag_fixtures_are_clean(self, capsys):
        # PERF rules are opt-in; the default engine must not fire
        assert lint_main([str(PERF_FIXTURES)]) == 0

    def test_list_rules_includes_perf_family(self, capsys):
        lint_main(["--list-rules"])
        out = capsys.readouterr().out
        for code in ("PERF001", "PERF002", "PERF003", "PERF004",
                     "PERF005", "KERN001"):
            assert code in out

    def test_kernel_audit_written_and_implies_perf(self, tmp_path, capsys):
        audit_path = tmp_path / "kernel-audit.json"
        code = lint_main(
            ["--kernel-audit", str(audit_path), str(PERF_FIXTURES)]
        )
        assert code == 1  # blocked fixture kernels gate the run
        doc = json.loads(audit_path.read_text())
        assert doc["schema"] == "repro.kernel-audit/1"
        assert doc["n_kernels"] == 4 and doc["n_certified"] == 1

    def test_perf_library_lints_clean_modulo_baseline(self, capsys):
        """Acceptance: `repro-lint --perf --baseline lint-baseline.json
        src/repro` exits 0 on the shipped tree (from the repo root, as
        CI runs it — the baseline stores repo-relative paths)."""
        import os

        root = Path(__file__).resolve().parents[2]
        cwd = os.getcwd()
        os.chdir(root)
        try:
            code = lint_main([
                "--perf", "--baseline", "lint-baseline.json", "src/repro",
            ])
        finally:
            os.chdir(cwd)
        captured = capsys.readouterr()
        assert code == 0
        assert "suppressed" in captured.err
        assert "no issues found" in captured.out


class TestServiceFlag:
    def test_service_flag_finds_seeded_violations(self, capsys):
        assert lint_main(["--service", str(SERVICE_FIXTURES)]) == 1
        out = capsys.readouterr().out
        for code in SERVICE_CODES:
            assert code in out

    def test_without_flag_fixtures_are_clean(self, capsys):
        # the service family is opt-in and project-level; the per-file
        # engine alone must not fire on the fixture tree
        assert lint_main([str(SERVICE_FIXTURES)]) == 0

    def test_service_select_narrows(self, capsys):
        assert (
            lint_main(
                ["--service", "--select", "TRUST001",
                 str(SERVICE_FIXTURES)]
            )
            == 1
        )
        out = capsys.readouterr().out
        assert "TRUST001" in out and "ASYNC001" not in out

    def test_service_unknown_code_exits_two(self, capsys):
        assert lint_main(
            ["--service", "--select", "NOPE999", str(SERVICE_FIXTURES)]
        ) == 2
        assert "NOPE999" in capsys.readouterr().err

    def test_service_respects_exclude(self, capsys):
        code = lint_main(
            ["--service", str(SERVICE_FIXTURES),
             "--exclude", "*/service_fixtures/*"]
        )
        assert code == 0
        assert "no issues found" in capsys.readouterr().out

    def test_list_rules_includes_service_family(self, capsys):
        lint_main(["--list-rules"])
        out = capsys.readouterr().out
        for code in SERVICE_CODES:
            assert code in out

    def test_service_sarif_has_rule_metadata(self, capsys):
        assert lint_main(
            ["--format", "sarif", "--service", str(SERVICE_FIXTURES)]
        ) == 1
        log = json.loads(capsys.readouterr().out)
        rules = {
            r["id"] for r in log["runs"][0]["tool"]["driver"]["rules"]
        }
        assert set(SERVICE_CODES) <= rules

    def test_service_library_lints_clean(self, capsys):
        """Acceptance: `repro-lint --service src/repro` must exit 0."""
        assert lint_main(["--service", str(LIBRARY)]) == 0
        assert "no issues found" in capsys.readouterr().out

    def test_write_baseline_drops_trust_and_sm_codes(self, tmp_path, capsys):
        base = tmp_path / "baseline.json"
        assert lint_main(
            ["--service", "--write-baseline", str(base),
             str(SERVICE_FIXTURES)]
        ) == 0
        capsys.readouterr()
        doc = json.loads(base.read_text())
        codes = {e["code"] for e in doc["entries"]}
        assert codes and not codes & {"TRUST001", "SM001", "SM002"}
        # applying the baseline silences the ASYNC/TIME backlog but the
        # run still fails on the never-baselined correctness codes
        assert lint_main(
            ["--service", "--baseline", str(base), str(SERVICE_FIXTURES)]
        ) == 1
        out = capsys.readouterr().out
        assert "TRUST001" in out and "SM001" in out
        assert "ASYNC001" not in out and "TIME001" not in out

    def test_handcrafted_trust_baseline_is_rejected(self, tmp_path, capsys):
        bad = tmp_path / "baseline.json"
        bad.write_text(json.dumps({
            "schema": "repro.lint-baseline/1",
            "entries": [{
                "path": "src/repro/service/http.py",
                "code": "TRUST001",
                "message": "request-derived value reaches a sink",
            }],
        }))
        assert lint_main(
            ["--service", "--baseline", str(bad), str(SERVICE_FIXTURES)]
        ) == 2
        assert "cannot be baselined" in capsys.readouterr().err

    def test_suppression_grammar_covers_service_codes(self, tmp_path, capsys):
        src = (
            "import time\n\n\n"
            "async def handler():\n"
            "    time.sleep(1)  # repro-lint: disable=ASYNC001 warm-up\n"
            "    deadline = time.time() + 5  # repro-lint: disable=TIME001 test double\n"
            "    return deadline\n"
        )
        target = tmp_path / "suppressed.py"
        target.write_text(src)
        assert lint_main(["--service", str(target)]) == 0
        assert "no issues found" in capsys.readouterr().out


class TestBaselineFlags:
    def test_write_then_apply_round_trip(self, tmp_path, capsys):
        base = tmp_path / "baseline.json"
        assert lint_main(
            ["--perf", "--write-baseline", str(base), str(PERF_FIXTURES)]
        ) == 0
        capsys.readouterr()
        # KERN001 is never baselined, so the run still fails on it —
        # but every PERF finding is suppressed
        assert lint_main(
            ["--perf", "--baseline", str(base), str(PERF_FIXTURES)]
        ) == 1
        captured = capsys.readouterr()
        assert "suppressed" in captured.err
        assert "PERF" not in captured.out
        assert "KERN001" in captured.out

    def test_malformed_baseline_exits_two(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("not json")
        assert lint_main(
            ["--baseline", str(bad), str(PERF_FIXTURES)]
        ) == 2
        assert "baseline" in capsys.readouterr().err.lower()


class TestTraceRanking:
    def _make_trace(self, tmp_path):
        from repro.obs.report import RunReport
        from repro.obs.tracer import Tracer

        tracer = Tracer()
        with tracer.span("partition"):
            with tracer.span("refine"):
                pass
        report = RunReport.from_run(tracer)
        path = tmp_path / "trace.json"
        report.save(path)
        return path

    def test_trace_json_annotates_hot_findings(self, tmp_path, capsys):
        trace = self._make_trace(tmp_path)
        code = lint_main([
            "--perf", "--select", "PERF002",
            "--trace-json", str(trace), str(PERF_FIXTURES),
        ])
        assert code == 1
        # loop_alloc.py lives in repro.partition — covered by the
        # refine span hint, so its findings carry hot markers
        assert "[hot: " in capsys.readouterr().out

    def test_missing_trace_exits_two(self, tmp_path, capsys):
        assert lint_main([
            "--perf", "--trace-json", str(tmp_path / "nope.json"),
            str(PERF_FIXTURES),
        ]) == 2
        assert "trace" in capsys.readouterr().err.lower()


class TestMetaSelfClean:
    def test_library_lints_clean(self, capsys):
        """`repro-lint src/repro` must exit 0 on the shipped tree."""
        assert lint_main([str(LIBRARY)]) == 0
        assert "no issues found" in capsys.readouterr().out

    def test_default_path_is_the_library(self, capsys):
        assert lint_main([]) == 0
        assert "no issues found" in capsys.readouterr().out


class TestContactCliIntegration:
    def test_lint_subcommand(self, capsys):
        assert contact_main(["lint"]) == 0
        assert "no issues found" in capsys.readouterr().out

    def test_lint_subcommand_forwards_options(self, capsys):
        assert contact_main(["lint", "--format", "json"]) == 0
        assert json.loads(capsys.readouterr().out)["count"] == 0

    def test_lint_subcommand_on_fixtures(self, capsys):
        assert contact_main(["lint", str(FIXTURES)]) == 1
        assert "ASSERT001" in capsys.readouterr().out
