"""Trust-boundary taint pass (TRUST001) unit tests."""

import textwrap

from repro.analysis.engine import build_file_context
from repro.analysis.servicecheck import ServiceAnalyzer


def _analyze(source, module="repro.service.handlers"):
    return ServiceAnalyzer(select=["TRUST001"]).analyze_source(
        textwrap.dedent(source), module=module, path=f"{module}.py"
    )


class TestDirectFlows:
    def test_request_field_to_np_load(self):
        diags = _analyze(
            """
            import json
            import numpy as np

            def handle(body):
                doc = json.loads(body)
                return np.load(doc["path"])
            """
        )
        assert [d.code for d in diags] == ["TRUST001"]
        assert "np.load" in diags[0].message

    def test_request_field_to_subprocess(self):
        diags = _analyze(
            """
            import json
            import subprocess

            def handle(body):
                doc = json.loads(body)
                subprocess.run(["tool", doc["path"]])
            """
        )
        assert [d.code for d in diags] == ["TRUST001"]
        assert "subprocess" in diags[0].message

    def test_tainted_pathlib_receiver(self):
        diags = _analyze(
            """
            import json
            from pathlib import Path

            def handle(body):
                doc = json.loads(body)
                target = Path(doc["path"])
                return target.read_bytes()
            """
        )
        assert [d.code for d in diags] == ["TRUST001"]

    def test_validated_document_is_clean(self):
        diags = _analyze(
            """
            import json
            import numpy as np

            from repro.service.schemas import validate_job_request

            def handle(body):
                request = validate_job_request(json.loads(body))
                return np.load(request["source"]["path"])
            """
        )
        assert diags == []

    def test_untainted_constant_path_is_clean(self):
        diags = _analyze(
            """
            import json
            import numpy as np

            def handle(body):
                doc = json.loads(body)
                count = len(doc)
                return np.load("fixed.npy"), count
            """
        )
        assert diags == []

    def test_strong_update_clears_taint(self):
        diags = _analyze(
            """
            import json

            def handle(body):
                doc = json.loads(body)
                doc = {"path": "fixed.npy"}
                with open(doc["path"], "rb") as fh:
                    return fh.read()
            """
        )
        assert diags == []


class TestInterprocedural:
    def test_taint_follows_positional_argument(self):
        diags = _analyze(
            """
            import json

            def handle(body):
                doc = json.loads(body)
                _probe(doc["source"])

            def _probe(source):
                with open(source["path"], "rb"):
                    pass
            """
        )
        assert [d.code for d in diags] == ["TRUST001"]
        assert "_probe" in diags[0].message or "open" in diags[0].message

    def test_taint_follows_keyword_argument(self):
        diags = _analyze(
            """
            import json

            def handle(body):
                doc = json.loads(body)
                _probe(source=doc["source"])

            def _probe(source=None):
                with open(source["path"], "rb"):
                    pass
            """
        )
        assert [d.code for d in diags] == ["TRUST001"]

    def test_taint_follows_method_call(self):
        diags = _analyze(
            """
            import json
            import numpy as np

            class Handler:
                def handle(self, body):
                    doc = json.loads(body)
                    return self.load(doc["path"])

                def load(self, path):
                    return np.load(path)
            """
        )
        assert [d.code for d in diags] == ["TRUST001"]

    def test_untainted_call_does_not_follow(self):
        diags = _analyze(
            """
            import json

            def handle(body):
                json.loads(body)
                _probe("fixed.cfg")

            def _probe(source):
                with open(source, "rb"):
                    pass
            """
        )
        assert diags == []

    def test_loop_carried_taint_reaches_sink(self):
        diags = _analyze(
            """
            import json
            import numpy as np

            def handle(bodies):
                path = "fixed.npy"
                for body in bodies:
                    np.load(path)
                    path = json.loads(body)["path"]
            """
        )
        assert [d.code for d in diags] == ["TRUST001"]


class TestScope:
    def test_non_service_modules_are_out_of_scope(self):
        diags = _analyze(
            """
            import json
            import numpy as np

            def handle(body):
                doc = json.loads(body)
                return np.load(doc["path"])
            """,
            module="repro.mesh.loader",
        )
        assert diags == []

    def test_finding_survives_cross_module_flow(self):
        handler = build_file_context(
            textwrap.dedent(
                """
                import json

                from repro.service.worker import execute

                def handle(body):
                    execute(json.loads(body))
                """
            ),
            module="repro.service.http",
            path="repro/service/http.py",
        )
        worker = build_file_context(
            textwrap.dedent(
                """
                import numpy as np

                def execute(request):
                    return np.load(request["path"])
                """
            ),
            module="repro.service.worker",
            path="repro/service/worker.py",
        )
        diags = ServiceAnalyzer(select=["TRUST001"]).analyze_contexts(
            [handler, worker]
        )
        assert [d.code for d in diags] == ["TRUST001"]
        assert diags[0].path == "repro/service/worker.py"
