"""State-machine verifier (SM001/SM002) against the real job table.

The mutation tests render altered copies of
``repro.service.queue._TRANSITIONS`` to source and check that each
class of damage — illegal edge, unreachable state, terminal state
with an exit — is caught.  The hypothesis property closes the loop:
every transition sequence the verifier would accept statically is
accepted at runtime by ``Job.transition``.
"""

import textwrap

from hypothesis import given
from hypothesis import strategies as st

from repro.analysis.servicecheck import ServiceAnalyzer
from repro.service.queue import _TERMINAL, _TRANSITIONS, Job


def _render_table(transitions, terminal):
    lines = ["_TRANSITIONS = {"]
    for state, dests in transitions.items():
        lines.append(f"    {state!r}: {tuple(dests)!r},")
    lines.append("}")
    lines.append(f"_TERMINAL = {tuple(terminal)!r}")
    return "\n".join(lines) + "\n"


def _analyze(source, module="repro.service.jobs"):
    return ServiceAnalyzer(select=["SM001", "SM002"]).analyze_source(
        textwrap.dedent(source), module=module, path=f"{module}.py"
    )


class TestRealTable:
    def test_shipped_queue_module_verifies_clean(self):
        diags = ServiceAnalyzer(select=["SM001", "SM002"]).analyze_paths(
            ["src/repro/service"]
        )
        assert diags == []

    def test_rendered_copy_verifies_clean(self):
        assert _analyze(_render_table(_TRANSITIONS, _TERMINAL)) == []


class TestMutatedTables:
    def test_illegal_edge_to_undeclared_state(self):
        mutated = dict(_TRANSITIONS)
        mutated["running"] = mutated["running"] + ("ghost",)
        diags = _analyze(_render_table(mutated, _TERMINAL))
        assert [d.code for d in diags] == ["SM002"]
        assert "'ghost'" in diags[0].message

    def test_unreachable_state(self):
        mutated = dict(_TRANSITIONS)
        mutated["orphan"] = ("done",)
        diags = _analyze(_render_table(mutated, _TERMINAL))
        assert [d.code for d in diags] == ["SM002"]
        assert "unreachable" in diags[0].message

    def test_terminal_state_with_an_exit(self):
        mutated = dict(_TRANSITIONS)
        mutated["done"] = ("queued",)
        diags = _analyze(_render_table(mutated, _TERMINAL))
        assert [d.code for d in diags] == ["SM002"]
        assert "terminal" in diags[0].message

    def test_dead_end_state_not_declared_terminal(self):
        terminal = tuple(s for s in _TERMINAL if s != "expired")
        diags = _analyze(_render_table(_TRANSITIONS, terminal))
        assert [d.code for d in diags] == ["SM002"]
        assert "not declared terminal" in diags[0].message


class TestCallSites:
    TABLE = _render_table(_TRANSITIONS, _TERMINAL)

    def test_legal_sequence_is_clean(self):
        diags = _analyze(
            self.TABLE
            + textwrap.dedent(
                """
                def drive(job):
                    job.transition("running")
                    job.transition("done")
                """
            )
        )
        assert diags == []

    def test_unknown_state_is_flagged(self):
        diags = _analyze(
            self.TABLE
            + "\ndef drive(job):\n    job.transition('paused')\n"
        )
        assert [d.code for d in diags] == ["SM001"]
        assert "'paused'" in diags[0].message

    def test_illegal_consecutive_pair_is_flagged(self):
        diags = _analyze(
            self.TABLE
            + textwrap.dedent(
                """
                def drive(job):
                    job.transition("cancelled")
                    job.transition("done")
                """
            )
        )
        assert [d.code for d in diags] == ["SM001"]
        assert "'cancelled' -> 'done'" in diags[0].message

    def test_table_found_across_modules(self):
        from repro.analysis.engine import build_file_context

        table_mod = build_file_context(
            self.TABLE, module="repro.service.jobs",
            path="repro/service/jobs.py",
        )
        caller = build_file_context(
            "from repro.service import jobs\n\n"
            "def drive(job):\n    job.transition('paused')\n",
            module="repro.service.driver",
            path="repro/service/driver.py",
        )
        diags = ServiceAnalyzer(
            select=["SM001", "SM002"]
        ).analyze_contexts([table_mod, caller])
        assert [d.code for d in diags] == ["SM001"]
        assert diags[0].path == "repro/service/driver.py"


@st.composite
def transition_walks(draw):
    """A path through the real table, starting at the initial state."""
    state = "queued"
    path = []
    for _ in range(draw(st.integers(min_value=0, max_value=8))):
        dests = _TRANSITIONS[state]
        if not dests:
            break
        state = draw(st.sampled_from(sorted(dests)))
        path.append(state)
    return path


class TestRuntimeConformance:
    @given(transition_walks())
    def test_statically_legal_walks_are_accepted_at_runtime(self, path):
        job = Job(id="j", request={"kind": "noop"}, submitted_s=0.0)
        for state in path:
            job.transition(state)
        assert job.state == (path[-1] if path else "queued")
        assert job.terminal == (job.state in _TERMINAL)
