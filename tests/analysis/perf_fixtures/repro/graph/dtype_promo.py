"""PERF004 seeds: implicit dtype promotion in numeric expressions.

True division of an explicitly-int array, and an int array mixed with
a float scalar; integer-preserving arithmetic stays quiet.
"""

import numpy as np


def true_division_promotes(n: int) -> np.ndarray:
    return np.arange(n, dtype=np.int64) / 2  # PERF004


def float_scalar_promotes(n: int) -> np.ndarray:
    return np.zeros(n, dtype=np.int64) + 0.5  # PERF004


def integer_arithmetic_is_fine(n: int) -> np.ndarray:
    counts = np.ones(n, dtype=np.int64) * 2
    return counts // 2
