"""PERF002 seeds: per-iteration allocation in a loop.

``np.concatenate`` growing an accumulator each iteration (O(n²)),
and the grow-a-list-then-``np.array`` pattern.
"""

import numpy as np


def quadratic_growth(chunks) -> np.ndarray:
    acc = np.empty(0, dtype=np.int64)
    for chunk in chunks:
        acc = np.concatenate((acc, chunk))  # PERF002
    return acc


def list_grow_then_array(n: int) -> np.ndarray:
    rows = []
    for i in range(n):
        rows.append(i * 2)
    return np.array(rows, dtype=np.int64)  # PERF002


def concatenate_once_after_is_fine(chunks) -> np.ndarray:
    collected = []
    for chunk in chunks:
        collected.append(chunk * 2)
    # chunk list -> one concatenate is the sanctioned pattern; only the
    # np.array/np.asarray re-boxing spelling of list conversion fires
    return np.concatenate(collected)
