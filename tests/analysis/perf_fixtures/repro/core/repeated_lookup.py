"""PERF003 seeds: repeated attribute lookup inside a hot loop.

One dotted chain resolved three times per iteration (fires), the same
chain only twice (idiom — stays quiet), and a rebound receiver the
rule must not misattribute.
"""


def triple_lookup(session, work) -> None:
    for item in work:
        session.comm.send(item)  # PERF003 (3× in this loop)
        session.comm.send(item * 2)
        session.comm.send(item * 3)


def double_lookup_is_idiom(session, work) -> None:
    for item in work:
        session.comm.send(item)
        session.comm.send(item * 2)


def rebound_receiver_is_fine(pool, work) -> None:
    for item in work:
        worker = pool.take()
        worker.push(item)  # 'worker' is rebound each iteration
        worker.push(item * 2)
        worker.push(item * 3)
