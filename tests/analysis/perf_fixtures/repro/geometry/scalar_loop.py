"""PERF001 seeds: scalar Python loops over NumPy array data.

Four spellings of the same scan — direct iteration of an annotated
parameter, iteration of an array-returning call, ``range(len(arr))``
index loops, and ``enumerate(arr)`` — plus negative cases the
under-approximating evidence tracker must not flag.
"""

import numpy as np


def iterate_param(points: np.ndarray) -> float:
    total = 0.0
    for p in points:  # PERF001
        total += p
    return total


def iterate_call_result() -> int:
    n = 0
    for v in np.nonzero(np.zeros(8, dtype=np.int64))[0]:  # PERF001
        n += int(v)
    return n


def index_loop(weights: np.ndarray) -> float:
    total = 0.0
    for i in range(len(weights)):  # PERF001
        total += weights[i]
    return total


def enumerate_loop(coords: np.ndarray) -> float:
    total = 0.0
    for i, c in enumerate(coords):  # PERF001
        total += i * c
    return total


def plain_list_is_fine(items):
    total = 0
    for x in items:  # no evidence items is an array — not flagged
        total += x
    return total


def while_loops_are_not_scans(points: np.ndarray) -> int:
    n = 0
    while n < 3:  # while loops are frontier descents, not element scans
        points = points[:-1]
        n += 1
    return n
