"""A certifiable kernel: the contract's positive example.

Pure NumPy over parameters, explicit dtypes everywhere, a pure helper
reached through the call graph, and a scalar module constant — every
allowance the certifier grants, none of the blockers.
"""

import numpy as np

from repro.kernels import kernel

EPS = 1e-12


def _pure_helper(weights: np.ndarray) -> np.ndarray:
    return np.cumsum(weights, dtype=np.float64)


@kernel
def prefix_normalise(weights: np.ndarray) -> np.ndarray:
    totals = _pure_helper(weights)
    scale = np.ones(1, dtype=np.float64)
    return totals / (totals[-1] + EPS) * scale[0]
