"""KERN001 seeds: declared kernels violating the purity contract.

``blocked_kernel`` trips five blocker kinds in one body
(object-container, implicit-dtype, io-call, context-manager,
nested-def); ``impure_by_helper`` is clean itself but reaches an
impure helper; ``global_reader`` closes over a module-level array.
"""

import numpy as np

from repro.kernels import kernel

LOOKUP_TABLE = np.zeros(4, dtype=np.float64)

SCALE = 2.0  # scalar constants are allowed in kernels


@kernel
def blocked_kernel(values: np.ndarray) -> np.ndarray:
    pairs = [1, 2, 3]  # object-container
    out = np.empty(len(values))  # implicit-dtype
    print("tracing", len(pairs))  # io-call
    with open("log.txt") as fh:  # context-manager (and io-call)
        fh.read()
    shift = lambda v: v + 1  # nested-def
    return out + shift(values[0])


def _impure_helper(values: np.ndarray) -> np.ndarray:
    return np.asarray(sorted(values))  # implicit-dtype


@kernel
def impure_by_helper(values: np.ndarray) -> np.ndarray:
    return _impure_helper(values) * SCALE


@kernel
def global_reader(values: np.ndarray) -> np.ndarray:
    return values + LOOKUP_TABLE  # global-state (module-level array)
