"""PERF005 seeds: element-wise ``math.*`` in a loop where a ufunc
exists — both the dotted and the from-imported spelling."""

import math
from math import hypot


def dotted_math_in_loop(values) -> list:
    out = []
    for v in values:
        out.append(math.sqrt(v))  # PERF005
    return out


def imported_math_in_loop(xs, ys) -> float:
    total = 0.0
    for x, y in zip(xs, ys):
        total += hypot(x, y)  # PERF005
    return total


def math_outside_loops_is_fine(v: float) -> float:
    return math.sqrt(v)
