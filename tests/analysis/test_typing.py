"""The strict typing gate (runs only where mypy is installed).

CI runs mypy on the fully-annotated packages; locally this test skips
when mypy is absent so the tier-1 suite has no new dependencies.
"""

import shutil
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]
GATED = [
    "src/repro/graph",
    "src/repro/utils",
    "src/repro/partition/config.py",
    "src/repro/analysis",
    "src/repro/obs",
    "src/repro/kernels.py",
]

pytestmark = pytest.mark.skipif(
    shutil.which("mypy") is None, reason="mypy not installed"
)


def test_gated_packages_pass_strict_mypy():
    result = subprocess.run(
        [sys.executable, "-m", "mypy", *GATED],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
    )
    assert result.returncode == 0, result.stdout + result.stderr
