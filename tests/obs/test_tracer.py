"""Tests for the span tracer (repro.obs.tracer)."""

import pytest

from repro.obs import NULL_TRACER, NullTracer, Span, Tracer, ensure_tracer
from repro.obs.tracer import (
    SPAN_COARSEN,
    SPAN_INITIAL,
    SPAN_MAP_TRANSFER,
    SPAN_REFINE,
    SPAN_REFINE_GPRIME,
)


class TestSpan:
    def test_child_get_or_create(self):
        s = Span("root")
        a = s.child("a")
        assert s.child("a") is a
        assert list(s.children) == ["a"]

    def test_counters_accumulate(self):
        s = Span("x")
        s.count("moves", 3)
        s.count("moves", 4)
        s.count("levels")
        assert s.counters == {"moves": 7, "levels": 1}

    def test_self_time_never_negative(self):
        s = Span("p")
        s.total_s = 1.0
        c = s.child("c")
        c.total_s = 2.0  # clock skew scenario
        assert s.children_s == 2.0
        assert s.self_s == 0.0

    def test_find_and_walk(self):
        root = Span("run")
        root.child("a").child("b")
        root.child("c")
        assert root.find("a/b") is root.children["a"].children["b"]
        assert root.find("a/zzz") is None
        paths = [p for p, _ in root.walk()]
        assert paths == ["run", "run/a", "run/a/b", "run/c"]

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError, match="non-empty"):
            Span("")

    def test_dict_round_trip(self):
        root = Span("run")
        a = root.child("a")
        a.n_calls = 2
        a.total_s = 0.5
        a.count("moves", 9)
        rebuilt = Span.from_dict(root.to_dict())
        assert rebuilt.to_dict() == root.to_dict()

    def test_to_dict_exports_exclusive_self_time(self):
        root = Span("run")
        root.total_s = 1.0
        child = root.child("c")
        child.total_s = 0.3
        doc = root.to_dict()
        assert doc["self_s"] == pytest.approx(0.7)
        assert doc["children"][0]["self_s"] == pytest.approx(0.3)

    def test_from_dict_tolerates_missing_self_s(self):
        """Pre-self_s version-1 documents still load; the property
        recomputes the exclusive time from the tree."""
        doc = Span("run").to_dict()
        doc.pop("self_s")
        rebuilt = Span.from_dict(doc)
        assert rebuilt.self_s == 0.0

    @pytest.mark.parametrize(
        "mutation, message",
        [
            ({"name": 7}, "name"),
            ({"n_calls": 1.5}, "n_calls"),
            ({"n_calls": True}, "n_calls"),
            ({"total_s": "x"}, "total_s"),
            ({"counters": [1]}, "counters"),
            ({"counters": {"m": "x"}}, "counter"),
            ({"children": {}}, "children"),
            ({"children": [3]}, "child"),
        ],
    )
    def test_from_dict_rejects_malformed(self, mutation, message):
        doc = Span("run").to_dict()
        doc.update(mutation)
        with pytest.raises(ValueError, match=message):
            Span.from_dict(doc)


class TestTracer:
    def test_nesting_and_accumulation(self):
        tr = Tracer()
        for _ in range(3):
            with tr.span("partition"):
                with tr.span(SPAN_COARSEN):
                    pass
                with tr.span(SPAN_REFINE):
                    pass
        root = tr.finish()
        part = root.find("partition")
        assert part is not None and part.n_calls == 3
        assert root.find(f"partition/{SPAN_COARSEN}").n_calls == 3
        assert root.find(f"partition/{SPAN_REFINE}").n_calls == 3

    def test_parent_time_bounds_children(self):
        tr = Tracer()
        with tr.span("outer"):
            with tr.span("inner"):
                pass
        root = tr.finish()
        outer = root.find("outer")
        assert outer.total_s >= outer.children_s
        assert root.total_s == pytest.approx(root.children_s)

    def test_count_lands_in_innermost_open_span(self):
        tr = Tracer()
        with tr.span("a"):
            tr.count("x", 2)
            with tr.span("b"):
                tr.count("x", 5)
        root = tr.finish()
        assert root.find("a").counters == {"x": 2}
        assert root.find("a/b").counters == {"x": 5}

    def test_current_tracks_stack(self):
        tr = Tracer()
        assert tr.current is tr.root
        with tr.span("a"):
            assert tr.current.name == "a"
        assert tr.current is tr.root

    def test_finish_rejects_open_spans(self):
        tr = Tracer()
        cm = tr.span("left-open")
        cm.__enter__()
        with pytest.raises(RuntimeError, match="open"):
            tr.finish()

    def test_exception_still_closes_span(self):
        tr = Tracer()
        with pytest.raises(RuntimeError, match="boom"):
            with tr.span("a"):
                raise RuntimeError("boom")
        root = tr.finish()  # no open spans left behind
        assert root.find("a").n_calls == 1

    def test_span_constants_distinct(self):
        names = {
            SPAN_COARSEN, SPAN_INITIAL, SPAN_REFINE,
            SPAN_REFINE_GPRIME, SPAN_MAP_TRANSFER,
        }
        assert len(names) == 5


class TestNullTracer:
    def test_noop_span_and_count(self):
        tr = NullTracer()
        assert not tr.enabled
        with tr.span("anything") as span:
            assert span is None
        tr.count("x", 5)  # must not raise

    def test_ensure_tracer(self):
        assert ensure_tracer(None) is NULL_TRACER
        tr = Tracer()
        assert ensure_tracer(tr) is tr
        null = NullTracer()
        assert ensure_tracer(null) is null

    def test_null_span_cm_is_reusable_singleton(self):
        tr = NullTracer()
        assert tr.span("a") is tr.span("b")
