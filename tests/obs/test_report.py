"""Tests for RunReport rendering, serialization, and the JSON schema."""

import json

import pytest

from repro.obs import (
    SCHEMA_VERSION,
    ReportSchemaError,
    RunReport,
    Tracer,
    validate_report,
)
from repro.runtime.ledger import CommLedger


def _sample_report() -> RunReport:
    tracer = Tracer()
    with tracer.span("fit"):
        with tracer.span("partition"):
            tracer.count("trials", 4)
        with tracer.span("dtree-induce"):
            tracer.count("tree_nodes", 17)
    ledger = CommLedger()
    ledger.record("contact-exchange", 0, 1, 12)
    ledger.record("repartition", 1, 0, 3)
    return RunReport.from_run(tracer, ledger, k=4, seed=0)


class TestRunReport:
    def test_from_run_merges_ledger(self):
        report = _sample_report()
        assert report.comm["contact-exchange"] == (1, 12)
        assert report.comm_items("repartition") == 3
        assert report.comm_total_items() == 15
        assert report.meta == {"k": 4, "seed": 0}

    def test_span_total_lookup(self):
        report = _sample_report()
        assert report.span_total("fit") >= report.span_total("fit/partition")
        assert report.span_total("no/such/span") == 0.0

    def test_save_load_round_trip(self, tmp_path):
        report = _sample_report()
        path = tmp_path / "report.json"
        report.save(path)
        loaded = RunReport.load(path)
        assert loaded.to_dict() == report.to_dict()
        assert loaded.comm == report.comm
        assert loaded.meta == report.meta

    def test_render_contains_spans_counters_comm(self):
        text = _sample_report().render()
        assert "Trace spans" in text
        assert "dtree-induce" in text
        assert "tree_nodes=17" in text
        assert "contact-exchange" in text
        assert "k=4" in text

    def test_span_table_disambiguates_duplicate_names(self):
        tracer = Tracer()
        with tracer.span("fit"):
            with tracer.span("build-graph"):
                pass
        with tracer.span("step"):
            with tracer.span("build-graph"):
                pass
        table = RunReport.from_run(tracer).span_table()
        rows = list(table.rows)
        assert any("fit/build-graph" in r or "build-graph" == r.strip()
                   for r in rows)
        assert len(rows) == len(set(rows))  # no silent row collisions

    def test_load_rejects_non_object(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("[1, 2]")
        with pytest.raises(ValueError, match="object"):
            RunReport.load(path)


class TestSchema:
    """Golden-schema tests: the emitted JSON document is exactly the
    shape documented in docs/OBSERVABILITY.md."""

    def test_emitted_document_validates(self):
        document = _sample_report().to_dict()
        assert validate_report(document) is document

    def test_golden_top_level_shape(self):
        document = _sample_report().to_dict()
        assert set(document) == {"schema", "meta", "spans", "comm"}
        assert document["schema"] == SCHEMA_VERSION == "repro.run-report/1"
        assert set(document["spans"]) == {
            "name", "n_calls", "total_s", "self_s", "counters", "children",
        }
        for phase, totals in document["comm"].items():
            assert isinstance(phase, str)
            assert set(totals) == {"n_messages", "n_items"}

    def test_golden_json_is_stable(self):
        """Serialization is deterministic apart from wall times."""
        a = json.loads(_sample_report().to_json())
        b = json.loads(_sample_report().to_json())

        def strip_times(span):
            span["total_s"] = 0.0
            span["self_s"] = 0.0
            for child in span["children"]:
                strip_times(child)

        strip_times(a["spans"])
        strip_times(b["spans"])
        assert a == b

    @pytest.mark.parametrize(
        "mutate, path_hint",
        [
            (lambda d: d.pop("schema"), "schema"),
            (lambda d: d.update(schema="v999"), "schema"),
            (lambda d: d.update(extra=1), "extra"),
            (lambda d: d["meta"].update(bad=[1]), "meta"),
            (lambda d: d["spans"].pop("name"), "name"),
            (lambda d: d["spans"].update(n_calls=-1), "n_calls"),
            (lambda d: d["spans"].update(total_s="x"), "total_s"),
            (lambda d: d["spans"]["counters"].update(c=[]), "counters"),
            (lambda d: d["comm"].update(p={"n_messages": 1}), "n_items"),
            (lambda d: d["comm"].update(p={"n_messages": -1,
                                           "n_items": 0}), "n_messages"),
        ],
    )
    def test_malformed_documents_rejected(self, mutate, path_hint):
        document = _sample_report().to_dict()
        mutate(document)
        with pytest.raises(ReportSchemaError) as err:
            validate_report(document)
        assert path_hint in str(err.value)

    def test_duplicate_sibling_span_names_rejected(self):
        document = _sample_report().to_dict()
        child = {
            "name": "dup", "n_calls": 1, "total_s": 0.0,
            "counters": {}, "children": [],
        }
        document["spans"]["children"] = [child, dict(child)]
        with pytest.raises(ReportSchemaError, match="dup"):
            validate_report(document)

    def test_to_json_refuses_invalid_report(self):
        report = _sample_report()
        report.meta["bad"] = [1, 2]  # not a scalar: schema must refuse
        with pytest.raises(ReportSchemaError):
            report.to_json()
