"""Tracing must be observation-only: identical results with it on or
off, and a no-op tracer on the hot path."""

import numpy as np

from repro.core.mcml_dt import MCMLDTParams, MCMLDTPartitioner
from repro.graph.build import grid_graph
from repro.obs import NullTracer, Tracer
from repro.partition.config import PartitionOptions
from repro.partition.kway import partition_kway


class TestTracingChangesNothing:
    def test_partition_kway_identical_with_and_without(self):
        g = grid_graph(12, 12)
        opts = PartitionOptions(seed=7)
        baseline = partition_kway(g, 4, opts)
        with_null = partition_kway(g, 4, opts, tracer=NullTracer())
        with_trace = partition_kway(g, 4, opts, tracer=Tracer())
        np.testing.assert_array_equal(baseline, with_null)
        np.testing.assert_array_equal(baseline, with_trace)

    def test_mcml_dt_fit_identical_with_and_without(self, small_sequence):
        snap = small_sequence[0]
        params = MCMLDTParams(options=PartitionOptions(seed=3))

        plain = MCMLDTPartitioner(5, params).fit(snap)
        traced = MCMLDTPartitioner(5, params).fit(snap, tracer=Tracer())
        nulled = MCMLDTPartitioner(5, params).fit(
            snap, tracer=NullTracer()
        )
        np.testing.assert_array_equal(plain.labels, traced.labels)
        np.testing.assert_array_equal(plain.labels, nulled.labels)

    def test_traced_fit_records_required_phases(self, small_sequence):
        tracer = Tracer()
        params = MCMLDTParams(options=PartitionOptions(seed=3))
        MCMLDTPartitioner(5, params).fit(small_sequence[0], tracer=tracer)
        root = tracer.finish()
        for path in (
            "fit/partition/coarsen",
            "fit/partition/initial",
            "fit/partition/refine",
            "fit/dtree-induce",
            "fit/collapse",
            "fit/refine-G'",
        ):
            span = root.find(path)
            assert span is not None and span.n_calls >= 1, path
        # wall-time consistency: no span outlives its parent
        for path, span in root.walk():
            assert span.total_s + 1e-9 >= span.children_s, path
