"""Tests for the service engine: caching, single-flight, rate limits,
deadlines, retries."""

import asyncio

import pytest

from repro.service.engine import (
    EngineConfig,
    RateLimitedError,
    ServiceEngine,
    UnknownJobError,
)
from repro.service.queue import QueueFullError, RetryPolicy
from repro.service.schemas import SCHEMA_VERSION

SOURCE = {"kind": "impact", "n_steps": 2, "refine": 0.5}


def request(**overrides):
    doc = {
        "schema": SCHEMA_VERSION,
        "kind": "partition",
        "k": 4,
        "source": dict(SOURCE),
    }
    doc.update(overrides)
    return doc


def run(coro):
    return asyncio.run(coro)


class TestPartitionJobs:
    def test_cached_repeat_skips_the_partitioner(self):
        """The acceptance property: a repeat request returns a
        bit-identical result without invoking any partitioner."""

        async def scenario():
            engine = ServiceEngine(EngineConfig(workers=2))
            await engine.start()
            try:
                first = await engine.wait(
                    engine.submit(request()).id, 120
                )
                fits_after_cold = engine.fits_total
                second = await engine.wait(
                    engine.submit(request()).id, 120
                )
                return first, second, fits_after_cold, engine.fits_total
            finally:
                await engine.stop()

        first, second, cold_fits, warm_fits = run(scenario())
        assert first.state == "done" and first.cache == "miss"
        assert second.state == "done" and second.cache == "hit"
        assert cold_fits == 1
        assert warm_fits == 1  # the fit count did not move
        assert second.result["labels"] == first.result["labels"]
        assert second.result["content_key"] == first.result["content_key"]
        assert second.result["diagnostics"] == first.result["diagnostics"]

    def test_cache_opt_out_recomputes(self):
        async def scenario():
            engine = ServiceEngine(EngineConfig(workers=1))
            await engine.start()
            try:
                await engine.wait(
                    engine.submit(request(cache=False)).id, 120
                )
                second = await engine.wait(
                    engine.submit(request(cache=False)).id, 120
                )
                return second, engine.fits_total
            finally:
                await engine.stop()

        second, fits = run(scenario())
        assert second.cache == "miss"
        assert fits == 2

    def test_all_partitioners_runnable(self):
        async def scenario():
            engine = ServiceEngine(EngineConfig(workers=1))
            await engine.start()
            try:
                jobs = [
                    engine.submit(request(partitioner=name))
                    for name in ("mcml-dt", "ml-rcb", "apriori")
                ]
                return [
                    await engine.wait(job.id, 240) for job in jobs
                ]
            finally:
                await engine.stop()

        for job in run(scenario()):
            assert job.state == "done", job.error
            assert job.result["method"] == job.request["partitioner"]

    def test_failed_source_retries_then_fails(self):
        async def scenario():
            engine = ServiceEngine(
                EngineConfig(
                    workers=1,
                    retry=RetryPolicy(
                        max_retries=2, backoff_base_s=0.001
                    ),
                )
            )
            await engine.start()
            try:
                job = engine.submit(
                    request(
                        source={"kind": "mesh", "path": "/nope/missing.npz"}
                    )
                )
                job = await engine.wait(job.id, 60)
                return job, engine.retries_total
            finally:
                await engine.stop()

        job, retries_total = run(scenario())
        assert job.state == "failed"
        assert job.retries == 2  # exhausted the budget
        assert retries_total == 2
        assert job.error


class TestSingleFlight:
    def test_identical_concurrent_submissions_fit_once(self):
        """N identical submissions execute the partition exactly once;
        the coalesced counter proves the other N-1 never ran."""
        n = 6

        async def scenario():
            engine = ServiceEngine(EngineConfig(workers=4))
            # submit all N before any worker runs: every submission is
            # concurrent with the first one
            jobs = [engine.submit(request()) for _ in range(n)]
            await engine.start()
            try:
                jobs = [await engine.wait(job.id, 120) for job in jobs]
                return jobs, engine.fits_total, engine.coalesced_total
            finally:
                await engine.stop()

        jobs, fits, coalesced = run(scenario())
        assert fits == 1
        assert coalesced == n - 1
        assert all(job.state == "done" for job in jobs)
        leader, followers = jobs[0], jobs[1:]
        assert leader.cache == "miss" and not leader.coalesced
        for job in followers:
            assert job.coalesced
            assert job.cache == "coalesced"
            assert job.result["cache"] == "coalesced"
            assert job.result["id"] == job.id  # own id, shared payload
            assert job.result["labels"] == leader.result["labels"]

    def test_different_requests_do_not_coalesce(self):
        async def scenario():
            engine = ServiceEngine(EngineConfig(workers=2))
            a = engine.submit(request(k=4))
            b = engine.submit(request(k=5))
            await engine.start()
            try:
                await engine.wait(a.id, 120)
                await engine.wait(b.id, 120)
                return engine.fits_total, engine.coalesced_total
            finally:
                await engine.stop()

        fits, coalesced = run(scenario())
        assert fits == 2
        assert coalesced == 0

    def test_followers_settle_when_queued_leader_is_cancelled(self):
        """Regression: cancelling a still-queued leader must settle its
        coalesced followers (previously they were stranded forever —
        the dead leader was silently dropped on its way out of the
        queue and never fanned out)."""

        async def scenario():
            engine = ServiceEngine(EngineConfig(workers=1))
            leader = engine.submit(request())
            followers = [engine.submit(request()) for _ in range(3)]
            assert all(f.coalesced for f in followers)
            assert engine.cancel(leader.id)
            # settled eagerly: no worker has even started yet
            assert all(f.terminal for f in followers)
            await engine.start()
            try:
                # the dead leader still drains through a worker; the
                # second settle is a no-op and nothing resurrects
                jobs = [
                    await engine.wait(f.id, 60) for f in followers
                ]
                jobs.append(await engine.wait(leader.id, 60))
                return jobs, engine.fits_total
            finally:
                await engine.stop()

        jobs, fits = run(scenario())
        *followers, leader = jobs
        assert leader.state == "cancelled"
        assert fits == 0  # nothing ever executed
        for follower in followers:
            assert follower.state == "cancelled"
            assert leader.id in (follower.error or "")

    def test_followers_settle_when_queued_leader_expires(self):
        """Regression: a leader whose deadline passes while queued is
        marked expired by take(); its followers must expire with it
        instead of hanging."""

        async def scenario():
            engine = ServiceEngine(EngineConfig(workers=1))
            leader = engine.submit(request(deadline_s=0.005))
            follower = engine.submit(request(deadline_s=0.005))
            assert follower.coalesced
            await asyncio.sleep(0.05)  # both deadlines pass unserved
            await engine.start()
            try:
                leader = await engine.wait(leader.id, 60)
                follower = await engine.wait(follower.id, 60)
                return leader, follower, engine.fits_total
            finally:
                await engine.stop()

        leader, follower, fits = run(scenario())
        assert leader.state == "expired"
        assert follower.state == "expired"
        assert fits == 0

    def test_follower_own_deadline_enforced_at_settle(self):
        """A follower with a tighter deadline than its leader expires
        instead of receiving the late result."""

        async def scenario():
            engine = ServiceEngine(EngineConfig(workers=1))
            leader = engine.submit(request())
            stale = engine.submit(request(deadline_s=0.001))
            fresh = engine.submit(request())
            await asyncio.sleep(0.01)  # only stale's deadline passes
            await engine.start()
            try:
                leader = await engine.wait(leader.id, 120)
                stale = await engine.wait(stale.id, 60)
                fresh = await engine.wait(fresh.id, 60)
                return leader, stale, fresh
            finally:
                await engine.stop()

        leader, stale, fresh = run(scenario())
        assert leader.state == "done"
        assert stale.state == "expired"
        assert "deadline" in (stale.error or "")
        assert fresh.state == "done"
        assert fresh.result["labels"] == leader.result["labels"]

    def test_follower_mirrors_leader_failure(self):
        async def scenario():
            engine = ServiceEngine(
                EngineConfig(
                    workers=1,
                    retry=RetryPolicy(max_retries=0),
                )
            )
            bad = request(
                source={"kind": "mesh", "path": "/nope/missing.npz"}
            )
            leader = engine.submit(bad)
            follower = engine.submit(bad)
            await engine.start()
            try:
                leader = await engine.wait(leader.id, 60)
                follower = await engine.wait(follower.id, 60)
                return leader, follower
            finally:
                await engine.stop()

        leader, follower = run(scenario())
        assert leader.state == "failed"
        assert follower.state == "failed"
        assert leader.id in (follower.error or "")


class TestAdmission:
    def test_rate_limit(self):
        async def scenario():
            engine = ServiceEngine(
                EngineConfig(workers=1, rate_per_s=0.001, rate_burst=2)
            )
            engine.submit(request(k=2, client="alice"))
            engine.submit(request(k=3, client="alice"))
            with pytest.raises(RateLimitedError) as info:
                engine.submit(request(k=5, client="alice"))
            # other clients have their own bucket
            engine.submit(request(k=6, client="bob"))
            return engine, info.value

        engine, exc = run(scenario())
        assert exc.client == "alice"
        assert exc.retry_after_s > 0
        assert engine.rate_limited_total == 1

    def test_rate_bucket_map_is_bounded(self):
        """Arbitrary client strings cannot grow the bucket map past
        ``rate_clients_max`` (idle/refilled buckets are pruned)."""

        async def scenario():
            engine = ServiceEngine(
                EngineConfig(
                    workers=1,
                    queue_maxsize=64,
                    rate_per_s=1000.0,  # buckets refill immediately
                    rate_burst=4,
                    rate_clients_max=5,
                )
            )
            for i in range(20):
                engine.submit(request(k=2 + (i % 3), client=f"c{i}"))
            return len(engine._buckets)

        assert run(scenario()) <= 5

    def test_mesh_root_restricts_source_paths(self, tmp_path):
        """With ``mesh_root`` set, mesh sources outside it are rejected
        at submission (HTTP 400), including traversal attempts."""
        from repro.service.schemas import ServiceSchemaError

        async def scenario():
            root = tmp_path / "meshes"
            root.mkdir()
            engine = ServiceEngine(
                EngineConfig(workers=1, mesh_root=str(root))
            )
            for path in (
                "/etc/passwd",
                str(root / ".." / "secret.npz"),
            ):
                with pytest.raises(ServiceSchemaError, match="mesh root"):
                    engine.submit(
                        request(source={"kind": "mesh", "path": path})
                    )
            # a path under the root passes admission (it fails later at
            # load time, as an executed-job error, not a schema error)
            job = engine.submit(
                request(
                    source={"kind": "mesh", "path": str(root / "m.npz")}
                )
            )
            assert engine.queue.submitted == 1
            return job

        assert run(scenario()).state == "queued"
        async def scenario():
            engine = ServiceEngine(
                EngineConfig(workers=1, queue_maxsize=2)
            )
            engine.submit(request(k=2))
            engine.submit(request(k=3))
            with pytest.raises(QueueFullError):
                engine.submit(request(k=4))

        run(scenario())

    def test_deadline_expired_job_surfaces_counters(self):
        """A job whose deadline passes while queued ends 'expired' and
        the record carries the accounting."""

        async def scenario():
            engine = ServiceEngine(EngineConfig(workers=1))
            job = engine.submit(request(deadline_s=0.005))
            await asyncio.sleep(0.05)  # deadline passes before workers
            await engine.start()
            try:
                job = await engine.wait(job.id, 60)
                return job, engine.queue.expired
            finally:
                await engine.stop()

        job, expired = run(scenario())
        assert job.state == "expired"
        assert "deadline" in (job.error or "")
        assert expired == 1
        record = job.record()
        assert record["state"] == "expired"
        assert record["retries"] == 0

    def test_cancel_queued_job(self):
        async def scenario():
            engine = ServiceEngine(EngineConfig(workers=1))
            job = engine.submit(request())
            assert engine.cancel(job.id)
            with pytest.raises(UnknownJobError):
                engine.cancel("job-999999")
            await engine.start()
            try:
                job = await engine.wait(job.id, 60)
                return job, engine.fits_total
            finally:
                await engine.stop()

        job, fits = run(scenario())
        assert job.state == "cancelled"
        assert fits == 0  # never executed


class TestContactStepJobs:
    def test_contact_step_runs_driver(self):
        async def scenario():
            engine = ServiceEngine(EngineConfig(workers=1))
            await engine.start()
            try:
                job = engine.submit(
                    request(kind="contact-step", steps=2)
                )
                return await engine.wait(job.id, 240), engine.steps_total
            finally:
                await engine.stop()

        job, steps_total = run(scenario())
        assert job.state == "done", job.error
        payload = job.result
        assert payload["kind"] == "contact-step"
        assert payload["steps"] == 2
        assert len(payload["labels_digest"]) == 64
        assert payload["comm"]  # the driver moved data
        assert steps_total == 2


class TestReporting:
    def test_run_report_carries_counters_and_validates(self):
        async def scenario():
            engine = ServiceEngine(EngineConfig(workers=1))
            await engine.start()
            try:
                await engine.wait(engine.submit(request()).id, 120)
                await engine.wait(engine.submit(request()).id, 120)
            finally:
                await engine.stop()
            return engine

        # run_report takes the execution lock, so build it off-loop —
        # exactly what the /v1/report route does (ASYNC001)
        report = run(scenario()).run_report()
        assert report.meta["fits_total"] == 1
        assert report.meta["cache_hits"] == 1
        assert report.meta["queue_submitted"] == 2
        # job spans were merged under the service root
        assert report.spans.find("partition/fit") is not None
        assert report.spans.find("partition/cache-lookup") is not None
        # and the document round-trips through the strict report schema
        report.to_json()

    def test_counters_flat_mapping(self):
        async def scenario():
            return ServiceEngine(EngineConfig(workers=1)).counters()

        counters = run(scenario())
        assert counters["fits_total"] == 0
        assert counters["cache_hits"] == 0
        assert all(isinstance(v, int) for v in counters.values())
