"""Tests for the bounded job queue, retry policy, and job records."""

import asyncio
import time

import pytest

from repro.service.queue import Job, JobQueue, QueueFullError, RetryPolicy
from repro.service.schemas import (
    SCHEMA_VERSION,
    validate_job_record,
    validate_job_request,
)


def request(**overrides):
    doc = {
        "schema": SCHEMA_VERSION,
        "kind": "partition",
        "k": 2,
        "source": {"kind": "impact", "n_steps": 2},
    }
    doc.update(overrides)
    return validate_job_request(doc)


def run(coro):
    return asyncio.run(coro)


class TestRetryPolicy:
    def test_exponential_with_cap(self):
        policy = RetryPolicy(
            max_retries=5, backoff_base_s=0.1, backoff_factor=2.0,
            backoff_cap_s=0.5,
        )
        assert policy.delay(0) == pytest.approx(0.1)
        assert policy.delay(1) == pytest.approx(0.2)
        assert policy.delay(2) == pytest.approx(0.4)
        assert policy.delay(3) == pytest.approx(0.5)  # capped
        assert policy.delay(10) == pytest.approx(0.5)

    def test_validation(self):
        with pytest.raises(ValueError, match="max_retries"):
            RetryPolicy(max_retries=-1)
        with pytest.raises(ValueError, match="backoff_factor"):
            RetryPolicy(backoff_factor=0.5)
        with pytest.raises(ValueError, match="retry index"):
            RetryPolicy().delay(-1)


class TestJobStateMachine:
    def job(self):
        async def make():
            return Job(id="job-000000", request=request(), submitted_s=1.0)

        return run(make())

    def test_happy_path(self):
        job = self.job()
        job.transition("running")
        assert job.started_s is not None
        job.transition("done")
        assert job.terminal
        assert job.finished_s is not None
        assert job.done_event.is_set()

    def test_resurrection_forbidden(self):
        job = self.job()
        job.transition("running")
        job.transition("done")
        with pytest.raises(ValueError, match="illegal transition"):
            job.transition("running")

    def test_retry_loop_allowed(self):
        job = self.job()
        job.transition("running")
        job.transition("queued")  # retry re-queue
        job.transition("running")
        job.transition("failed")
        assert job.terminal

    def test_unknown_state_rejected(self):
        with pytest.raises(ValueError, match="unknown job state"):
            self.job().transition("paused")

    def test_deadline(self):
        job = self.job()
        assert not job.expired()  # no deadline
        job.deadline_s = time.monotonic() - 0.001
        assert job.expired()

    def test_record_validates(self):
        job = self.job()
        assert validate_job_record(job.record())["state"] == "queued"
        job.transition("running")
        job.transition("done")
        assert validate_job_record(job.record())["state"] == "done"


class TestJobQueue:
    def test_submit_take_fifo(self):
        async def scenario():
            queue = JobQueue(maxsize=4)
            a = queue.submit(request(k=2))
            b = queue.submit(request(k=3))
            assert len(queue) == 2
            assert a.id != b.id
            assert await queue.take() is a
            assert await queue.take() is b

        run(scenario())

    def test_backpressure(self):
        async def scenario():
            queue = JobQueue(maxsize=2)
            queue.submit(request(k=2))
            queue.submit(request(k=3))
            with pytest.raises(QueueFullError, match="queue full"):
                queue.submit(request(k=4))
            assert queue.rejected == 1
            # rejected submissions are not registered
            assert queue.submitted == 2

        run(scenario())

    def test_cancelled_jobs_still_returned_by_take(self):
        """A cancelled job is handed to the worker terminal (not
        silently dropped) so the engine can settle its coalesced
        followers."""

        async def scenario():
            queue = JobQueue(maxsize=4)
            a = queue.submit(request(k=2))
            b = queue.submit(request(k=3))
            assert queue.cancel(a.id)
            assert not queue.cancel(a.id)  # already terminal
            assert not queue.cancel("job-999999")  # unknown
            assert await queue.take() is a
            assert a.state == "cancelled"
            assert await queue.take() is b
            assert queue.cancelled == 1

        run(scenario())

    def test_expired_jobs_marked_and_returned_by_take(self):
        async def scenario():
            queue = JobQueue(maxsize=4)
            stale = queue.submit(request(k=2), deadline_s=0.001)
            fresh = queue.submit(request(k=3))
            await asyncio.sleep(0.01)
            assert await queue.take() is stale
            assert stale.state == "expired"
            assert "deadline" in (stale.error or "")
            assert await queue.take() is fresh
            assert queue.expired == 1

        run(scenario())

    def test_terminal_records_evicted_beyond_keep_records(self):
        """The registry is bounded: oldest finished records fall out,
        live jobs are never evicted."""

        async def scenario():
            queue = JobQueue(maxsize=16, keep_records=3)
            live = queue.submit(request(k=2))
            done = []
            for i in range(5):
                job = queue.submit(request(k=3 + i))
                job.transition("running")
                job.transition("done")
                done.append(job)
            # 6 records, bound 3: the 3 oldest *terminal* ones are gone
            assert live.id in queue  # still queued, never evicted
            assert all(job.id not in queue for job in done[:3])
            assert all(job.id in queue for job in done[3:])

        run(scenario())

    def test_keep_records_validated(self):
        with pytest.raises(ValueError, match="keep_records"):
            JobQueue(maxsize=4, keep_records=0)

    def test_states_and_lookup(self):
        async def scenario():
            queue = JobQueue(maxsize=4)
            job = queue.submit(request())
            assert job.id in queue
            assert queue.get(job.id) is job
            assert queue.get("nope") is None
            counts = queue.states()
            assert counts["queued"] == 1
            assert sum(counts.values()) == 1

        run(scenario())

    def test_maxsize_validated(self):
        with pytest.raises(ValueError, match="maxsize"):
            JobQueue(maxsize=0)
