"""Tests for the content-addressed result cache."""

import numpy as np
import pytest

from repro.core.mcml_dt import MCMLDTParams, MCMLDTPartitioner
from repro.partition.config import PartitionOptions
from repro.service.cache import CacheStats, ResultCache, result_cache_key

K = 4


@pytest.fixture(scope="module")
def snapshot(small_sequence):
    return small_sequence[0]


@pytest.fixture(scope="module")
def fitted(snapshot):
    part = MCMLDTPartitioner(
        K, MCMLDTParams(options=PartitionOptions(seed=0))
    )
    return part.fit(snapshot)


class TestResultCacheKey:
    def test_deterministic(self, snapshot):
        a = result_cache_key(snapshot, "mcml-dt", K, {"seed": 0})
        b = result_cache_key(snapshot, "mcml-dt", K, {"seed": 0})
        assert a == b
        assert len(a) == 64  # sha256 hex

    def test_config_and_k_and_method_bound(self, snapshot):
        base = result_cache_key(snapshot, "mcml-dt", K, {"seed": 0})
        assert base != result_cache_key(snapshot, "mcml-dt", K + 1, {"seed": 0})
        assert base != result_cache_key(snapshot, "ml-rcb", K, {"seed": 0})
        assert base != result_cache_key(snapshot, "mcml-dt", K, {"seed": 1})

    def test_snapshot_content_bound(self, small_sequence):
        a = result_cache_key(small_sequence[0], "mcml-dt", K, {})
        b = result_cache_key(small_sequence[5], "mcml-dt", K, {})
        assert a != b

    def test_config_spelling_irrelevant(self, snapshot):
        a = result_cache_key(snapshot, "mcml-dt", K, {"seed": 0, "pad": 0.1})
        b = result_cache_key(snapshot, "mcml-dt", K, {"pad": 0.1, "seed": 0})
        assert a == b


class TestResultCacheMemory:
    def test_miss_then_hit_bit_identical(self, snapshot, fitted):
        cache = ResultCache(capacity=4)
        key = result_cache_key(snapshot, "mcml-dt", K, {})
        assert cache.get(key) is None
        stored = cache.put(key, fitted)
        hit = cache.get(key)
        assert hit is stored
        assert np.array_equal(hit.labels, fitted.labels)
        assert hit.method == fitted.method
        assert hit.k == fitted.k
        assert dict(hit.diagnostics).keys() == dict(fitted.diagnostics).keys()
        assert cache.stats.as_dict() == {
            "hits": 1,
            "misses": 1,
            "puts": 1,
            "evictions": 0,
            "disk_hits": 0,
            "disk_corrupt": 0,
            "disk_write_errors": 0,
        }

    def test_detached_from_source(self, snapshot, fitted):
        """The cached copy shares nothing mutable with the caller's
        result — and its labels are frozen."""
        cache = ResultCache(capacity=4)
        stored = cache.put("k1", fitted)
        assert stored.labels is not fitted.labels
        with pytest.raises(ValueError):
            stored.labels[0] = 99

    def test_lru_eviction(self, fitted):
        cache = ResultCache(capacity=2)
        cache.put("a", fitted)
        cache.put("b", fitted)
        assert cache.get("a") is not None  # refreshes 'a'
        cache.put("c", fitted)  # evicts 'b', the LRU tail
        assert cache.get("b") is None
        assert cache.get("a") is not None
        assert cache.get("c") is not None
        assert cache.stats.evictions == 1
        assert len(cache) == 2


class TestResultCacheDisk:
    def test_survives_process_restart(self, snapshot, fitted, tmp_path):
        disk = str(tmp_path / "cache")
        key = result_cache_key(snapshot, "mcml-dt", K, {})
        first = ResultCache(capacity=4, disk_dir=disk)
        first.put(key, fitted)
        # a fresh cache over the same directory: memory cold, disk warm
        second = ResultCache(capacity=4, disk_dir=disk)
        hit = second.get(key)
        assert hit is not None
        assert np.array_equal(hit.labels, fitted.labels)
        assert second.stats.disk_hits == 1
        # diagnostics round-trip: scalars and arrays both survive
        for name, value in fitted.diagnostics.items():
            if isinstance(value, np.ndarray):
                assert np.array_equal(hit.diagnostics[name], value)
            else:
                assert hit.diagnostics[name] == value

    def test_memory_eviction_backed_by_disk(self, fitted, tmp_path):
        cache = ResultCache(capacity=1, disk_dir=str(tmp_path / "c"))
        cache.put("a", fitted)
        cache.put("b", fitted)  # evicts 'a' from memory
        assert cache.stats.evictions == 1
        hit = cache.get("a")  # promoted back from disk
        assert hit is not None
        assert cache.stats.disk_hits == 1

    def test_corrupt_entry_recomputes_not_crashes(
        self, snapshot, fitted, tmp_path
    ):
        disk = str(tmp_path / "cache")
        key = result_cache_key(snapshot, "mcml-dt", K, {})
        cache = ResultCache(capacity=4, disk_dir=disk)
        cache.put(key, fitted)
        cache.clear()  # force the next get through the disk tier
        path = tmp_path / "cache" / f"{key}.npz"
        path.write_bytes(b"this is not an npz archive")
        assert cache.get(key) is None  # a miss, not an exception
        assert cache.stats.disk_corrupt == 1
        assert not path.exists()  # the bad entry was removed
        # and the slot is usable again
        cache.put(key, fitted)
        cache.clear()
        assert cache.get(key) is not None

    def test_disk_write_failure_keeps_memory_entry(
        self, fitted, tmp_path, monkeypatch
    ):
        """A failed disk-tier write (disk full, read-only) is counted
        but does not fail the put — the in-memory result stays valid."""
        cache = ResultCache(capacity=4, disk_dir=str(tmp_path / "c"))

        def broken_write(key, entry):
            raise OSError(28, "No space left on device")

        monkeypatch.setattr(cache, "_write_disk", broken_write)
        stored = cache.put("k1", fitted)
        assert np.array_equal(stored.labels, fitted.labels)
        assert cache.stats.disk_write_errors == 1
        assert cache.get("k1") is stored  # memory tier unaffected

    def test_tampered_payload_detected(self, snapshot, fitted, tmp_path):
        """A structurally-valid entry whose labels were altered fails
        the recorded digest and is treated as corrupt."""
        import json

        disk = str(tmp_path / "cache")
        key = result_cache_key(snapshot, "mcml-dt", K, {})
        cache = ResultCache(capacity=4, disk_dir=disk)
        cache.put(key, fitted)
        cache.clear()
        path = tmp_path / "cache" / f"{key}.npz"
        with np.load(path, allow_pickle=False) as data:
            arrays = {name: data[name] for name in data.files}
            meta = json.loads(str(arrays.pop("meta")))
        labels = arrays["labels"].copy()
        labels[0] = (labels[0] + 1) % K
        arrays["labels"] = labels
        np.savez_compressed(
            path, meta=np.array(json.dumps(meta)), **arrays
        )
        assert cache.get(key) is None
        assert cache.stats.disk_corrupt == 1


class TestCacheStats:
    def test_as_dict_is_plain(self):
        stats = CacheStats(hits=3, misses=1)
        out = stats.as_dict()
        assert out["hits"] == 3 and out["misses"] == 1
        assert all(isinstance(v, int) for v in out.values())
