"""Tests for the repro.service-job/1 schemas and validators."""

import pytest

from repro.service.schemas import (
    CONFIG_KEYS,
    JOB_KINDS,
    OPTIONS_KEYS,
    PARTITIONER_NAMES,
    SCHEMA_VERSION,
    ServiceSchemaError,
    canonical_request_text,
    validate_job_record,
    validate_job_request,
    validate_result,
)


def request(**overrides):
    doc = {
        "schema": SCHEMA_VERSION,
        "kind": "partition",
        "k": 4,
        "source": {"kind": "impact", "n_steps": 3},
    }
    doc.update(overrides)
    return doc


class TestJobRequest:
    def test_defaults_filled(self):
        out = validate_job_request(request())
        assert out["partitioner"] == "mcml-dt"
        assert out["config"] == {}
        assert out["steps"] == 1
        assert out["client"] == "anonymous"
        assert out["deadline_s"] is None
        assert out["cache"] is True
        assert out["source"] == {
            "kind": "impact",
            "n_steps": 3,
            "refine": 1.0,
            "snapshot": 0,
        }

    def test_schema_tag_required(self):
        with pytest.raises(ServiceSchemaError, match=r"\$\.schema"):
            validate_job_request(request(schema="repro.service-job/9"))

    def test_non_object_rejected(self):
        with pytest.raises(ServiceSchemaError, match="JSON object"):
            validate_job_request([1, 2, 3])

    def test_unknown_top_level_key(self):
        with pytest.raises(ServiceSchemaError, match="unknown keys"):
            validate_job_request(request(surprise=1))

    def test_kind_and_k_checked(self):
        with pytest.raises(ServiceSchemaError, match=r"\$\.kind"):
            validate_job_request(request(kind="laplace"))
        with pytest.raises(ServiceSchemaError, match=r"\$\.k"):
            validate_job_request(request(k=0))
        with pytest.raises(ServiceSchemaError, match=r"\$\.k"):
            validate_job_request(request(k=True))

    @pytest.mark.parametrize("name", PARTITIONER_NAMES)
    def test_config_whitelist_accepts_known_keys(self, name):
        config = {key: 1 for key in CONFIG_KEYS[name][:2]}
        out = validate_job_request(
            request(partitioner=name, config=config)
        )
        assert out["config"] == config

    def test_config_rejects_foreign_knob(self):
        # a valid mcml-dt knob is not a valid ml-rcb knob
        with pytest.raises(ServiceSchemaError, match="max_p"):
            validate_job_request(
                request(partitioner="ml-rcb", config={"max_p": 3})
            )

    def test_config_rejects_non_scalars(self):
        with pytest.raises(ServiceSchemaError, match="scalar"):
            validate_job_request(request(config={"seed": [1, 2]}))

    def test_options_keys_shared_by_all_methods(self):
        for name in PARTITIONER_NAMES:
            for key in OPTIONS_KEYS:
                assert key in CONFIG_KEYS[name]

    def test_impact_source_bounds(self):
        with pytest.raises(ServiceSchemaError, match=r"\$\.source\.n_steps"):
            validate_job_request(
                request(source={"kind": "impact", "n_steps": 0})
            )
        with pytest.raises(ServiceSchemaError, match=r"\$\.source\.refine"):
            validate_job_request(
                request(source={"kind": "impact", "refine": 0})
            )
        with pytest.raises(
            ServiceSchemaError, match=r"\$\.source\.snapshot"
        ):
            validate_job_request(
                request(
                    source={"kind": "impact", "n_steps": 3, "snapshot": 3}
                )
            )

    def test_mesh_source(self):
        out = validate_job_request(
            request(source={"kind": "mesh", "path": "scene.npz"})
        )
        assert out["source"] == {
            "kind": "mesh",
            "path": "scene.npz",
            "capture_radius": 3.0,
        }
        with pytest.raises(ServiceSchemaError, match=r"\$\.source\.path"):
            validate_job_request(request(source={"kind": "mesh"}))

    def test_contact_step_requires_mcml(self):
        with pytest.raises(ServiceSchemaError, match="mcml-dt"):
            validate_job_request(
                request(kind="contact-step", partitioner="ml-rcb")
            )

    def test_contact_step_steps_bounded_by_source(self):
        with pytest.raises(ServiceSchemaError, match=r"\$\.steps"):
            validate_job_request(request(kind="contact-step", steps=5))
        out = validate_job_request(request(kind="contact-step", steps=3))
        assert out["steps"] == 3

    def test_deadline_and_cache_checked(self):
        with pytest.raises(ServiceSchemaError, match=r"\$\.deadline_s"):
            validate_job_request(request(deadline_s=0))
        with pytest.raises(ServiceSchemaError, match=r"\$\.cache"):
            validate_job_request(request(cache="yes"))
        out = validate_job_request(request(deadline_s=2.5, cache=False))
        assert out["deadline_s"] == 2.5
        assert out["cache"] is False


class TestCanonicalRequestText:
    def test_policy_fields_stripped(self):
        a = validate_job_request(request(client="alice", deadline_s=1.0))
        b = validate_job_request(
            request(client="bob", deadline_s=9.0, cache=False)
        )
        assert canonical_request_text(a) == canonical_request_text(b)

    def test_work_fields_distinguish(self):
        a = validate_job_request(request(k=4))
        b = validate_job_request(request(k=5))
        assert canonical_request_text(a) != canonical_request_text(b)

    def test_spelling_invariant(self):
        # explicit defaults and omitted defaults canonicalise equal
        a = validate_job_request(request())
        b = validate_job_request(
            request(
                partitioner="mcml-dt",
                config={},
                steps=1,
                source={
                    "kind": "impact",
                    "n_steps": 3,
                    "refine": 1.0,
                    "snapshot": 0,
                },
            )
        )
        assert canonical_request_text(a) == canonical_request_text(b)


def record(**overrides):
    doc = {
        "schema": SCHEMA_VERSION,
        "id": "job-000001",
        "state": "done",
        "kind": "partition",
        "client": "anonymous",
        "cache": "miss",
        "coalesced": False,
        "retries": 0,
        "error": None,
        "submitted_s": 1.0,
        "started_s": 1.1,
        "finished_s": 1.5,
        "request": validate_job_request(request()),
    }
    doc.update(overrides)
    return doc


class TestJobRecord:
    def test_valid_record_passes(self):
        assert validate_job_record(record())["id"] == "job-000001"

    def test_state_and_cache_vocabulary(self):
        with pytest.raises(ServiceSchemaError, match=r"\$\.state"):
            validate_job_record(record(state="sleeping"))
        with pytest.raises(ServiceSchemaError, match=r"\$\.cache"):
            validate_job_record(record(cache="warm"))
        assert validate_job_record(record(cache=None))

    def test_embedded_request_validated(self):
        bad = record()
        bad["request"] = {"schema": SCHEMA_VERSION}
        with pytest.raises(ServiceSchemaError, match=r"\$\.kind"):
            validate_job_record(bad)

    def test_retries_and_timestamps(self):
        with pytest.raises(ServiceSchemaError, match=r"\$\.retries"):
            validate_job_record(record(retries=-1))
        assert validate_job_record(
            record(started_s=None, finished_s=None, state="queued")
        )


class TestResult:
    def partition_result(self, **overrides):
        doc = {
            "schema": SCHEMA_VERSION,
            "id": "job-000001",
            "kind": "partition",
            "method": "mcml-dt",
            "k": 4,
            "cache": "miss",
            "content_key": "ab" * 32,
            "labels": [0, 1, 2, 3],
            "diagnostics": {
                "edge_cut_final": 12,
                "imbalance_final": [1.0, 1.02],
                "note": None,
            },
        }
        doc.update(overrides)
        return doc

    def test_partition_result_passes(self):
        assert validate_result(self.partition_result())

    def test_labels_must_be_ints(self):
        with pytest.raises(ServiceSchemaError, match=r"\$\.labels\[1\]"):
            validate_result(self.partition_result(labels=[0, "x"]))

    def test_diagnostics_scalar_or_number_array(self):
        with pytest.raises(ServiceSchemaError, match="diagnostics"):
            validate_result(
                self.partition_result(diagnostics={"bad": {"deep": 1}})
            )

    def test_contact_step_result(self):
        doc = {
            "schema": SCHEMA_VERSION,
            "id": "job-000002",
            "kind": "contact-step",
            "k": 4,
            "steps": 3,
            "n_candidates": 17,
            "labels_digest": "cd" * 32,
            "comm": {
                "fe-halo": {"n_messages": 4, "n_items": 120},
            },
        }
        assert validate_result(doc)
        doc["comm"]["fe-halo"] = {"n_messages": 4}
        with pytest.raises(ServiceSchemaError, match="n_items"):
            validate_result(doc)

    def test_kind_vocabulary_closed(self):
        assert set(JOB_KINDS) == {"partition", "contact-step"}
