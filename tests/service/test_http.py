"""End-to-end service tests over a real ephemeral-port HTTP server.

Each test class boots a :class:`ServerThread` (its own engine + event
loop + TCP port) and talks to it through :class:`ServiceClient` — the
full submit → poll → fetch path over actual sockets.
"""

import pytest

from repro.obs.schema import validate_report
from repro.service.client import ServiceClient, ServiceError
from repro.service.engine import EngineConfig
from repro.service.http import ServerThread
from repro.service.queue import RetryPolicy

SOURCE = {"kind": "impact", "n_steps": 2, "refine": 0.5}


@pytest.fixture(scope="module")
def server():
    with ServerThread(EngineConfig(workers=2)) as srv:
        yield srv


@pytest.fixture(scope="module")
def client(server):
    return ServiceClient(server.address)


class TestLifecycle:
    def test_health(self, client):
        body = client.health()
        assert body["status"] == "ok"
        assert set(body["jobs"]) == {
            "queued", "running", "done", "failed", "cancelled", "expired"
        }

    def test_submit_poll_fetch(self, server, client):
        record = client.submit("partition", 4, SOURCE)
        assert record["state"] in ("queued", "running")
        # long-poll until terminal, then fetch the result
        record = client.status(record["id"], wait_s=120)
        assert record["state"] == "done"
        result = client.result(record["id"])
        assert result["kind"] == "partition"
        assert result["method"] == "mcml-dt"
        assert result["k"] == 4
        assert len(result["labels"]) > 0
        assert len(result["content_key"]) == 64

    def test_cached_repeat_is_bit_identical_without_refitting(
        self, server, client
    ):
        cold = client.partition(8, SOURCE, wait_s=120)
        fits_after_cold = server.engine.fits_total
        warm = client.partition(8, SOURCE, wait_s=120)
        assert server.engine.fits_total == fits_after_cold
        assert warm["cache"] == "hit"
        assert warm["labels"] == cold["labels"]
        assert warm["content_key"] == cold["content_key"]
        assert warm["diagnostics"] == cold["diagnostics"]

    def test_result_before_done_conflicts(self, client):
        record = client.submit(
            "partition", 3, {"kind": "impact", "n_steps": 2, "refine": 0.7}
        )
        try:
            client.result(record["id"])  # no wait: likely still running
        except ServiceError as exc:
            assert exc.status == 409
            assert exc.body["job"]["id"] == record["id"]
        else:  # tiny scene may already be done — the 200 path is fine
            pass
        # drain so the module-scoped server ends quiet
        client.status(record["id"], wait_s=120)

    def test_cancel(self, client):
        record = client.submit(
            "partition", 5, {"kind": "impact", "n_steps": 2, "refine": 0.8}
        )
        client.cancel(record["id"])  # may lose the race with the worker
        final = client.status(record["id"], wait_s=120)
        assert final["state"] in ("cancelled", "done")

    def test_unknown_job_404(self, client):
        with pytest.raises(ServiceError) as info:
            client.status("job-424242")
        assert info.value.status == 404

    def test_schema_error_400_with_path(self, client):
        with pytest.raises(ServiceError) as info:
            client.submit_document(
                {"schema": "repro.service-job/1", "kind": "partition"}
            )
        assert info.value.status == 400
        assert info.value.body["path"] == "$.k"

    def test_malformed_body_400(self, client):
        with pytest.raises(ServiceError) as info:
            client.request("POST", "/v1/jobs", body=None)
        assert info.value.status == 400

    def test_unroutable_404(self, client):
        with pytest.raises(ServiceError) as info:
            client.request("GET", "/v2/everything")
        assert info.value.status == 404


class TestObservability:
    def test_metrics_exposition(self, server, client):
        client.partition(4, SOURCE, wait_s=120)
        metrics = client.metrics()
        assert metrics["repro_service_fits_total"] >= 1
        assert metrics["repro_service_cache_puts"] >= 1
        assert 'repro_service_jobs{state="done"}' in metrics
        # raw text is Prometheus-shaped: TYPE comments precede samples
        text = client.request("GET", "/metrics")
        assert "# TYPE repro_service_fits_total counter" in text

    def test_report_is_schema_valid(self, server, client):
        client.partition(4, SOURCE, wait_s=120)
        document = client.report()
        validate_report(document)  # raises on violation
        assert document["meta"]["fits_total"] >= 1
        assert document["meta"]["service_schema"] == "repro.service-job/1"


class TestClientTimeouts:
    def test_long_poll_widens_the_socket_timeout(self, monkeypatch):
        """Regression: ``wait_s`` beyond the connection default must
        not trip ``socket.timeout`` mid-poll — the per-request timeout
        is derived from the wait budget."""
        client = ServiceClient("127.0.0.1:1", timeout_s=60.0)
        seen = {}

        def capture(method, path, body=None, timeout_s=None):
            seen[path] = timeout_s
            raise ServiceError(404, {"error": "capture only"})

        monkeypatch.setattr(client, "request", capture)
        for call in (client.status, client.result):
            seen.clear()
            with pytest.raises(ServiceError):
                call("job-000000", wait_s=300.0)
            (timeout,) = seen.values()
            assert timeout >= 300.0  # outlives the server-side hold
            seen.clear()
            with pytest.raises(ServiceError):
                call("job-000000")  # no wait: the connection default
            (timeout,) = seen.values()
            assert timeout is None
        # short waits never shrink below the connection default
        assert client._poll_timeout(1.0) == 60.0
        assert client._poll_timeout(None) is None
        assert client._poll_timeout(300.0) == 310.0


class TestRateLimiting:
    def test_429_with_retry_after(self):
        config = EngineConfig(
            workers=1, rate_per_s=0.001, rate_burst=1
        )
        with ServerThread(config) as srv:
            client = ServiceClient(srv.address)
            client.submit("partition", 2, SOURCE, client="alice")
            with pytest.raises(ServiceError) as info:
                client.submit("partition", 3, SOURCE, client="alice")
            assert info.value.status == 429
            assert info.value.body["retry_after_s"] > 0
            # an unrelated client key is not throttled
            client.submit("partition", 3, SOURCE, client="bob")
            assert srv.engine.rate_limited_total == 1


class TestDeadlines:
    def test_expired_job_record_over_http(self):
        """A job with an impossible deadline surfaces as 'expired' in
        the polled record, retries intact."""
        config = EngineConfig(
            workers=1, retry=RetryPolicy(max_retries=2)
        )
        with ServerThread(config) as srv:
            client = ServiceClient(srv.address)
            # occupy the single worker with a slower job so the
            # deadlined one sits in the queue past its budget
            blocker = client.submit(
                "partition", 4, {"kind": "impact", "n_steps": 3, "refine": 0.9}
            )
            record = client.submit(
                "partition", 2, SOURCE, deadline_s=0.001
            )
            final = client.status(record["id"], wait_s=120)
            assert final["state"] == "expired"
            assert "deadline" in final["error"]
            assert final["retries"] == 0
            with pytest.raises(ServiceError) as info:
                client.result(record["id"])
            assert info.value.status == 409
            client.status(blocker["id"], wait_s=120)  # drain


class TestCoalescingOverHttp:
    def test_concurrent_identical_submissions_fit_once(self):
        """Submissions racing over real sockets coalesce: one fit, the
        rest marked 'coalesced'."""
        import concurrent.futures

        with ServerThread(EngineConfig(workers=4)) as srv:
            client = ServiceClient(srv.address)
            source = {"kind": "impact", "n_steps": 2, "refine": 0.6}

            def submit_and_wait(_):
                record = client.submit("partition", 6, source)
                return client.result(record["id"], wait_s=120)

            with concurrent.futures.ThreadPoolExecutor(8) as pool:
                results = list(pool.map(submit_and_wait, range(8)))

            # the acceptance property: exactly one fit for 8 requests
            assert srv.engine.fits_total == 1
            states = [r["cache"] for r in results]
            assert states.count("miss") == 1
            # the rest coalesced (or, if they lost the race and arrived
            # after the leader finished, hit the cache — never refit)
            assert all(s in ("coalesced", "hit") for s in states if s != "miss")
            assert srv.engine.coalesced_total >= 1
            baseline = results[0]["labels"]
            assert all(r["labels"] == baseline for r in results)
