"""Regressions for the blocking-call fixes the service lint forced.

``repro-lint --service`` (ASYNC001) flagged two genuine loop stalls:
``/v1/report`` built the run report while holding the engine's
execution lock on the event loop, and ``ServiceEngine.stop`` closed
the pooled backend (and took ``_backend_lock``) from a coroutine.
Both now hop through ``run_in_executor`` — these tests pin the hop.
"""

import asyncio
import threading

from repro.service.engine import EngineConfig, ServiceEngine
from repro.service.http import ServerThread
from repro.service.schemas import SCHEMA_VERSION
from repro.service.client import ServiceClient

SOURCE = {"kind": "impact", "n_steps": 2, "refine": 0.5}


def request(**overrides):
    doc = {
        "schema": SCHEMA_VERSION,
        "kind": "partition",
        "k": 4,
        "source": dict(SOURCE),
    }
    doc.update(overrides)
    return doc


class TestReportOffLoop:
    def test_v1_report_runs_off_the_event_loop_thread(self):
        with ServerThread(EngineConfig(workers=1)) as srv:
            client = ServiceClient(srv.address)
            client.partition(4, SOURCE, wait_s=120)

            seen = {}
            engine = srv.engine
            original = engine.run_report

            def spy():
                seen["thread"] = threading.get_ident()
                return original()

            engine.run_report = spy
            try:
                document = client.report()
            finally:
                engine.run_report = original

        assert document["meta"]["fits_total"] >= 1
        assert seen["thread"] != srv._thread.ident


class TestBackendCloseOffLoop:
    def test_stop_detaches_and_closes_backend_off_loop(self):
        seen = {}

        async def scenario():
            engine = ServiceEngine(EngineConfig(workers=1))
            await engine.start()
            # contact-step jobs are the ones that materialise the
            # pooled backend
            job = await engine.wait(
                engine.submit(request(kind="contact-step", steps=1)).id,
                120,
            )
            assert job.state == "done"
            assert engine._backend is not None  # pool materialised

            original = engine._close_backend

            def spy():
                seen["thread"] = threading.get_ident()
                original()

            engine._close_backend = spy
            loop_thread = threading.get_ident()
            await engine.stop()
            return loop_thread, engine

        loop_thread, engine = asyncio.run(scenario())
        assert engine._backend is None  # detached and closed
        assert seen["thread"] != loop_thread

    def test_stop_without_backend_is_a_no_op(self):
        async def scenario():
            engine = ServiceEngine(EngineConfig(workers=1))
            await engine.start()
            await engine.stop()
            return engine

        engine = asyncio.run(scenario())
        assert engine._backend is None
