"""Tests for the CSRGraph container."""

import numpy as np
import pytest

from repro.graph.build import from_edge_list, grid_graph
from repro.graph.csr import CSRGraph


def triangle(vwgts=None):
    return from_edge_list(3, np.array([[0, 1], [1, 2], [0, 2]]), vwgts=vwgts)


class TestBasics:
    def test_counts(self):
        g = triangle()
        assert g.num_vertices == 3
        assert g.num_edges == 3
        assert g.ncon == 1

    def test_degrees(self):
        g = triangle()
        assert g.degrees().tolist() == [2, 2, 2]
        assert g.degree(0) == 2

    def test_neighbors_sorted_structure(self):
        g = triangle()
        assert sorted(g.neighbors(0).tolist()) == [1, 2]

    def test_total_vwgt(self):
        vw = np.array([[1, 0], [2, 1], [3, 0]])
        g = triangle(vwgts=vw)
        assert g.total_vwgt.tolist() == [6, 1]

    def test_1d_vwgts_promoted(self):
        g = CSRGraph(
            np.array([0, 1, 2]),
            np.array([1, 0]),
            np.array([1, 1]),
            np.array([5, 7]),
        )
        assert g.vwgts.shape == (2, 1)

    def test_edge_array_matches_iter_edges(self):
        g = grid_graph(4, 3)
        from_iter = sorted(g.iter_edges())
        from_arr = sorted(map(tuple, g.edge_array().tolist()))
        assert from_iter == from_arr

    def test_edge_weights_of_aligned(self):
        g = triangle()
        nbrs = g.neighbors(1)
        wts = g.edge_weights_of(1)
        assert len(nbrs) == len(wts)


class TestValidate:
    def test_valid_graph_passes(self):
        grid_graph(5, 5).validate()

    def test_self_loop_detected(self):
        g = triangle()
        bad = g.copy()
        bad.adjncy[0] = 0  # vertex 0's first neighbour becomes itself
        with pytest.raises(ValueError, match="self-loop"):
            bad.validate()

    def test_asymmetry_detected(self):
        g = triangle()
        bad = g.copy()
        # point one directed edge somewhere else
        bad.adjncy[0] = 2 if bad.adjncy[0] == 1 else 1
        with pytest.raises(ValueError):
            bad.validate()

    def test_vwgts_length_mismatch(self):
        g = triangle()
        bad = CSRGraph(g.xadj, g.adjncy, g.adjwgt, np.ones((2, 1)))
        with pytest.raises(ValueError, match="vwgts"):
            bad.validate()

    def test_out_of_range_neighbor(self):
        g = triangle()
        bad = g.copy()
        bad.adjncy[0] = 99
        with pytest.raises(ValueError, match="out-of-range"):
            bad.validate()

    def test_weight_asymmetry_detected(self):
        g = triangle()
        bad = g.copy()
        bad.adjwgt[0] = 42  # one direction re-weighted
        with pytest.raises(ValueError, match="not symmetric"):
            bad.validate()


class TestDerivedGraphs:
    def test_with_vwgts_shares_structure(self):
        g = triangle()
        g2 = g.with_vwgts(np.ones((3, 2)))
        assert g2.ncon == 2
        assert g2.xadj is g.xadj

    def test_with_adjwgt_validates_length(self):
        g = triangle()
        with pytest.raises(ValueError, match="length"):
            g.with_adjwgt(np.ones(1))

    def test_copy_is_deep(self):
        g = triangle()
        c = g.copy()
        c.adjwgt[:] = 9
        assert g.adjwgt.max() == 1
