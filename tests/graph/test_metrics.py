"""Tests for partition-quality metrics against hand-computed and
brute-force references."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.build import from_edge_list, grid_graph
from repro.graph.metrics import (
    boundary_vertices,
    edge_cut,
    load_imbalance,
    max_load_imbalance,
    partition_weights,
    total_comm_volume,
)


def brute_force_volume(graph, part):
    total = 0
    for v in range(graph.num_vertices):
        remote = {int(part[u]) for u in graph.neighbors(v)} - {int(part[v])}
        total += len(remote)
    return total


class TestEdgeCut:
    def test_grid_straight_cut(self):
        g = grid_graph(4, 4)
        part = (np.arange(16) // 4 >= 2).astype(int)  # cut between rows
        assert edge_cut(g, part) == 4

    def test_weighted(self):
        g = from_edge_list(
            3, np.array([[0, 1], [1, 2]]), weights=np.array([5, 7])
        )
        assert edge_cut(g, np.array([0, 0, 1])) == 7
        assert edge_cut(g, np.array([0, 1, 1])) == 5
        assert edge_cut(g, np.array([0, 1, 0])) == 12

    def test_uncut(self):
        g = grid_graph(3, 3)
        assert edge_cut(g, np.zeros(9, dtype=int)) == 0


class TestCommVolume:
    def test_hand_example(self):
        # star: centre 0 with 3 leaves in 3 different partitions
        g = from_edge_list(4, np.array([[0, 1], [0, 2], [0, 3]]))
        part = np.array([0, 1, 1, 2])
        # centre sees partitions {1,2} -> 2; each leaf sees {0} -> 1
        assert total_comm_volume(g, part) == 5

    def test_matches_brute_force_on_grid(self):
        g = grid_graph(6, 6)
        rng = np.random.default_rng(3)
        part = rng.integers(0, 4, 36)
        assert total_comm_volume(g, part) == brute_force_volume(g, part)

    @given(st.integers(0, 10**6))
    @settings(max_examples=30, deadline=None)
    def test_property_matches_brute_force(self, seed):
        rng = np.random.default_rng(seed)
        edges = rng.integers(0, 20, size=(30, 2))
        g = from_edge_list(20, edges)
        part = rng.integers(0, 5, 20)
        assert total_comm_volume(g, part) == brute_force_volume(g, part)

    def test_volume_at_most_cut(self):
        """Each cut edge contributes at most 2 volume; volume <= 2*cut
        for unit weights, and >= something positive when cut > 0."""
        g = grid_graph(8, 8)
        rng = np.random.default_rng(0)
        part = rng.integers(0, 3, 64)
        vol = total_comm_volume(g, part)
        cut = edge_cut(g, part)
        assert vol <= 2 * cut
        assert (vol > 0) == (cut > 0)


class TestWeightsAndImbalance:
    def test_partition_weights(self):
        g = grid_graph(2, 2).with_vwgts(np.array([[1, 0], [2, 1], [3, 0], [4, 1]]))
        pw = partition_weights(g, np.array([0, 0, 1, 1]), 2)
        assert pw.tolist() == [[3, 1], [7, 1]]

    def test_perfect_balance(self):
        g = grid_graph(4, 4)
        part = np.arange(16) % 4
        assert np.allclose(load_imbalance(g, part, 4), 1.0)

    def test_imbalanced(self):
        g = grid_graph(4, 1)
        part = np.array([0, 0, 0, 1])
        imb = load_imbalance(g, part, 2)
        assert np.isclose(imb[0], 3 / 2)

    def test_zero_total_constraint_reports_one(self):
        vw = np.zeros((4, 2), dtype=int)
        vw[:, 0] = 1
        g = grid_graph(4, 1).with_vwgts(vw)
        imb = load_imbalance(g, np.array([0, 0, 1, 1]), 2)
        assert imb[1] == 1.0

    def test_max_load_imbalance(self):
        vw = np.ones((4, 2), dtype=int)
        vw[0, 1] = 10
        g = grid_graph(4, 1).with_vwgts(vw)
        part = np.array([0, 0, 1, 1])
        assert max_load_imbalance(g, part, 2) == pytest.approx(
            load_imbalance(g, part, 2).max()
        )


class TestBoundary:
    def test_straight_cut_boundary(self):
        g = grid_graph(4, 4)
        part = (np.arange(16) % 4 >= 2).astype(int)
        bnd = boundary_vertices(g, part)
        # columns 1 and 2 form the boundary
        assert sorted(bnd.tolist()) == [
            i for i in range(16) if i % 4 in (1, 2)
        ]

    def test_no_boundary_when_uncut(self):
        g = grid_graph(3, 3)
        assert len(boundary_vertices(g, np.zeros(9, dtype=int))) == 0
