"""Tests for graph contraction, subgraphs, components."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import networkx as nx

from repro.graph.build import from_edge_list, grid_graph, to_networkx
from repro.graph.ops import (
    connected_components,
    contract,
    induced_subgraph,
    largest_component,
)


class TestContract:
    def test_pair_merge(self):
        # path 0-1-2-3; merge (0,1) and (2,3)
        g = from_edge_list(4, np.array([[0, 1], [1, 2], [2, 3]]))
        cg = contract(g, np.array([0, 0, 1, 1]), 2)
        cg.validate()
        assert cg.num_vertices == 2
        assert cg.num_edges == 1
        assert cg.vwgts[:, 0].tolist() == [2, 2]

    def test_parallel_edges_sum(self):
        # square 0-1-2-3-0; merge (0,1) and (2,3): two parallel coarse
        # edges collapse into weight 2
        g = from_edge_list(4, np.array([[0, 1], [1, 2], [2, 3], [3, 0]]))
        cg = contract(g, np.array([0, 0, 1, 1]), 2)
        assert cg.num_edges == 1
        assert cg.adjwgt.max() == 2

    def test_total_weight_conserved(self):
        g = grid_graph(6, 6)
        cmap = np.arange(36) // 3
        cg = contract(g, cmap, 12)
        assert cg.total_vwgt.tolist() == g.total_vwgt.tolist()

    def test_multi_constraint_weights_summed(self):
        vw = np.array([[1, 0], [1, 1], [1, 1]])
        g = from_edge_list(3, np.array([[0, 1], [1, 2]]), vwgts=vw)
        cg = contract(g, np.array([0, 0, 1]), 2)
        assert cg.vwgts.tolist() == [[2, 1], [1, 1]]

    def test_everything_into_one(self):
        g = grid_graph(4, 4)
        cg = contract(g, np.zeros(16, dtype=int), 1)
        assert cg.num_vertices == 1
        assert cg.num_edges == 0

    def test_bad_cmap_length(self):
        g = grid_graph(2, 2)
        with pytest.raises(ValueError, match="cmap length"):
            contract(g, np.zeros(3, dtype=int), 1)

    def test_bad_cmap_range(self):
        g = grid_graph(2, 2)
        with pytest.raises(ValueError, match="out of range"):
            contract(g, np.array([0, 1, 2, 5]), 3)

    @given(st.integers(0, 10**6))
    @settings(max_examples=25, deadline=None)
    def test_property_cut_preserved_under_contraction(self, seed):
        """Contracting within partition sides preserves the cut weight
        between the sides."""
        rng = np.random.default_rng(seed)
        g = grid_graph(5, 5)
        side = rng.integers(0, 2, 25)
        # random contraction that never merges across sides
        sub_id = rng.integers(0, 3, 25)
        cmap_raw = side * 3 + sub_id
        _, inverse = np.unique(cmap_raw, return_inverse=True)
        n_coarse = inverse.max() + 1
        cg = contract(g, inverse, n_coarse)
        cg.validate()
        coarse_side = np.zeros(n_coarse, dtype=int)
        coarse_side[inverse] = side
        from repro.graph.metrics import edge_cut

        assert edge_cut(cg, coarse_side) == edge_cut(g, side)


class TestInducedSubgraph:
    def test_grid_quadrant(self):
        g = grid_graph(4, 4)
        verts = np.array([0, 1, 4, 5])  # a 2x2 corner
        sub, ids = induced_subgraph(g, verts)
        sub.validate()
        assert sub.num_vertices == 4
        assert sub.num_edges == 4
        assert np.array_equal(ids, verts)

    def test_vertex_weights_carried(self):
        vw = np.arange(16).reshape(16, 1)
        g = grid_graph(4, 4).with_vwgts(vw)
        sub, _ = induced_subgraph(g, np.array([3, 7]))
        assert sub.vwgts[:, 0].tolist() == [3, 7]

    def test_empty_selection(self):
        g = grid_graph(3, 3)
        sub, _ = induced_subgraph(g, np.array([], dtype=np.int64))
        assert sub.num_vertices == 0

    def test_matches_networkx(self):
        g = grid_graph(5, 4)
        verts = np.array([0, 1, 2, 5, 6, 10, 11, 15])
        sub, _ = induced_subgraph(g, verts)
        nxg = to_networkx(g).subgraph(verts.tolist())
        assert sub.num_edges == nxg.number_of_edges()


class TestComponents:
    def test_two_components(self):
        g = from_edge_list(5, np.array([[0, 1], [2, 3]]))
        comp = connected_components(g)
        assert comp[0] == comp[1]
        assert comp[2] == comp[3]
        assert comp[0] != comp[2]
        assert len(np.unique(comp)) == 3  # vertex 4 isolated

    def test_connected_grid(self):
        comp = connected_components(grid_graph(6, 6))
        assert (comp == 0).all()

    def test_matches_networkx(self):
        rng = np.random.default_rng(0)
        edges = rng.integers(0, 30, size=(25, 2))
        g = from_edge_list(30, edges)
        comp = connected_components(g)
        nxg = to_networkx(g)
        for cc in nx.connected_components(nxg):
            labels = {comp[v] for v in cc}
            assert len(labels) == 1

    def test_largest_component(self):
        g = from_edge_list(6, np.array([[0, 1], [1, 2], [4, 5]]))
        sub, ids = largest_component(g)
        assert sub.num_vertices == 3
        assert sorted(ids.tolist()) == [0, 1, 2]
