"""Tests for METIS graph-file interoperability."""

import numpy as np
import pytest

from repro.graph.build import from_edge_list, grid_graph
from repro.graph.io import (
    read_metis_graph,
    read_metis_partition,
    write_metis_graph,
    write_metis_partition,
)


class TestGraphRoundtrip:
    def test_plain_graph(self, tmp_path):
        g = grid_graph(5, 4)
        path = tmp_path / "g.graph"
        write_metis_graph(path, g)
        loaded = read_metis_graph(path)
        assert loaded.num_vertices == g.num_vertices
        assert loaded.num_edges == g.num_edges
        for v in range(g.num_vertices):
            assert sorted(loaded.neighbors(v)) == sorted(
                g.neighbors(v).tolist()
            )

    def test_edge_weights(self, tmp_path):
        g = from_edge_list(
            3, np.array([[0, 1], [1, 2]]), weights=np.array([5, 7])
        )
        path = tmp_path / "w.graph"
        write_metis_graph(path, g)
        loaded = read_metis_graph(path)
        i = list(loaded.neighbors(1)).index(2)
        assert loaded.edge_weights_of(1)[i] == 7

    def test_multi_constraint_weights(self, tmp_path):
        g = grid_graph(3, 3)
        vw = np.column_stack(
            (np.arange(1, 10), (np.arange(9) % 2) + 1)
        ).astype(np.int64)
        g = g.with_vwgts(vw)
        path = tmp_path / "mc.graph"
        write_metis_graph(path, g)
        loaded = read_metis_graph(path)
        assert loaded.ncon == 2
        assert np.array_equal(loaded.vwgts, vw)

    def test_contact_graph_roundtrip(self, small_sequence, tmp_path):
        """The paper's §4.2 graph survives the METIS format — meaning a
        user could hand it to real METIS for comparison."""
        from repro.core.weights import build_contact_graph

        g = build_contact_graph(small_sequence[0])
        path = tmp_path / "contact.graph"
        write_metis_graph(path, g)
        loaded = read_metis_graph(path)
        assert np.array_equal(loaded.vwgts, g.vwgts)
        assert loaded.num_edges == g.num_edges


class TestHeaderHandling:
    def test_comments_skipped(self, tmp_path):
        path = tmp_path / "c.graph"
        path.write_text("% a comment\n2 1\n2\n1\n")
        g = read_metis_graph(path)
        assert g.num_vertices == 2
        assert g.num_edges == 1

    def test_vertex_sizes_rejected(self, tmp_path):
        path = tmp_path / "s.graph"
        path.write_text("2 1 100\n1 2\n1 1\n")
        with pytest.raises(ValueError, match="vertex sizes"):
            read_metis_graph(path)

    def test_edge_count_mismatch(self, tmp_path):
        path = tmp_path / "bad.graph"
        path.write_text("2 5\n2\n1\n")
        with pytest.raises(ValueError, match="half-edges"):
            read_metis_graph(path)

    def test_out_of_range_neighbor(self, tmp_path):
        path = tmp_path / "oor.graph"
        path.write_text("2 1\n9\n1\n")
        with pytest.raises(ValueError, match="out of range"):
            read_metis_graph(path)

    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.graph"
        path.write_text("")
        with pytest.raises(ValueError, match="empty"):
            read_metis_graph(path)

    def test_wrong_line_count(self, tmp_path):
        path = tmp_path / "short.graph"
        path.write_text("3 1\n2\n1\n")
        with pytest.raises(ValueError, match="vertex lines"):
            read_metis_graph(path)


class TestPartitionFile:
    def test_roundtrip(self, tmp_path):
        part = np.array([0, 2, 1, 1, 0])
        path = tmp_path / "p.part"
        write_metis_partition(path, part)
        assert np.array_equal(read_metis_partition(path), part)
