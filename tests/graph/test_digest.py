"""Canonical content digests (``repro.graph.digest``).

The service cache keys on these digests, so the properties proven here
are load-bearing: value-identical inputs must always collide, and any
change to the numbers (including a vertex relabelling) must not.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import grid_graph
from repro.graph.digest import (
    DIGEST_SCHEME,
    canonical_array,
    digest_arrays,
    digest_graph,
)
from repro.graph.ops import induced_subgraph


def _int_arrays():
    return st.lists(
        st.integers(min_value=-(2**40), max_value=2**40),
        min_size=0,
        max_size=40,
    )


class TestDigestArrays:
    def test_deterministic(self):
        arrays = {"a": np.arange(10), "b": np.linspace(0, 1, 5)}
        assert digest_arrays(arrays) == digest_arrays(arrays)

    def test_scheme_is_versioned(self):
        assert DIGEST_SCHEME == "repro.digest/1"

    @given(values=_int_arrays())
    @settings(max_examples=50, deadline=None)
    def test_dtype_width_invariant(self, values):
        """int32 and int64 carrying the same values digest equal."""
        small = [v for v in values if -(2**31) <= v < 2**31]
        a32 = np.array(small, dtype=np.int32)
        a64 = np.array(small, dtype=np.int64)
        assert digest_arrays({"x": a32}) == digest_arrays({"x": a64})

    @given(values=_int_arrays())
    @settings(max_examples=50, deadline=None)
    def test_endianness_invariant(self, values):
        native = np.array(values, dtype=np.int64)
        swapped = native.astype(">i8")
        assert digest_arrays({"x": native}) == digest_arrays({"x": swapped})

    def test_stride_invariant(self):
        base = np.arange(24, dtype=np.int64)
        view = base[::2]
        copy = view.copy()
        assert view.base is not None and not copy.flags["OWNDATA"] is False
        assert digest_arrays({"x": view}) == digest_arrays({"x": copy})

    def test_name_sensitivity(self):
        arr = np.arange(4)
        assert digest_arrays({"a": arr}) != digest_arrays({"b": arr})

    def test_name_order_irrelevant(self):
        a, b = np.arange(3), np.arange(5)
        assert digest_arrays({"a": a, "b": b}) == digest_arrays(
            {"b": b, "a": a}
        )

    def test_shape_sensitivity(self):
        flat = np.arange(6, dtype=np.int64)
        square = flat.reshape(2, 3)
        assert digest_arrays({"x": flat}) != digest_arrays({"x": square})

    @given(
        values=st.lists(
            st.integers(min_value=-1000, max_value=1000),
            min_size=1,
            max_size=30,
        ),
        index=st.integers(min_value=0, max_value=29),
        delta=st.integers(min_value=1, max_value=7),
    )
    @settings(max_examples=60, deadline=None)
    def test_value_sensitivity(self, values, index, delta):
        """Changing any single element changes the digest."""
        arr = np.array(values, dtype=np.int64)
        mutated = arr.copy()
        mutated[index % len(arr)] += delta
        assert digest_arrays({"x": arr}) != digest_arrays({"x": mutated})

    def test_bool_and_float_kinds(self):
        doc = {
            "flags": np.array([True, False, True]),
            "xs": np.array([0.5, 1.5], dtype=np.float32),
        }
        wide = {
            "flags": np.array([1, 0, 1], dtype=np.uint8),
            "xs": np.array([0.5, 1.5], dtype=np.float64),
        }
        assert digest_arrays(doc) == digest_arrays(wide)

    def test_float_bit_pattern_identity(self):
        # documented: -0.0 and 0.0 are different bit patterns
        assert digest_arrays({"x": np.array([0.0])}) != digest_arrays(
            {"x": np.array([-0.0])}
        )

    def test_rejects_object_dtype(self):
        with pytest.raises(TypeError, match="cannot digest"):
            digest_arrays({"x": np.array(["a", "b"])})

    def test_extra_scalars_bind(self):
        arr = {"x": np.arange(3)}
        one = digest_arrays(arr, extra={"k": 8, "method": "mcml-dt"})
        two = digest_arrays(arr, extra={"method": "mcml-dt", "k": 8})
        other = digest_arrays(arr, extra={"k": 9, "method": "mcml-dt"})
        assert one == two  # key order canonicalised
        assert one != other
        assert one != digest_arrays(arr)

    def test_canonical_array_layout(self):
        out = canonical_array(np.array([[1, 2], [3, 4]], dtype=np.int16))
        assert out.dtype == np.dtype("<i8")
        assert out.flags["C_CONTIGUOUS"]


class TestDigestGraph:
    def test_round_trip_copy(self, grid_16):
        assert digest_graph(grid_16) == digest_graph(grid_16.copy())

    def test_weight_change_detected(self, grid_16):
        reweighted = grid_16.with_vwgts(grid_16.vwgts + 1)
        assert digest_graph(grid_16) != digest_graph(reweighted)

    def test_edge_weight_change_detected(self, grid_16):
        adjwgt = grid_16.adjwgt.copy()
        adjwgt[0] += 1
        # keep symmetry irrelevant here: digest is over raw arrays
        assert digest_graph(grid_16) != digest_graph(
            grid_16.with_adjwgt(adjwgt)
        )

    @given(seed=st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=25, deadline=None)
    def test_permutation_sensitivity(self, seed):
        """Relabelling the vertices of a grid changes the digest
        (a relabelled graph is a different partitioning input)."""
        graph = grid_graph(5, 5)
        rng = np.random.default_rng(seed)
        perm = rng.permutation(graph.num_vertices)
        relabelled, _ = induced_subgraph(graph, perm)
        if np.array_equal(perm, np.arange(graph.num_vertices)):
            assert digest_graph(relabelled) == digest_graph(graph)
        else:
            assert digest_graph(relabelled) != digest_graph(graph)

    def test_io_round_trip(self, tmp_path, grid_16):
        """A graph written to METIS text and reloaded digests
        identically (the digest sees values, not storage)."""
        from repro.graph.io import read_metis_graph, write_metis_graph

        path = tmp_path / "g.graph"
        write_metis_graph(path, grid_16)
        assert digest_graph(read_metis_graph(path)) == digest_graph(grid_16)
