"""Tests for graph construction."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.build import (
    from_edge_list,
    grid_coords,
    grid_graph,
    random_geometric_graph,
    to_networkx,
)


class TestFromEdgeList:
    def test_dedupes_and_sums(self):
        g = from_edge_list(
            3,
            np.array([[0, 1], [1, 0], [1, 2]]),
            weights=np.array([2, 3, 1]),
        )
        assert g.num_edges == 2
        i = list(g.neighbors(0)).index(1)
        assert g.edge_weights_of(0)[i] == 5

    def test_combine_max(self):
        g = from_edge_list(
            2, np.array([[0, 1], [0, 1]]), weights=np.array([2, 7]),
            combine="max",
        )
        assert g.edge_weights_of(0)[0] == 7

    def test_combine_first(self):
        g = from_edge_list(
            2, np.array([[0, 1], [0, 1]]), weights=np.array([2, 7]),
            combine="first",
        )
        assert g.edge_weights_of(0)[0] == 2

    def test_unknown_combine(self):
        with pytest.raises(ValueError, match="combine"):
            from_edge_list(2, np.array([[0, 1]]), combine="median")

    def test_self_loops_dropped(self):
        g = from_edge_list(2, np.array([[0, 0], [0, 1]]))
        assert g.num_edges == 1
        g.validate()

    def test_empty_graph(self):
        g = from_edge_list(4, np.empty((0, 2)))
        assert g.num_vertices == 4
        assert g.num_edges == 0
        g.validate()

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError, match="out of range"):
            from_edge_list(2, np.array([[0, 2]]))

    def test_weight_length_mismatch(self):
        with pytest.raises(ValueError, match="length"):
            from_edge_list(3, np.array([[0, 1]]), weights=np.array([1, 2]))

    @given(
        st.lists(
            st.tuples(st.integers(0, 9), st.integers(0, 9)),
            max_size=60,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_property_always_valid_and_symmetric(self, pairs):
        edges = np.array(pairs, dtype=np.int64).reshape(-1, 2)
        g = from_edge_list(10, edges)
        g.validate()  # includes symmetry check
        # no duplicate neighbours per vertex
        for v in range(10):
            nbrs = g.neighbors(v).tolist()
            assert len(nbrs) == len(set(nbrs))


class TestGridGraph:
    def test_2d_edge_count(self):
        g = grid_graph(4, 5)
        assert g.num_vertices == 20
        assert g.num_edges == 3 * 5 + 4 * 4  # (nx-1)*ny + nx*(ny-1)

    def test_3d_edge_count(self):
        g = grid_graph(3, 3, 3)
        assert g.num_edges == 3 * (2 * 3 * 3)

    def test_single_vertex(self):
        g = grid_graph(1, 1)
        assert g.num_vertices == 1
        assert g.num_edges == 0

    def test_coords_align(self):
        pts = grid_coords(3, 2)
        assert pts.shape == (6, 2)
        g = grid_graph(3, 2)
        # neighbours in the graph are at unit distance
        for u, v, _ in g.iter_edges():
            assert np.isclose(np.linalg.norm(pts[u] - pts[v]), 1.0)

    def test_coords_3d(self):
        assert grid_coords(2, 2, 2).shape == (8, 3)


class TestRandomGeometric:
    def test_edges_respect_radius(self):
        g, pts = random_geometric_graph(80, 0.2, seed=0)
        for u, v, _ in g.iter_edges():
            assert np.linalg.norm(pts[u] - pts[v]) <= 0.2 + 1e-12

    def test_all_close_pairs_connected(self):
        g, pts = random_geometric_graph(60, 0.25, seed=1)
        d2 = ((pts[:, None] - pts[None, :]) ** 2).sum(-1)
        expect = {(i, j) for i in range(60) for j in range(i + 1, 60)
                  if d2[i, j] <= 0.25**2}
        got = {(u, v) for u, v, _ in g.iter_edges()}
        assert got == expect

    def test_deterministic_seed(self):
        g1, p1 = random_geometric_graph(40, 0.3, seed=5)
        g2, p2 = random_geometric_graph(40, 0.3, seed=5)
        assert np.array_equal(p1, p2)
        assert g1.num_edges == g2.num_edges


class TestToNetworkx:
    def test_roundtrip_counts(self):
        g = grid_graph(4, 4)
        nxg = to_networkx(g)
        assert nxg.number_of_nodes() == 16
        assert nxg.number_of_edges() == g.num_edges
