"""Tests for the CLI entry point."""

import json

import pytest

from repro.cli import main
from repro.mesh.generators import merge_meshes, structured_box_mesh
from repro.mesh.io import save_mesh
from repro.obs import RunReport, validate_report


@pytest.fixture(scope="module")
def tiny_mesh_path(tmp_path_factory):
    """A two-body mesh file small enough for fast trace runs."""
    path = tmp_path_factory.mktemp("meshes") / "tiny.npz"
    projectile = structured_box_mesh(
        2, 2, 3, origin=(0.6, 0.6, 1.02), size=(0.4, 0.4, 0.8)
    )
    plate = structured_box_mesh(
        6, 6, 2, origin=(0.0, 0.0, 0.0), size=(1.6, 1.6, 0.6)
    )
    save_mesh(path, merge_meshes([projectile, plate]))
    return str(path)


class TestCli:
    def test_stages(self, capsys):
        assert main(["--steps", "5", "--refine", "0.5", "stages"]) == 0
        out = capsys.readouterr().out
        assert "Simulation stages" in out
        assert "step 0" in out

    def test_table1(self, capsys):
        assert main(
            ["--steps", "3", "--refine", "0.5", "table1", "--k", "2"]
        ) == 0
        out = capsys.readouterr().out
        assert "2-way MCML+DT" in out
        assert "2-way ML+RCB" in out

    def test_ablation_update(self, capsys):
        assert main(
            [
                "--steps", "4", "--refine", "0.5",
                "ablation-update", "--k", "2", "--period", "2",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "descriptor-only" in out
        assert "repartition" in out
        assert "hybrid" in out

    def test_figure1(self, capsys):
        assert main(
            ["--steps", "2", "--refine", "0.5", "figure1", "--k", "2"]
        ) == 0
        out = capsys.readouterr().out
        assert "Figure-1 style" in out
        assert "Decision tree" in out

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main(["--steps", "3"])


class TestTraceCommand:
    def test_trace_mesh_happy_path(self, tiny_mesh_path, capsys):
        assert main(["trace", tiny_mesh_path, "--k", "4"]) == 0
        out = capsys.readouterr().out
        assert "Trace spans" in out
        assert "coarsen" in out
        assert "dtree-induce" in out
        assert "map-transfer" in out

    def test_trace_synthetic_default(self, capsys):
        assert main(
            ["--refine", "0.5", "trace", "--k", "2",
             "--trace-steps", "1", "--no-baseline"]
        ) == 0
        out = capsys.readouterr().out
        assert "Trace spans" in out
        assert "simulate" in out

    def test_trace_json_file_created(self, tiny_mesh_path, tmp_path):
        out_path = tmp_path / "trace.json"
        assert main(
            ["trace", tiny_mesh_path, "--k", "4",
             "--trace-json", str(out_path)]
        ) == 0
        document = json.loads(out_path.read_text())
        validate_report(document)
        report = RunReport.load(out_path)
        assert report.spans.find("mcml-dt/fit/partition/coarsen")
        assert report.spans.find("ml-rcb/map-transfer")
        assert report.meta["k"] == 4

    def test_trace_json_before_subcommand(self, tiny_mesh_path, tmp_path):
        out_path = tmp_path / "trace.json"
        assert main(
            ["--trace-json", str(out_path), "trace", tiny_mesh_path,
             "--k", "4", "--no-baseline"]
        ) == 0
        validate_report(json.loads(out_path.read_text()))

    def test_trace_unreadable_mesh_nonzero_exit(self, tmp_path, capsys):
        missing = tmp_path / "does-not-exist.npz"
        assert main(["trace", str(missing), "--k", "4"]) == 2
        assert "cannot load mesh" in capsys.readouterr().err

    def test_trace_corrupt_mesh_nonzero_exit(self, tmp_path, capsys):
        bad = tmp_path / "corrupt.npz"
        bad.write_bytes(b"not a numpy archive")
        assert main(["trace", str(bad), "--k", "4"]) == 2
        assert "cannot load mesh" in capsys.readouterr().err

    def test_trace_json_on_table1(self, tmp_path, capsys):
        out_path = tmp_path / "t1.json"
        assert main(
            ["--steps", "2", "--refine", "0.5", "table1",
             "--k", "2", "--trace-json", str(out_path)]
        ) == 0
        report = RunReport.load(out_path)
        assert report.spans.find("mcml-dt") is not None
        assert report.spans.find("ml-rcb/map-transfer") is not None
        assert "trace written" in capsys.readouterr().out
