"""Tests for the CLI entry point."""

import pytest

from repro.cli import main


class TestCli:
    def test_stages(self, capsys):
        assert main(["--steps", "5", "--refine", "0.5", "stages"]) == 0
        out = capsys.readouterr().out
        assert "Simulation stages" in out
        assert "step 0" in out

    def test_table1(self, capsys):
        assert main(
            ["--steps", "3", "--refine", "0.5", "table1", "--k", "2"]
        ) == 0
        out = capsys.readouterr().out
        assert "2-way MCML+DT" in out
        assert "2-way ML+RCB" in out

    def test_ablation_update(self, capsys):
        assert main(
            [
                "--steps", "4", "--refine", "0.5",
                "ablation-update", "--k", "2", "--period", "2",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "descriptor-only" in out
        assert "repartition" in out
        assert "hybrid" in out

    def test_figure1(self, capsys):
        assert main(
            ["--steps", "2", "--refine", "0.5", "figure1", "--k", "2"]
        ) == 0
        out = capsys.readouterr().out
        assert "Figure-1 style" in out
        assert "Decision tree" in out

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main(["--steps", "3"])
