"""Tests for the FEComm wrapper."""

import numpy as np

from repro.graph.build import grid_graph
from repro.graph.metrics import total_comm_volume
from repro.metrics.comm import fe_comm


class TestFeComm:
    def test_delegates_to_comm_volume(self):
        g = grid_graph(6, 6)
        rng = np.random.default_rng(0)
        part = rng.integers(0, 3, 36)
        assert fe_comm(g, part) == total_comm_volume(g, part)

    def test_zero_for_single_partition(self):
        g = grid_graph(4, 4)
        assert fe_comm(g, np.zeros(16, dtype=int)) == 0
