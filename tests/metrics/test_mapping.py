"""Tests for M2MComm / UpdComm mapping metrics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics.mapping import (
    m2m_comm,
    optimal_relabel,
    overlap_matrix,
    update_comm,
)


class TestOverlapMatrix:
    def test_basic(self):
        a = np.array([0, 0, 1, 1])
        b = np.array([1, 1, 0, 1])
        m = overlap_matrix(a, b, 2)
        assert m.tolist() == [[0, 2], [1, 1]]

    def test_length_mismatch(self):
        with pytest.raises(ValueError, match="equal length"):
            overlap_matrix(np.array([0]), np.array([0, 1]), 2)


class TestOptimalRelabel:
    def test_identity_when_aligned(self):
        a = np.array([0, 1, 2, 0, 1, 2])
        perm = optimal_relabel(a, a, 3)
        assert perm.tolist() == [0, 1, 2]

    def test_recovers_permutation(self):
        a = np.array([0, 0, 1, 1, 2, 2])
        b = np.array([2, 2, 0, 0, 1, 1])  # b = a relabelled by p: 0->2,1->0,2->1
        perm = optimal_relabel(a, b, 3)
        assert np.array_equal(perm[b], a)


class TestM2MComm:
    def test_zero_when_permuted_copy(self):
        a = np.array([0, 1, 2, 0, 1, 2])
        b = (a + 1) % 3
        assert m2m_comm(a, b, 3) == 0

    def test_counts_true_disagreements(self):
        a = np.array([0, 0, 0, 1, 1, 1])
        b = np.array([0, 0, 1, 1, 1, 1])
        # optimal relabel is identity; one point disagrees
        assert m2m_comm(a, b, 2) == 1

    def test_upper_bound(self):
        rng = np.random.default_rng(0)
        a = rng.integers(0, 4, 100)
        b = rng.integers(0, 4, 100)
        assert 0 <= m2m_comm(a, b, 4) <= 100

    @given(st.integers(0, 10**6), st.integers(2, 6))
    @settings(max_examples=40, deadline=None)
    def test_property_relabel_no_worse_than_identity(self, seed, k):
        """Optimal relabelling never disagrees more than the identity
        labelling does."""
        rng = np.random.default_rng(seed)
        n = 60
        a = rng.integers(0, k, n)
        b = rng.integers(0, k, n)
        identity_diff = int(np.count_nonzero(a != b))
        assert m2m_comm(a, b, k) <= identity_diff


class TestUpdateComm:
    def test_common_ids_compared(self):
        prev_ids = np.array([1, 2, 3, 4])
        new_ids = np.array([2, 3, 4, 5])
        prev_l = np.array([0, 0, 1, 1])  # labels of ids 1,2,3,4
        new_l = np.array([0, 0, 0, 9])  # labels of ids 2,3,4,5
        # common ids 2,3,4: prev (0,1,1) vs new (0,0,0) -> 2 moved
        assert update_comm(prev_l, new_l, prev_ids, new_ids) == 2

    def test_disjoint_ids_zero(self):
        assert (
            update_comm(
                np.array([0]), np.array([1]),
                np.array([1]), np.array([2]),
            )
            == 0
        )

    def test_identical_zero(self):
        ids = np.array([5, 6, 7])
        labels = np.array([0, 1, 2])
        assert update_comm(labels, labels, ids, ids) == 0
