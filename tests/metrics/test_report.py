"""Tests for table formatting."""

import pytest

from repro.metrics.report import MetricTable, format_table


class TestMetricTable:
    def test_render_contains_values(self):
        t = MetricTable("Demo", ["a", "b"])
        t.add_row("row1", [1, 22222])
        out = t.render()
        assert "Demo" in out
        assert "row1" in out
        assert "22,222" in out

    def test_row_length_checked(self):
        t = MetricTable("Demo", ["a", "b"])
        with pytest.raises(ValueError, match="2 columns"):
            t.add_row("bad", [1])

    def test_floats_formatted(self):
        t = MetricTable("Demo", ["x"])
        t.add_row("r", [3.14159])
        assert "3.1" in t.render()

    def test_integral_floats_rendered_as_ints(self):
        t = MetricTable("Demo", ["x"])
        t.add_row("r", [5.0])
        assert "5" in t.render()
        assert "5.0" not in t.render()

    def test_columns_aligned(self):
        out = format_table(
            "T", ["col"], {"a": [1], "bbbb": [100000]}
        )
        lines = out.splitlines()
        # all data lines equal length
        data = [l for l in lines[2:] if l and not set(l) <= {"-", "="}]
        assert len({len(l) for l in data}) == 1

    def test_empty_rows(self):
        out = format_table("T", ["c1", "c2"], {})
        assert "c1" in out
