"""Public-API surface tests: the README quickstart must work."""

import numpy as np

import repro


class TestPublicApi:
    def test_version(self):
        assert repro.__version__

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_quickstart_flow(self):
        """The exact flow the README shows."""
        seq = repro.simulate_impact(
            repro.ImpactConfig(n_steps=3, refine=0.5)
        )
        table = repro.table1(seq, ks=(2,))
        out = table.render()
        assert "MCML+DT" in out

    def test_partitioner_direct_use(self):
        """Using the partitioner as a standalone library."""
        from repro.graph import grid_graph
        from repro.graph.metrics import load_imbalance

        g = grid_graph(12, 12)
        part = repro.partition_kway(g, 4, repro.PartitionOptions(seed=0))
        assert load_imbalance(g, part, 4).max() <= 1.06

    def test_dtree_direct_use(self):
        rng = np.random.default_rng(0)
        pts = rng.random((30, 2))
        labels = (pts[:, 0] > 0.5).astype(int)
        tree, _ = repro.induce_pure_tree(pts, labels, 2)
        assert tree.n_nodes == 3

    def test_rcb_direct_use(self):
        rng = np.random.default_rng(0)
        pts = rng.random((64, 3))
        labels, tree = repro.rcb_partition(pts, 4)
        assert set(np.unique(labels)) == set(range(4))
