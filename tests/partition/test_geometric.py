"""Tests for geometry-seeded multi-constraint partitioning."""

import numpy as np
import pytest

from repro.graph.build import grid_coords, grid_graph
from repro.graph.metrics import edge_cut, load_imbalance
from repro.partition.config import PartitionOptions
from repro.partition.geometric import geometric_seed_partition


class TestGeometricSeedPartition:
    def test_balanced_on_grid(self):
        g = grid_graph(16, 16)
        coords = grid_coords(16, 16)
        part = geometric_seed_partition(
            g, coords, 4, PartitionOptions(seed=0)
        )
        assert set(np.unique(part)) == set(range(4))
        assert load_imbalance(g, part, 4).max() <= 1.08

    def test_cut_competitive_with_ideal(self):
        g = grid_graph(20, 20)
        coords = grid_coords(20, 20)
        part = geometric_seed_partition(
            g, coords, 4, PartitionOptions(seed=0)
        )
        # ideal 2x2 tiling cuts 2*20 = 40
        assert edge_cut(g, part) <= 80

    def test_two_constraints(self, small_sequence):
        from repro.core.weights import build_contact_graph

        snap = small_sequence[0]
        g = build_contact_graph(snap)
        part = geometric_seed_partition(
            g, snap.mesh.nodes, 4,
            PartitionOptions(seed=0, ubfactor=1.10),
        )
        imb = load_imbalance(g, part, 4)
        assert imb[0] <= 1.12
        assert imb[1] <= 1.30

    def test_unrefined_matches_rcb_geometry(self):
        """With refine=False, subdomains remain (nearly) RCB boxes:
        each pair separated along some axis up to rebalance moves."""
        g = grid_graph(12, 12)
        coords = grid_coords(12, 12)
        part = geometric_seed_partition(
            g, coords, 2, PartitionOptions(seed=0), refine=False
        )
        lo0, hi0 = (
            coords[part == 0].min(0), coords[part == 0].max(0)
        )
        lo1, hi1 = (
            coords[part == 1].min(0), coords[part == 1].max(0)
        )
        overlap = np.minimum(hi0, hi1) - np.maximum(lo0, lo1)
        # at most a thin band of overlap from rebalance moves
        assert (overlap <= 1.0 + 1e-9).any()

    def test_k_one(self):
        g = grid_graph(4, 4)
        part = geometric_seed_partition(g, grid_coords(4, 4), 1)
        assert (part == 0).all()

    def test_coords_length_checked(self):
        g = grid_graph(4, 4)
        with pytest.raises(ValueError, match="align"):
            geometric_seed_partition(g, np.zeros((3, 2)), 2)

    def test_yields_small_descriptor_trees(self, small_sequence):
        """The §6 motivation: geometry-seeded partitions should induce
        compact contact-point trees without any reshaping step."""
        from repro.core.weights import build_contact_graph
        from repro.dtree.induction import induce_pure_tree
        from repro.partition.kway import partition_kway

        snap = small_sequence[0]
        g = build_contact_graph(snap)
        k = 4
        geo = geometric_seed_partition(
            g, snap.mesh.nodes, k, PartitionOptions(seed=0)
        )
        graphic = partition_kway(g, k, PartitionOptions(seed=0))
        cn = snap.contact_nodes
        coords = snap.mesh.nodes[cn]
        t_geo, _ = induce_pure_tree(coords, geo[cn], k)
        t_gra, _ = induce_pure_tree(coords, graphic[cn], k)
        assert t_geo.n_nodes <= 1.5 * t_gra.n_nodes
