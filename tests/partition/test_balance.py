"""Tests for balance bookkeeping, including BalanceTracker equivalence."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.partition.balance import (
    BalanceTracker,
    is_feasible,
    max_allowed,
    move_keeps_feasible,
    target_weights,
    violation,
    violation_delta,
)


class TestTargets:
    def test_even_split(self):
        t = target_weights(np.array([100, 10]), np.array([0.5, 0.5]))
        assert t.tolist() == [[50, 5], [50, 5]]

    def test_proportional_split(self):
        t = target_weights(np.array([100]), np.array([0.6, 0.4]))
        assert t[:, 0].tolist() == [60, 40]

    def test_fracs_must_sum_to_one(self):
        with pytest.raises(ValueError, match="sum to 1"):
            target_weights(np.array([10]), np.array([0.5, 0.6]))


class TestViolation:
    def test_feasible_is_zero(self):
        targets = target_weights(np.array([100]), np.array([0.5, 0.5]))
        assert violation(np.array([[50], [50]]), targets, 1.05) == 0.0

    def test_tolerance_respected(self):
        targets = target_weights(np.array([100]), np.array([0.5, 0.5]))
        # 52 < 50*1.05 = 52.5 -> still fine
        assert violation(np.array([[52], [48]]), targets, 1.05) == 0.0
        assert violation(np.array([[54], [46]]), targets, 1.05) > 0.0

    def test_zero_total_constraint_ignored(self):
        targets = np.array([[50.0, 0.0], [50.0, 0.0]])
        v = violation(np.array([[50, 3], [50, 0]]), targets, 1.05)
        assert v == 0.0

    def test_is_feasible_consistent(self):
        targets = target_weights(np.array([100]), np.array([0.5, 0.5]))
        assert is_feasible(np.array([[50], [50]]), targets, 1.05)
        assert not is_feasible(np.array([[90], [10]]), targets, 1.05)


class TestMoveChecks:
    def test_move_keeps_feasible(self):
        targets = target_weights(np.array([100]), np.array([0.5, 0.5]))
        pw = np.array([[50], [50]])
        assert move_keeps_feasible(pw, np.array([2]), 0, 1, targets, 1.05)
        assert not move_keeps_feasible(pw, np.array([5]), 0, 1, targets, 1.05)

    def test_violation_delta_sign(self):
        targets = target_weights(np.array([100]), np.array([0.5, 0.5]))
        pw = np.array([[70], [30]])
        # moving weight off the overweight side improves
        assert violation_delta(pw, np.array([10]), 0, 1, targets, 1.05) < 0
        # moving onto it worsens
        assert violation_delta(pw, np.array([10]), 1, 0, targets, 1.05) > 0


class TestBalanceTracker:
    def _random_case(self, seed, k=4, ncon=2):
        rng = np.random.default_rng(seed)
        pwgts = rng.integers(0, 50, size=(k, ncon)).astype(float)
        totals = pwgts.sum(axis=0)
        totals[totals == 0] = 1
        targets = target_weights(totals, np.full(k, 1.0 / k))
        return pwgts, targets

    @given(st.integers(0, 10**6))
    @settings(max_examples=60, deadline=None)
    def test_property_total_matches_violation(self, seed):
        pwgts, targets = self._random_case(seed)
        tracker = BalanceTracker(pwgts, targets, 1.05)
        assert tracker.total == pytest.approx(
            violation(pwgts, targets, 1.05), abs=1e-9
        )

    @given(st.integers(0, 10**6))
    @settings(max_examples=60, deadline=None)
    def test_property_delta_matches_violation_delta(self, seed):
        pwgts, targets = self._random_case(seed)
        tracker = BalanceTracker(pwgts, targets, 1.05)
        rng = np.random.default_rng(seed + 1)
        src, dst = rng.choice(4, size=2, replace=False)
        vwgt = rng.integers(0, 10, size=2).astype(float)
        expected = violation_delta(pwgts, vwgt, src, dst, targets, 1.05)
        assert tracker.delta_move(src, dst, vwgt.tolist()) == pytest.approx(
            expected, abs=1e-9
        )

    @given(st.integers(0, 10**6))
    @settings(max_examples=40, deadline=None)
    def test_property_apply_move_keeps_cache_consistent(self, seed):
        pwgts, targets = self._random_case(seed)
        tracker = BalanceTracker(pwgts, targets, 1.05)
        rng = np.random.default_rng(seed + 2)
        for _ in range(5):
            src, dst = rng.choice(4, size=2, replace=False)
            vwgt = rng.integers(0, 5, size=2).astype(float).tolist()
            tracker.apply_move(src, dst, vwgt)
        fresh = BalanceTracker(
            tracker.pwgts_array(), targets, 1.05
        )
        assert tracker.total == pytest.approx(fresh.total, abs=1e-9)

    def test_worst_identifies_binding_constraint(self):
        targets = np.array([[10.0, 10.0], [10.0, 10.0]])
        pwgts = np.array([[10.0, 18.0], [10.0, 2.0]])
        tracker = BalanceTracker(pwgts, targets, 1.05)
        assert tracker.worst() == (0, 1)

    def test_worst_none_when_feasible(self):
        targets = np.array([[10.0], [10.0]])
        tracker = BalanceTracker(np.array([[10.0], [10.0]]), targets, 1.05)
        assert tracker.worst() is None

    def test_fits(self):
        targets = np.array([[10.0], [10.0]])
        tracker = BalanceTracker(np.array([[10.0], [10.0]]), targets, 1.05)
        assert tracker.fits(0, [0.4])
        assert not tracker.fits(0, [2.0])
