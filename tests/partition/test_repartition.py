"""Tests for diffusion repartitioning."""

import numpy as np
import pytest

from repro.graph.build import grid_graph
from repro.graph.metrics import edge_cut, load_imbalance
from repro.partition.config import PartitionOptions
from repro.partition.kway import partition_kway
from repro.partition.repartition import diffusion_repartition


class TestDiffusionRepartition:
    def test_restores_balance_with_small_movement(self):
        g = grid_graph(12, 12)
        part = partition_kway(g, 4, PartitionOptions(seed=0))
        # perturb weights: a band of vertices doubles its load
        vw = np.ones((144, 1), dtype=np.int64)
        vw[:36, 0] = 3
        g2 = g.with_vwgts(vw)
        res = diffusion_repartition(g2, part, 4, PartitionOptions(seed=0))
        assert load_imbalance(g2, res.part, 4).max() <= 1.10
        # far fewer vertices moved than a from-scratch repartition
        assert res.n_moved < 72

    def test_noop_when_balanced(self):
        g = grid_graph(10, 10)
        part = (np.arange(100) // 25).astype(np.int64)
        res = diffusion_repartition(g, part, 4, PartitionOptions(seed=0))
        assert load_imbalance(g, res.part, 4).max() <= 1.05 + 1e-9
        # refinement may polish the cut but should not shuffle wholesale
        assert res.n_moved <= 30

    def test_n_moved_counts_changes(self):
        g = grid_graph(8, 8)
        part = np.zeros(64, dtype=np.int64)
        part[:8] = 1
        res = diffusion_repartition(g, part, 2, PartitionOptions(seed=0))
        assert res.n_moved == int(np.count_nonzero(res.part != part))

    def test_rejects_bad_inputs(self):
        g = grid_graph(4, 4)
        with pytest.raises(ValueError, match="length"):
            diffusion_repartition(g, np.zeros(3, dtype=int), 2)
        with pytest.raises(ValueError, match="out of range"):
            diffusion_repartition(g, np.full(16, 5), 2)

    def test_cut_not_catastrophically_worse(self):
        g = grid_graph(14, 14)
        part = partition_kway(g, 4, PartitionOptions(seed=0))
        base_cut = edge_cut(g, part)
        vw = np.ones((196, 1), dtype=np.int64)
        vw[:49, 0] = 2
        g2 = g.with_vwgts(vw)
        res = diffusion_repartition(g2, part, 4, PartitionOptions(seed=0))
        assert edge_cut(g2, res.part) <= 3 * base_cut + 10
