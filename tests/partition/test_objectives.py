"""Tests for multi-objective edge weights."""

import numpy as np
import pytest

from repro.graph.build import from_edge_list, grid_graph
from repro.partition.config import PartitionOptions
from repro.partition.objectives import (
    EdgeObjectives,
    build_contact_objectives,
    multi_objective_partition,
    per_objective_cuts,
    scalarize,
)


def two_objective_path():
    """Path 0-1-2-3; objective 0 on all edges, objective 1 only on the
    middle edge."""
    g = from_edge_list(4, np.array([[0, 1], [1, 2], [2, 3]]))
    src = np.repeat(np.arange(4), g.degrees())
    mid = ((src == 1) & (g.adjncy == 2)) | ((src == 2) & (g.adjncy == 1))
    values = np.column_stack(
        (np.ones(len(g.adjncy), dtype=int), mid.astype(int))
    )
    return EdgeObjectives(graph=g, values=values)


class TestEdgeObjectives:
    def test_alignment_checked(self):
        g = grid_graph(3, 3)
        with pytest.raises(ValueError, match="align"):
            EdgeObjectives(graph=g, values=np.ones((3, 2), dtype=int))

    def test_symmetry_validation(self):
        obj = two_objective_path()
        obj.validate_symmetry()
        bad = EdgeObjectives(
            graph=obj.graph, values=obj.values.copy()
        )
        bad.values[0, 1] = 5  # one direction altered
        with pytest.raises(ValueError, match="not symmetric"):
            bad.validate_symmetry()


class TestPerObjectiveCuts:
    def test_hand_example(self):
        obj = two_objective_path()
        # cut the middle edge: objective 0 cut = 1, objective 1 cut = 1
        cuts = per_objective_cuts(obj, np.array([0, 0, 1, 1]))
        assert cuts.tolist() == [1, 1]
        # cut the first edge: objective 1 untouched
        cuts = per_objective_cuts(obj, np.array([0, 1, 1, 1]))
        assert cuts.tolist() == [1, 0]


class TestScalarize:
    def test_coefficients_applied(self):
        obj = two_objective_path()
        g = scalarize(obj, [1.0, 4.0])
        # middle edge weight = 1 + 4 = 5, others 1
        src = np.repeat(np.arange(4), g.degrees())
        mid = ((src == 1) & (g.adjncy == 2))
        assert (g.adjwgt[mid] == 5).all()
        assert (g.adjwgt[~mid & (src < g.adjncy)] == 1).all()

    def test_validation(self):
        obj = two_objective_path()
        with pytest.raises(ValueError, match="coefficients"):
            scalarize(obj, [1.0])
        with pytest.raises(ValueError, match="non-negative"):
            scalarize(obj, [1.0, -2.0])

    def test_minimum_weight_one(self):
        obj = two_objective_path()
        g = scalarize(obj, [0.0, 0.0])
        assert (g.adjwgt >= 1).all()


class TestContactObjectives:
    def test_matches_weight_model(self, small_sequence):
        """Scalarising the contact objectives with (1, w-1) reproduces
        the §4.2 weight-w graph exactly."""
        from repro.core.weights import build_contact_graph

        snap = small_sequence[0]
        obj = build_contact_objectives(snap)
        obj.validate_symmetry()
        g5 = scalarize(obj, [1.0, 4.0])
        ref = build_contact_graph(snap, contact_edge_weight=5)
        assert np.array_equal(g5.adjwgt, ref.adjwgt)

    def test_objective1_is_contact_edges(self, small_sequence):
        snap = small_sequence[0]
        obj = build_contact_objectives(snap)
        is_contact = np.zeros(obj.graph.num_vertices, dtype=bool)
        is_contact[snap.contact_nodes] = True
        src = np.repeat(
            np.arange(obj.graph.num_vertices), obj.graph.degrees()
        )
        both = is_contact[src] & is_contact[obj.graph.adjncy]
        assert np.array_equal(obj.values[:, 1].astype(bool), both)


class TestMultiObjectivePartition:
    def test_tradeoff_direction(self, small_sequence):
        """Raising the contact coefficient cannot increase the contact
        cut relative to the FE-only scalarisation (Pareto trade-off)."""
        snap = small_sequence[0]
        obj = build_contact_objectives(snap)
        opts = PartitionOptions(seed=0)
        _, cuts_fe_only = multi_objective_partition(obj, 4, [1.0, 0.0], opts)
        _, cuts_contact = multi_objective_partition(obj, 4, [1.0, 9.0], opts)
        assert cuts_contact[1] <= cuts_fe_only[1]

    def test_partition_valid(self, small_sequence):
        snap = small_sequence[0]
        obj = build_contact_objectives(snap)
        part, cuts = multi_objective_partition(
            obj, 4, [1.0, 4.0], PartitionOptions(seed=0)
        )
        assert len(part) == obj.graph.num_vertices
        assert len(cuts) == 2
        assert (cuts >= 0).all()
