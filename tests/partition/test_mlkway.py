"""Tests for the direct multilevel k-way driver."""

import numpy as np
import pytest

from repro.graph.build import grid_graph
from repro.graph.metrics import edge_cut, load_imbalance
from repro.partition.config import PartitionOptions
from repro.partition.mlkway import multilevel_kway


class TestMultilevelKway:
    @pytest.mark.parametrize("k", [2, 5, 8])
    def test_valid_balanced_partition(self, k):
        g = grid_graph(16, 16)
        part = multilevel_kway(g, k, PartitionOptions(seed=0))
        assert set(np.unique(part)) == set(range(k))
        assert load_imbalance(g, part, k).max() <= 1.10

    def test_two_constraints(self):
        g = grid_graph(14, 14)
        vw = np.ones((196, 2), dtype=np.int64)
        vw[:, 1] = (np.arange(196) % 5 == 0).astype(np.int64)
        g = g.with_vwgts(vw)
        part = multilevel_kway(g, 4, PartitionOptions(seed=0, ubfactor=1.15))
        imb = load_imbalance(g, part, 4)
        assert imb[0] <= 1.17
        assert imb[1] <= 1.45

    def test_cut_quality_sane(self):
        g = grid_graph(20, 20)
        part = multilevel_kway(g, 4, PartitionOptions(seed=0))
        # ideal 4-way tiling cuts ~80; anything within 3x is structured
        assert edge_cut(g, part) <= 240

    def test_k_one(self):
        g = grid_graph(4, 4)
        assert (multilevel_kway(g, 1) == 0).all()

    def test_k_exceeds_vertices(self):
        with pytest.raises(ValueError, match="exceeds"):
            multilevel_kway(grid_graph(2, 2), 9)

    def test_invalid_k(self):
        with pytest.raises(ValueError, match="k must be"):
            multilevel_kway(grid_graph(2, 2), 0)

    def test_deterministic(self):
        g = grid_graph(10, 10)
        a = multilevel_kway(g, 4, PartitionOptions(seed=5))
        b = multilevel_kway(g, 4, PartitionOptions(seed=5))
        assert np.array_equal(a, b)

    def test_tiny_graph(self):
        g = grid_graph(3, 1)
        part = multilevel_kway(g, 3, PartitionOptions(seed=0))
        assert sorted(part.tolist()) == [0, 1, 2]
