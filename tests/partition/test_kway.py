"""Tests for recursive bisection and the k-way entry point."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.build import grid_graph, random_geometric_graph
from repro.graph.metrics import edge_cut, load_imbalance
from repro.partition.config import PartitionOptions
from repro.partition.kway import partition_kway
from repro.partition.recursive import recursive_bisection


class TestRecursiveBisection:
    def test_labels_cover_range(self):
        g = grid_graph(12, 12)
        part = recursive_bisection(g, 6, PartitionOptions(seed=0))
        assert set(np.unique(part)) == set(range(6))

    def test_k_one(self):
        g = grid_graph(4, 4)
        part = recursive_bisection(g, 1, PartitionOptions(seed=0))
        assert (part == 0).all()

    def test_invalid_k(self):
        with pytest.raises(ValueError, match="k must be"):
            recursive_bisection(grid_graph(3, 3), 0)


class TestPartitionKway:
    @pytest.mark.parametrize("k", [2, 3, 5, 8])
    def test_balance_across_k(self, k):
        g = grid_graph(16, 16)
        part = partition_kway(g, k, PartitionOptions(seed=0))
        assert load_imbalance(g, part, k).max() <= 1.08

    def test_cut_scales_reasonably(self):
        """More partitions -> more cut, but far below total edges."""
        g = grid_graph(20, 20)
        cuts = [
            edge_cut(g, partition_kway(g, k, PartitionOptions(seed=0)))
            for k in (2, 4, 8)
        ]
        assert cuts[0] < cuts[1] < cuts[2]
        assert cuts[2] < g.num_edges / 3

    def test_two_constraint_balance(self):
        g = grid_graph(16, 16)
        vw = np.ones((256, 2), dtype=np.int64)
        vw[:, 1] = (np.arange(256) % 7 == 0).astype(np.int64)
        g = g.with_vwgts(vw)
        part = partition_kway(g, 4, PartitionOptions(seed=0, ubfactor=1.15))
        imb = load_imbalance(g, part, 4)
        assert imb[0] <= 1.17
        assert imb[1] <= 1.35  # lumpy constraint gets looser slack

    def test_k_exceeds_vertices(self):
        g = grid_graph(2, 2)
        with pytest.raises(ValueError, match="exceeds"):
            partition_kway(g, 5)

    def test_k_equals_n(self):
        g = grid_graph(2, 2)
        part = partition_kway(g, 4, PartitionOptions(seed=0))
        assert sorted(part.tolist()) == [0, 1, 2, 3]

    def test_deterministic(self):
        g = grid_graph(10, 10)
        a = partition_kway(g, 5, PartitionOptions(seed=11))
        b = partition_kway(g, 5, PartitionOptions(seed=11))
        assert np.array_equal(a, b)

    def test_irregular_graph(self):
        g, _ = random_geometric_graph(500, 0.08, seed=2)
        part = partition_kway(g, 7, PartitionOptions(seed=0))
        assert set(np.unique(part)) == set(range(7))
        assert load_imbalance(g, part, 7).max() <= 1.10

    @given(st.integers(2, 9), st.integers(0, 1000))
    @settings(max_examples=15, deadline=None)
    def test_property_partition_valid(self, k, seed):
        """Any (k, seed): labels in range, every partition non-empty,
        vertex count preserved."""
        g = grid_graph(9, 9)
        part = partition_kway(g, k, PartitionOptions(seed=seed))
        assert len(part) == 81
        counts = np.bincount(part, minlength=k)
        assert (counts > 0).all()
        assert part.min() >= 0 and part.max() < k
