"""Tests for fragment absorption."""

import numpy as np
import pytest

from repro.graph.build import from_edge_list, grid_graph
from repro.graph.metrics import load_imbalance, total_comm_volume
from repro.partition.config import PartitionOptions
from repro.partition.fragments import absorb_fragments, count_fragments


class TestCountFragments:
    def test_connected_partitions(self):
        g = grid_graph(4, 4)
        part = (np.arange(16) % 4 >= 2).astype(np.int64)
        assert count_fragments(g, part, 2) == 2

    def test_detects_islands(self):
        g = grid_graph(4, 4)
        part = np.zeros(16, dtype=np.int64)
        part[5] = 1  # isolated single-vertex island of partition 1
        part[12:16] = 1  # main body of partition 1
        assert count_fragments(g, part, 2) >= 3


class TestAbsorbFragments:
    def test_absorbs_single_vertex_island(self):
        g = grid_graph(6, 6)
        part = (np.arange(36) % 6 >= 3).astype(np.int64)
        part[0] = 1  # corner vertex stranded inside partition 0
        out, moved = absorb_fragments(
            g, part, 2, PartitionOptions(seed=0)
        )
        assert moved == 1
        assert out[0] == 0
        assert count_fragments(g, out, 2) == 2

    def test_no_change_when_connected(self):
        g = grid_graph(6, 6)
        part = (np.arange(36) % 6 >= 3).astype(np.int64)
        out, moved = absorb_fragments(
            g, part, 2, PartitionOptions(seed=0)
        )
        assert moved == 0

    def test_moves_to_most_connected_partition(self):
        # a 3-column grid split into x-columns; strand a 2-vertex
        # fragment of partition 2 at the far corner of column 0. It has
        # 1 edge into partition 0 (below it) and 2 edges into partition
        # 1 (the next column), so partition 1 must absorb it.
        g = grid_graph(3, 6)  # vertex = x*6 + y
        part = np.repeat([0, 1, 2], 6).astype(np.int64)
        part[0] = part[1] = 2  # y=0,1 of column x=0
        out, moved = absorb_fragments(
            g, part, 3, PartitionOptions(seed=0, ubfactor=1.6)
        )
        assert moved == 2
        assert out[0] == 1 and out[1] == 1

    def test_reduces_comm_volume(self):
        rng = np.random.default_rng(0)
        g = grid_graph(10, 10)
        # checkerboard noise on top of a straight split
        part = (np.arange(100) % 10 >= 5).astype(np.int64)
        noise = rng.choice(100, size=8, replace=False)
        part[noise] ^= 1
        before = total_comm_volume(g, part)
        out, moved = absorb_fragments(
            g, part, 2, PartitionOptions(seed=0, ubfactor=1.3)
        )
        assert total_comm_volume(g, out) < before

    def test_body_isolated_fragment_untouched(self):
        """A fragment on a disconnected body with no foreign neighbours
        must stay (there is nowhere to absorb it into)."""
        # two disjoint 2-cliques
        g = from_edge_list(4, np.array([[0, 1], [2, 3]]))
        part = np.array([0, 0, 0, 0])
        part_in = part.copy()
        out, moved = absorb_fragments(
            g, part, 2, PartitionOptions(seed=0)
        )
        # partition 0 has two components but partition 1 owns nothing
        # adjacent — nothing can move
        assert moved == 0
        assert np.array_equal(out, part_in)

    def test_force_respects_force_limit(self):
        """A fragment heavier than force_limit × mean target must not
        be force-moved into an overloaded destination."""
        g = grid_graph(4, 4)
        part = np.zeros(16, dtype=np.int64)
        part[8:] = 1
        # fragment = half of partition 1 disconnected? construct: strand
        # a big block of partition 1 inside 0's region
        part[:] = 0
        part[0:2] = 1
        part[12:16] = 1
        out, moved = absorb_fragments(
            g, part, 2, PartitionOptions(seed=0),
            force=False,
        )
        # without force and with tight bounds, the 2-vertex fragment
        # cannot fit into partition 0 (already at 10/16 > allowed)
        assert moved == 0
