"""Tests for multilevel bisection."""

import numpy as np
import pytest

from repro.graph.build import from_edge_list, grid_graph, random_geometric_graph
from repro.graph.metrics import edge_cut, load_imbalance
from repro.partition.config import PartitionOptions
from repro.partition.multilevel import multilevel_bisection


class TestMultilevelBisection:
    def test_grid_cut_near_optimal(self):
        g = grid_graph(24, 24)
        part = multilevel_bisection(g, 0.5, PartitionOptions(seed=0))
        # optimal straight cut = 24; multilevel should be within 2x
        assert edge_cut(g, part) <= 48
        assert load_imbalance(g, part, 2).max() <= 1.06

    def test_balanced_on_irregular_graph(self):
        g, _ = random_geometric_graph(400, 0.09, seed=0)
        part = multilevel_bisection(g, 0.5, PartitionOptions(seed=0))
        assert load_imbalance(g, part, 2).max() <= 1.10

    def test_uneven_fraction(self):
        g = grid_graph(20, 20)
        part = multilevel_bisection(g, 0.7, PartitionOptions(seed=0))
        frac0 = (part == 0).mean()
        assert 0.65 <= frac0 <= 0.75

    def test_two_constraints(self):
        g = grid_graph(16, 16)
        vw = np.ones((256, 2), dtype=np.int64)
        # second constraint concentrated in one band
        vw[:, 1] = ((np.arange(256) // 16) < 4).astype(np.int64)
        g = g.with_vwgts(vw)
        part = multilevel_bisection(
            g, 0.5, PartitionOptions(seed=0, ubfactor=1.10)
        )
        imb = load_imbalance(g, part, 2)
        assert imb[0] <= 1.12
        assert imb[1] <= 1.12

    def test_trivial_sizes(self):
        assert len(multilevel_bisection(grid_graph(1, 1), 0.5)) == 1
        g = from_edge_list(0, np.empty((0, 2)))
        assert len(multilevel_bisection(g, 0.5)) == 0

    def test_invalid_fraction(self):
        g = grid_graph(4, 4)
        with pytest.raises(ValueError, match="frac0"):
            multilevel_bisection(g, 1.0)
        with pytest.raises(ValueError, match="frac0"):
            multilevel_bisection(g, 0.0)

    def test_deterministic(self):
        g = grid_graph(12, 12)
        a = multilevel_bisection(g, 0.5, PartitionOptions(seed=3))
        b = multilevel_bisection(g, 0.5, PartitionOptions(seed=3))
        assert np.array_equal(a, b)

    def test_better_than_random(self):
        g = grid_graph(16, 16)
        rng = np.random.default_rng(0)
        random_cut = edge_cut(g, rng.integers(0, 2, 256))
        ml_cut = edge_cut(
            g, multilevel_bisection(g, 0.5, PartitionOptions(seed=0))
        )
        assert ml_cut < random_cut / 3
