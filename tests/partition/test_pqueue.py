"""Tests for the updatable max-priority queue."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.partition.pqueue import MaxPQ


class TestMaxPQ:
    def test_pop_order(self):
        pq = MaxPQ()
        for item, pri in [("a", 1.0), ("b", 3.0), ("c", 2.0)]:
            pq.insert(item, pri)
        assert [pq.pop()[0] for _ in range(3)] == ["b", "c", "a"]

    def test_update_overrides(self):
        pq = MaxPQ()
        pq.insert("a", 1.0)
        pq.insert("b", 2.0)
        pq.update("a", 5.0)
        assert pq.pop() == ("a", 5.0)

    def test_remove(self):
        pq = MaxPQ()
        pq.insert("a", 1.0)
        pq.insert("b", 2.0)
        pq.remove("b")
        assert "b" not in pq
        assert pq.pop() == ("a", 1.0)
        assert pq.pop() is None

    def test_remove_absent_is_noop(self):
        pq = MaxPQ()
        pq.remove("ghost")
        assert len(pq) == 0

    def test_peek_does_not_remove(self):
        pq = MaxPQ()
        pq.insert("x", 4.0)
        assert pq.peek() == ("x", 4.0)
        assert pq.peek() == ("x", 4.0)
        assert len(pq) == 1

    def test_len_tracks_live_items(self):
        pq = MaxPQ()
        pq.insert(1, 0.0)
        pq.insert(1, 2.0)  # update, not a second item
        assert len(pq) == 1

    def test_empty_pops_none(self):
        assert MaxPQ().pop() is None
        assert MaxPQ().peek() is None

    def test_fifo_tie_break(self):
        pq = MaxPQ()
        pq.insert("first", 1.0)
        pq.insert("second", 1.0)
        assert pq.pop()[0] == "first"

    @given(
        st.lists(
            st.tuples(st.integers(0, 20), st.floats(-100, 100)),
            min_size=1,
            max_size=80,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_property_pops_match_dict_max(self, ops):
        """After arbitrary insert/updates, popping everything yields
        items in non-increasing priority order matching a dict model."""
        pq = MaxPQ()
        model = {}
        for item, pri in ops:
            pq.insert(item, pri)
            model[item] = pri
        popped = []
        while True:
            entry = pq.pop()
            if entry is None:
                break
            popped.append(entry)
        assert {i for i, _ in popped} == set(model)
        pris = [p for _, p in popped]
        assert pris == sorted(pris, reverse=True)
        for item, pri in popped:
            assert model[item] == pri
