"""Tests for FM bisection refinement."""

import numpy as np
import pytest

from repro.graph.build import from_edge_list, grid_graph
from repro.graph.metrics import edge_cut
from repro.partition.balance import target_weights, violation
from repro.partition.config import PartitionOptions
from repro.partition.refine_fm import (
    _partition_weights2,
    fm_refine_bisection,
    gain_vector,
)


def even_targets(graph):
    return target_weights(graph.total_vwgt, np.array([0.5, 0.5]))


class TestGainVector:
    def test_hand_example(self):
        # path 0-1-2 split [0|1,2]: gains: v0: +1 (its one edge is cut),
        # v1: 1 - 1 = 0, v2: -1
        g = from_edge_list(3, np.array([[0, 1], [1, 2]]))
        gains = gain_vector(g, np.array([0, 1, 1]))
        assert gains.tolist() == [1, 0, -1]

    def test_weighted(self):
        g = from_edge_list(
            3, np.array([[0, 1], [1, 2]]), weights=np.array([4, 6])
        )
        gains = gain_vector(g, np.array([0, 1, 1]))
        assert gains.tolist() == [4, -2, -6]

    def test_gain_predicts_cut_change(self):
        g = grid_graph(6, 6)
        rng = np.random.default_rng(0)
        part = rng.integers(0, 2, 36)
        gains = gain_vector(g, part)
        before = edge_cut(g, part)
        for v in [0, 7, 35]:
            flipped = part.copy()
            flipped[v] ^= 1
            assert edge_cut(g, flipped) == before - gains[v]


class TestFMRefine:
    def test_improves_random_bisection(self):
        g = grid_graph(10, 10)
        rng = np.random.default_rng(1)
        part = rng.integers(0, 2, 100)
        before = edge_cut(g, part)
        out = fm_refine_bisection(
            g, part.copy(), even_targets(g), PartitionOptions(seed=0)
        )
        after = edge_cut(g, out)
        assert after < before

    def test_keeps_balance(self):
        g = grid_graph(10, 10)
        rng = np.random.default_rng(2)
        part = rng.integers(0, 2, 100)
        opts = PartitionOptions(seed=0)
        out = fm_refine_bisection(g, part.copy(), even_targets(g), opts)
        pw = _partition_weights2(g, out)
        assert violation(pw, even_targets(g), opts.ubfactor) == 0.0

    def test_repairs_gross_imbalance(self):
        g = grid_graph(10, 10)
        part = np.zeros(100, dtype=np.int64)
        part[:10] = 1  # 90/10 split
        opts = PartitionOptions(seed=0)
        out = fm_refine_bisection(g, part, even_targets(g), opts)
        pw = _partition_weights2(g, out)
        assert violation(pw, even_targets(g), opts.ubfactor) == 0.0

    def test_does_not_worsen_optimal_cut(self):
        g = grid_graph(8, 8)
        part = (np.arange(64) % 8 >= 4).astype(np.int64)  # straight cut = 8
        out = fm_refine_bisection(
            g, part.copy(), even_targets(g), PartitionOptions(seed=0)
        )
        assert edge_cut(g, out) <= 8

    def test_two_constraints_balanced(self):
        g = grid_graph(10, 10)
        vw = np.ones((100, 2), dtype=np.int64)
        vw[:, 1] = (np.arange(100) % 5 == 0).astype(np.int64)
        g = g.with_vwgts(vw)
        rng = np.random.default_rng(3)
        part = rng.integers(0, 2, 100)
        opts = PartitionOptions(seed=0, ubfactor=1.10)
        targets = target_weights(g.total_vwgt, np.array([0.5, 0.5]))
        out = fm_refine_bisection(g, part, targets, opts)
        pw = _partition_weights2(g, out)
        assert violation(pw, targets, opts.ubfactor) == pytest.approx(0.0)

    def test_uneven_target_fractions(self):
        g = grid_graph(12, 12)
        rng = np.random.default_rng(4)
        part = rng.integers(0, 2, 144)
        targets = target_weights(g.total_vwgt, np.array([0.75, 0.25]))
        opts = PartitionOptions(seed=0)
        out = fm_refine_bisection(g, part, targets, opts)
        pw = _partition_weights2(g, out)
        assert violation(pw, targets, opts.ubfactor) == 0.0
        frac0 = (out == 0).mean()
        assert 0.7 <= frac0 <= 0.8
