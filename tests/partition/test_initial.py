"""Tests for the initial (greedy graph growing) bisection."""

import numpy as np
import pytest

from repro.graph.build import from_edge_list, grid_graph
from repro.partition.initial import greedy_graph_growing, initial_bisection


class TestGreedyGraphGrowing:
    def test_produces_two_sides(self):
        g = grid_graph(8, 8)
        part = greedy_graph_growing(g, 0.5, seed_vertex=0)
        assert set(np.unique(part)) == {0, 1}

    def test_roughly_balanced(self):
        g = grid_graph(10, 10)
        part = greedy_graph_growing(g, 0.5, seed_vertex=0)
        frac = (part == 0).mean()
        assert 0.4 <= frac <= 0.6

    def test_respects_target_fraction(self):
        g = grid_graph(10, 10)
        part = greedy_graph_growing(g, 0.25, seed_vertex=0)
        frac = (part == 0).mean()
        assert 0.18 <= frac <= 0.35

    def test_region_is_connected(self):
        """GGGP grows a single region, so side 0 must be connected."""
        g = grid_graph(9, 9)
        part = greedy_graph_growing(g, 0.5, seed_vertex=40)
        from repro.graph.ops import connected_components, induced_subgraph

        sub, _ = induced_subgraph(g, np.nonzero(part == 0)[0])
        assert len(np.unique(connected_components(sub))) == 1

    def test_per_constraint_growth_rule(self):
        """Growing on constraint 1 must balance that constraint even
        when its weight is spatially skewed."""
        n = 100
        g = grid_graph(10, 10)
        vw = np.ones((n, 2), dtype=np.int64)
        vw[:, 1] = 0
        vw[:30, 1] = 1  # constraint-1 weight concentrated in 3 columns
        g = g.with_vwgts(vw)
        part = greedy_graph_growing(g, 0.5, seed_vertex=0, constraint=1)
        w1_side0 = vw[part == 0, 1].sum()
        assert 10 <= w1_side0 <= 20  # near half of 30

    def test_disconnected_component_exhaustion(self):
        """Growth stops gracefully when the seed's component runs out."""
        g = from_edge_list(6, np.array([[0, 1], [2, 3], [4, 5]]))
        part = greedy_graph_growing(g, 0.9, seed_vertex=0)
        # only vertices 0,1 reachable -> side 0 is exactly that component
        assert part[0] == 0 and part[1] == 0
        assert (part[2:] == 1).all()


class TestInitialBisection:
    def test_returns_requested_count(self):
        g = grid_graph(6, 6)
        cands = initial_bisection(g, 0.5, 4, seed=0)
        assert len(cands) == 4

    def test_edgeless_fallback(self):
        g = from_edge_list(10, np.empty((0, 2)))
        cands = initial_bisection(g, 0.5, 3, seed=0)
        assert len(cands) == 3
        for c in cands:
            assert set(np.unique(c)) <= {0, 1}

    def test_deterministic(self):
        g = grid_graph(6, 6)
        a = initial_bisection(g, 0.5, 3, seed=7)
        b = initial_bisection(g, 0.5, 3, seed=7)
        for x, y in zip(a, b):
            assert np.array_equal(x, y)
