"""Tests for the coarse-grain distributed multilevel partitioner."""

import numpy as np
import pytest

from repro.graph.build import grid_graph
from repro.graph.metrics import edge_cut, load_imbalance
from repro.partition.config import PartitionOptions
from repro.partition.kway import partition_kway
from repro.partition.parallel_kway import parallel_partition_kway


class TestParallelKway:
    def test_valid_partition(self):
        g = grid_graph(20, 20)
        res = parallel_partition_kway(
            g, 4, n_ranks=4, options=PartitionOptions(seed=0)
        )
        assert len(res.part) == 400
        assert set(np.unique(res.part)) == set(range(4))

    def test_balance_within_tolerance(self):
        g = grid_graph(24, 24)
        res = parallel_partition_kway(
            g, 6, n_ranks=4, options=PartitionOptions(seed=0)
        )
        assert load_imbalance(g, res.part, 6).max() <= 1.12

    def test_cut_within_factor_of_serial(self):
        """Local matching and quota-throttled refinement cost quality;
        the gap must stay bounded."""
        g = grid_graph(24, 24)
        opts = PartitionOptions(seed=0)
        serial = partition_kway(g, 4, opts)
        par = parallel_partition_kway(g, 4, n_ranks=4, options=opts)
        assert edge_cut(g, par.part) <= 2.0 * edge_cut(g, serial) + 20

    def test_communication_accounted(self):
        g = grid_graph(20, 20)
        res = parallel_partition_kway(
            g, 4, n_ranks=4, options=PartitionOptions(seed=0)
        )
        led = res.ledger
        assert led.items("pk-halo") > 0  # ghost exchanges happened
        assert led.items("pk-gather") > 0  # coarsest graph gathered
        assert led.items("pk-scatter") > 0  # labels scattered back
        # the gathered coarse graph is far smaller than the input
        assert led.items("pk-gather") < g.num_vertices + 2 * g.num_edges

    def test_coarsening_happened(self):
        g = grid_graph(24, 24)
        res = parallel_partition_kway(
            g, 4, n_ranks=4,
            options=PartitionOptions(seed=0), coarsen_to=100,
        )
        assert res.levels >= 1

    def test_single_rank_no_halo(self):
        g = grid_graph(12, 12)
        res = parallel_partition_kway(
            g, 4, n_ranks=1, options=PartitionOptions(seed=0)
        )
        assert res.ledger.items("pk-halo") == 0
        assert load_imbalance(g, res.part, 4).max() <= 1.12

    def test_custom_owner_layout(self):
        g = grid_graph(16, 16)
        rng = np.random.default_rng(0)
        owner = rng.integers(0, 3, 256)
        res = parallel_partition_kway(
            g, 4, n_ranks=3, owner=owner,
            options=PartitionOptions(seed=0),
        )
        assert set(np.unique(res.part)) == set(range(4))

    def test_two_constraints(self, small_sequence):
        from repro.core.weights import build_contact_graph

        snap = small_sequence[0]
        g = build_contact_graph(snap)
        res = parallel_partition_kway(
            g, 4, n_ranks=4,
            options=PartitionOptions(seed=0, ubfactor=1.15),
        )
        imb = load_imbalance(g, res.part, 4)
        assert imb[0] <= 1.25
        assert imb[1] <= 1.5

    def test_validation(self):
        g = grid_graph(4, 4)
        with pytest.raises(ValueError, match="k must be"):
            parallel_partition_kway(g, 0, n_ranks=2)
        with pytest.raises(ValueError, match="n_ranks"):
            parallel_partition_kway(g, 2, n_ranks=0)
        with pytest.raises(ValueError, match="align"):
            parallel_partition_kway(
                g, 2, n_ranks=2, owner=np.zeros(3, dtype=int)
            )
        with pytest.raises(ValueError, match="out of range"):
            parallel_partition_kway(
                g, 2, n_ranks=2, owner=np.full(16, 7)
            )

    def test_deterministic(self):
        g = grid_graph(14, 14)
        a = parallel_partition_kway(
            g, 4, n_ranks=3, options=PartitionOptions(seed=9)
        )
        b = parallel_partition_kway(
            g, 4, n_ranks=3, options=PartitionOptions(seed=9)
        )
        assert np.array_equal(a.part, b.part)
