"""Tests for heavy-edge matching."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.build import from_edge_list, grid_graph
from repro.partition.matching import heavy_edge_matching, random_matching


def check_valid_matching(graph, cmap, n_coarse):
    """Every coarse vertex has 1 or 2 fine vertices; matched pairs are
    adjacent in the graph."""
    assert len(cmap) == graph.num_vertices
    assert cmap.min() >= 0 and cmap.max() == n_coarse - 1
    counts = np.bincount(cmap, minlength=n_coarse)
    assert counts.min() >= 1
    assert counts.max() <= 2
    for c in np.nonzero(counts == 2)[0]:
        u, v = np.nonzero(cmap == c)[0]
        assert v in graph.neighbors(u)


class TestHeavyEdgeMatching:
    def test_valid_on_grid(self):
        g = grid_graph(8, 8)
        cmap, nc = heavy_edge_matching(g, seed=0)
        check_valid_matching(g, cmap, nc)

    def test_shrinks_substantially(self):
        g = grid_graph(20, 20)
        _, nc = heavy_edge_matching(g, seed=0)
        assert nc <= 0.65 * g.num_vertices  # most vertices matched

    def test_prefers_heavy_edges(self):
        # path 0-1-2 with weights 10, 1: the (0,1) edge must be matched
        g = from_edge_list(
            3, np.array([[0, 1], [1, 2]]), weights=np.array([10, 1])
        )
        cmap, nc = heavy_edge_matching(g, seed=0)
        assert cmap[0] == cmap[1]
        assert cmap[2] != cmap[0]

    def test_edgeless_graph_all_singletons(self):
        g = from_edge_list(5, np.empty((0, 2)))
        cmap, nc = heavy_edge_matching(g, seed=0)
        assert nc == 5
        assert sorted(cmap.tolist()) == list(range(5))

    def test_deterministic_seed(self):
        g = grid_graph(10, 10)
        c1, n1 = heavy_edge_matching(g, seed=9)
        c2, n2 = heavy_edge_matching(g, seed=9)
        assert n1 == n2
        assert np.array_equal(c1, c2)

    def test_single_vertex(self):
        g = from_edge_list(1, np.empty((0, 2)))
        cmap, nc = heavy_edge_matching(g, seed=0)
        assert nc == 1

    @given(st.integers(0, 10**6), st.integers(2, 12))
    @settings(max_examples=40, deadline=None)
    def test_property_valid_matching_on_random_graphs(self, seed, n):
        rng = np.random.default_rng(seed)
        m = rng.integers(0, 3 * n)
        edges = rng.integers(0, n, size=(m, 2))
        weights = rng.integers(1, 10, size=m)
        g = from_edge_list(n, edges, weights=weights)
        cmap, nc = heavy_edge_matching(g, seed=seed)
        check_valid_matching(g, cmap, nc)


class TestRandomMatching:
    def test_valid(self):
        g = grid_graph(7, 7)
        cmap, nc = random_matching(g, seed=0)
        check_valid_matching(g, cmap, nc)
