"""Tests for greedy k-way refinement and rebalancing."""

import numpy as np
import pytest

from repro.graph.build import grid_graph
from repro.graph.metrics import edge_cut, load_imbalance
from repro.partition.balance import target_weights, violation
from repro.partition.config import PartitionOptions
from repro.partition.refine_kway import greedy_kway_refine, rebalance_kway


class TestGreedyKwayRefine:
    def test_improves_noisy_partition(self):
        g = grid_graph(12, 12)
        # good partition perturbed with noise
        part = (np.arange(144) % 12 // 3).astype(np.int64)
        rng = np.random.default_rng(0)
        noisy = part.copy()
        flip = rng.choice(144, size=20, replace=False)
        noisy[flip] = rng.integers(0, 4, size=20)
        before = edge_cut(g, noisy)
        out = greedy_kway_refine(g, noisy, 4, PartitionOptions(seed=0))
        assert edge_cut(g, out) < before

    def test_never_breaks_feasibility(self):
        g = grid_graph(10, 10)
        part = (np.arange(100) // 25).astype(np.int64)  # perfect balance
        opts = PartitionOptions(seed=0)
        out = greedy_kway_refine(g, part, 4, opts)
        imb = load_imbalance(g, out, 4)
        assert imb.max() <= opts.ubfactor + 1e-9

    def test_idempotent_on_converged(self):
        g = grid_graph(8, 8)
        part = (np.arange(64) % 8 // 4).astype(np.int64)
        opts = PartitionOptions(seed=0)
        once = greedy_kway_refine(g, part.copy(), 2, opts)
        twice = greedy_kway_refine(g, once.copy(), 2, opts)
        assert edge_cut(g, twice) == edge_cut(g, once)

    def test_k_equal_one_noop(self):
        g = grid_graph(5, 5)
        part = np.zeros(25, dtype=np.int64)
        out = greedy_kway_refine(g, part, 1, PartitionOptions(seed=0))
        assert (out == 0).all()


class TestRebalanceKway:
    def test_fixes_overloaded_partition(self):
        g = grid_graph(10, 10)
        part = np.zeros(100, dtype=np.int64)
        part[:20] = 1
        part[20:40] = 2
        part[40:60] = 3  # partition 0 has 40, others 20
        opts = PartitionOptions(seed=0)
        out, moved = rebalance_kway(g, part, 4, opts)
        imb = load_imbalance(g, out, 4)
        assert imb.max() <= opts.ubfactor + 1e-9
        assert moved > 0

    def test_noop_when_feasible(self):
        g = grid_graph(10, 10)
        part = (np.arange(100) // 25).astype(np.int64)
        out, moved = rebalance_kway(g, part, 4, PartitionOptions(seed=0))
        assert moved == 0

    def test_two_constraint_rebalance(self):
        g = grid_graph(10, 10)
        vw = np.ones((100, 2), dtype=np.int64)
        vw[:, 1] = (np.arange(100) < 20).astype(np.int64)
        g = g.with_vwgts(vw)
        # all the constraint-1 weight initially in partition 0
        part = (np.arange(100) // 25).astype(np.int64)
        opts = PartitionOptions(seed=0, ubfactor=1.25)
        out, moved = rebalance_kway(g, part, 4, opts)
        imb = load_imbalance(g, out, 4)
        assert imb[1] <= opts.ubfactor + 1e-9
        assert imb[0] <= opts.ubfactor + 1e-9

    def test_max_moves_respected(self):
        g = grid_graph(10, 10)
        part = np.zeros(100, dtype=np.int64)
        part[:5] = 1
        out, moved = rebalance_kway(
            g, part, 2, PartitionOptions(seed=0), max_moves=3
        )
        assert moved <= 3

    def test_reports_move_count(self):
        g = grid_graph(8, 8)
        part = np.zeros(64, dtype=np.int64)
        part[:16] = 1
        before = part.copy()
        out, moved = rebalance_kway(g, part, 2, PartitionOptions(seed=0))
        assert moved == int(np.count_nonzero(out != before))
