"""Tests for the distributed diffusion repartitioner."""

import numpy as np
import pytest

from repro.graph.build import grid_graph
from repro.graph.metrics import load_imbalance
from repro.partition.config import PartitionOptions
from repro.partition.kway import partition_kway
from repro.partition.parallel_repartition import (
    parallel_diffusion_repartition,
)


def overloaded_case(seed=0):
    """Balanced 4-way partition whose weights drift out of balance."""
    g = grid_graph(14, 14)
    part = partition_kway(g, 4, PartitionOptions(seed=seed))
    vw = np.ones((196, 1), dtype=np.int64)
    vw[part == 0] = 3  # partition 0's region triples its load
    return g.with_vwgts(vw), part


class TestParallelDiffusion:
    def test_reduces_imbalance(self):
        g, part = overloaded_case()
        before = load_imbalance(g, part, 4).max()
        res = parallel_diffusion_repartition(
            g, part, 4, PartitionOptions(seed=0)
        )
        after = load_imbalance(g, res.part, 4).max()
        assert after < before
        assert res.n_moved > 0

    def test_noop_when_balanced(self):
        g = grid_graph(12, 12)
        part = partition_kway(g, 4, PartitionOptions(seed=0))
        res = parallel_diffusion_repartition(
            g, part, 4, PartitionOptions(seed=0)
        )
        assert res.n_moved == 0
        assert res.ledger.items("repart-migrate") == 0

    def test_ledger_accounts_migration(self):
        g, part = overloaded_case(1)
        res = parallel_diffusion_repartition(
            g, part, 4, PartitionOptions(seed=0)
        )
        assert res.ledger.items("repart-migrate") == res.n_moved
        assert res.ledger.items("repart-load") > 0

    def test_moves_fewer_than_total(self):
        """Diffusion is incremental: most vertices stay put."""
        g, part = overloaded_case(2)
        res = parallel_diffusion_repartition(
            g, part, 4, PartitionOptions(seed=0)
        )
        assert res.n_moved < g.num_vertices / 3

    def test_movement_matches_label_diff(self):
        g, part = overloaded_case(3)
        res = parallel_diffusion_repartition(
            g, part, 4, PartitionOptions(seed=0)
        )
        # every migrated vertex changed label exactly once per shipment;
        # n_moved >= the net label changes
        assert res.n_moved >= int(np.count_nonzero(res.part != part))

    def test_validation(self):
        g = grid_graph(4, 4)
        with pytest.raises(ValueError, match="length"):
            parallel_diffusion_repartition(
                g, np.zeros(3, dtype=int), 2
            )
        with pytest.raises(ValueError, match="out of range"):
            parallel_diffusion_repartition(g, np.full(16, 9), 2)

    def test_comparable_to_serial(self):
        """Balance after the distributed protocol is in the same league
        as the serial diffusion repartitioner."""
        from repro.partition.repartition import diffusion_repartition

        g, part = overloaded_case(4)
        par = parallel_diffusion_repartition(
            g, part.copy(), 4, PartitionOptions(seed=0)
        )
        ser = diffusion_repartition(
            g, part.copy(), 4, PartitionOptions(seed=0)
        )
        par_imb = load_imbalance(g, par.part, 4).max()
        ser_imb = load_imbalance(g, ser.part, 4).max()
        assert par_imb <= max(1.25, ser_imb * 1.25)
