"""Tests for the coarsening driver."""

import numpy as np
import pytest

from repro.graph.build import from_edge_list, grid_graph
from repro.partition.coarsen import coarsen
from repro.partition.config import PartitionOptions


class TestCoarsen:
    def test_reaches_target_size(self):
        g = grid_graph(20, 20)
        h = coarsen(g, PartitionOptions(coarsen_to=60, seed=0))
        assert h.coarsest.num_vertices <= 120  # within 2x of target
        assert h.coarsest.num_vertices < g.num_vertices

    def test_levels_chain_consistently(self):
        g = grid_graph(12, 12)
        h = coarsen(g, PartitionOptions(coarsen_to=20, seed=0))
        assert h.levels[0].graph is g
        current = g
        for lvl in h.levels:
            assert lvl.graph.num_vertices == len(lvl.cmap)
            current = lvl.graph
        # cmap of the last level maps into the coarsest graph
        assert h.levels[-1].cmap.max() == h.coarsest.num_vertices - 1

    def test_total_weight_invariant_across_levels(self):
        g = grid_graph(15, 15).with_vwgts(
            np.column_stack(
                (np.ones(225, dtype=int), np.arange(225) % 3 == 0)
            ).astype(np.int64)
        )
        h = coarsen(g, PartitionOptions(coarsen_to=30, seed=0))
        assert h.coarsest.total_vwgt.tolist() == g.total_vwgt.tolist()

    def test_already_small_graph_has_no_levels(self):
        g = grid_graph(4, 4)
        h = coarsen(g, PartitionOptions(coarsen_to=100, seed=0))
        assert h.levels == []
        assert h.coarsest is g

    def test_stalls_gracefully_on_star(self):
        """A star graph can only match one pair per round; coarsening
        must stop rather than loop."""
        n = 50
        edges = np.column_stack((np.zeros(n - 1, dtype=int), np.arange(1, n)))
        g = from_edge_list(n, edges)
        h = coarsen(g, PartitionOptions(coarsen_to=5, seed=0))
        # did not reach 5, but terminated with valid levels
        for lvl in h.levels:
            assert lvl.graph.num_vertices > 0
        h.coarsest.validate()

    def test_project_roundtrip(self):
        g = grid_graph(10, 10)
        h = coarsen(g, PartitionOptions(coarsen_to=25, seed=0))
        part = np.arange(h.coarsest.num_vertices) % 2
        lifted = part
        for i in range(len(h.levels) - 1, -1, -1):
            lifted = h.project(lifted, i)
        assert len(lifted) == g.num_vertices
        assert set(np.unique(lifted)) <= {0, 1}
