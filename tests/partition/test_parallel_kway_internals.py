"""Tests for the distributed partitioner's internal building blocks."""

import numpy as np
import pytest

from repro.graph.build import from_edge_list, grid_graph
from repro.partition.parallel_kway import _halo_items, _local_matching
from repro.utils.rng import as_rng


class TestLocalMatching:
    def test_never_matches_across_ranks(self):
        g = grid_graph(8, 8)
        owner = (np.arange(64) >= 32).astype(np.int64)
        cmap, n_coarse = _local_matching(g, owner, as_rng(0))
        # coarse vertices formed by pairs must be same-rank pairs
        for c in range(n_coarse):
            members = np.nonzero(cmap == c)[0]
            assert len(np.unique(owner[members])) == 1

    def test_valid_matching_structure(self):
        g = grid_graph(10, 10)
        owner = (np.arange(100) % 4).astype(np.int64)
        cmap, n_coarse = _local_matching(g, owner, as_rng(1))
        counts = np.bincount(cmap, minlength=n_coarse)
        assert counts.min() >= 1 and counts.max() <= 2
        assert cmap.min() == 0 and cmap.max() == n_coarse - 1

    def test_shrinks_within_rank_blocks(self):
        """Contiguous blocks leave plenty of local edges, so matching
        still gets a solid reduction."""
        g = grid_graph(16, 16)
        owner = (np.arange(256) >= 128).astype(np.int64)
        _, n_coarse = _local_matching(g, owner, as_rng(2))
        assert n_coarse <= 0.7 * 256

    def test_fully_scattered_owners_stall(self):
        """With owners assigned so no edge is rank-local, nothing can
        match — the caller's stall detection then stops coarsening."""
        g = grid_graph(6, 6)
        owner = (np.arange(36) % 2).astype(np.int64)
        # 6-wide grid with parity owners: vertex v=(x*6+y); neighbours
        # differ by 1 or 6 -> parity differs for ±1, same for ±6? 6 is
        # even so x-neighbours share parity; use a coloring where both
        # directions cross: owner = (x + y) % 2
        xs, ys = np.divmod(np.arange(36), 6)
        owner = ((xs + ys) % 2).astype(np.int64)
        cmap, n_coarse = _local_matching(g, owner, as_rng(3))
        assert n_coarse == 36  # checkerboard: every edge crosses ranks


class TestHaloItems:
    def test_counts_distinct_boundary_values(self):
        # path 0-1-2 with owners [0, 0, 1]: vertex 1 is rank 0's only
        # boundary vertex toward rank 1; vertex 2 likewise toward rank 0
        g = from_edge_list(3, np.array([[0, 1], [1, 2]]))
        owner = np.array([0, 0, 1])
        items = _halo_items(g, owner)
        assert items == {(0, 1): 1, (1, 0): 1}

    def test_vertex_shipped_once_per_remote_rank(self):
        # star centre owned by 0 with leaves on ranks 1 and 2: the
        # centre ships once to each remote rank regardless of how many
        # leaves live there
        g = from_edge_list(
            5, np.array([[0, 1], [0, 2], [0, 3], [0, 4]])
        )
        owner = np.array([0, 1, 1, 2, 2])
        items = _halo_items(g, owner)
        assert items[(0, 1)] == 1
        assert items[(0, 2)] == 1
        # each leaf ships itself to rank 0
        assert items[(1, 0)] == 2
        assert items[(2, 0)] == 2

    def test_no_cross_edges_no_halo(self):
        g = from_edge_list(4, np.array([[0, 1], [2, 3]]))
        owner = np.array([0, 0, 1, 1])
        assert _halo_items(g, owner) == {}
