"""Tests for priority-queue k-way FM refinement."""

import numpy as np
import pytest

from repro.graph.build import grid_graph
from repro.graph.metrics import edge_cut, load_imbalance
from repro.partition.config import PartitionOptions
from repro.partition.refine_kway import greedy_kway_refine
from repro.partition.refine_kway_fm import kway_fm_refine


class TestKwayFmRefine:
    def test_improves_noisy_partition(self):
        g = grid_graph(14, 14)
        part = (np.arange(196) % 14 // 4).astype(np.int64)
        part = np.clip(part, 0, 3)
        rng = np.random.default_rng(0)
        flip = rng.choice(196, size=30, replace=False)
        part[flip] = rng.integers(0, 4, 30)
        before = edge_cut(g, part)
        out = kway_fm_refine(g, part, 4, PartitionOptions(seed=0))
        assert edge_cut(g, out) < before

    def test_never_breaks_feasibility(self):
        g = grid_graph(12, 12)
        part = (np.arange(144) // 36).astype(np.int64)
        opts = PartitionOptions(seed=0)
        out = kway_fm_refine(g, part, 4, opts)
        assert load_imbalance(g, out, 4).max() <= opts.ubfactor + 1e-9

    def test_escapes_greedy_local_minimum(self):
        """FM must do at least as well as the positive-gain-only greedy
        sweep from the same start."""
        g = grid_graph(16, 16)
        rng = np.random.default_rng(1)
        # a feasible but messy start: random balanced assignment
        part = np.repeat(np.arange(4), 64).astype(np.int64)
        rng.shuffle(part)
        opts = PartitionOptions(seed=0)
        greedy = greedy_kway_refine(g, part.copy(), 4, opts)
        fm = kway_fm_refine(g, part.copy(), 4, opts)
        assert edge_cut(g, fm) <= edge_cut(g, greedy)

    def test_converged_input_unchanged_cut(self):
        g = grid_graph(8, 8)
        part = (np.arange(64) % 8 // 4).astype(np.int64)
        out = kway_fm_refine(g, part.copy(), 2, PartitionOptions(seed=0))
        assert edge_cut(g, out) <= 8

    def test_two_constraints_respected(self):
        g = grid_graph(12, 12)
        vw = np.ones((144, 2), dtype=np.int64)
        vw[:, 1] = (np.arange(144) % 6 == 0).astype(np.int64)
        g = g.with_vwgts(vw)
        part = (np.arange(144) // 36).astype(np.int64)
        opts = PartitionOptions(seed=0, ubfactor=1.30)
        before_imb = load_imbalance(g, part, 4)
        out = kway_fm_refine(g, part, 4, opts)
        after_imb = load_imbalance(g, out, 4)
        # feasible moves only: no constraint newly violated
        for j in range(2):
            if before_imb[j] <= opts.ubfactor:
                assert after_imb[j] <= opts.ubfactor + 1e-9

    def test_passes_parameter(self):
        g = grid_graph(10, 10)
        part = np.repeat(np.arange(2), 50).astype(np.int64)
        np.random.default_rng(0).shuffle(part)
        out = kway_fm_refine(
            g, part, 2, PartitionOptions(seed=0), passes=1
        )
        assert len(out) == 100
