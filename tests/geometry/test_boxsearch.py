"""Tests for the bounding-box-filter global search."""

import numpy as np
import pytest

from repro.geometry.boxsearch import SearchPlan, bbox_filter_search


def two_cluster_setup():
    """Two well-separated clusters of contact points, one element in
    each cluster plus one spanning element."""
    pts = np.concatenate(
        [np.random.default_rng(0).random((20, 2)),
         np.random.default_rng(1).random((20, 2)) + [5.0, 0.0]]
    )
    part = np.repeat([0, 1], 20)
    boxes = np.array(
        [
            [[0.1, 0.1], [0.3, 0.3]],    # inside cluster 0
            [[5.1, 0.1], [5.3, 0.3]],    # inside cluster 1
            [[0.5, 0.2], [5.5, 0.4]],    # spans both
        ]
    )
    owner = np.array([0, 1, 0])
    return boxes, owner, pts, part


class TestBboxFilterSearch:
    def test_local_elements_not_sent(self):
        boxes, owner, pts, part = two_cluster_setup()
        plan = bbox_filter_search(boxes, owner, pts, part, 2)
        assert plan.sends_for(0).tolist() == []
        assert plan.sends_for(1).tolist() == []

    def test_spanning_element_sent(self):
        boxes, owner, pts, part = two_cluster_setup()
        plan = bbox_filter_search(boxes, owner, pts, part, 2)
        assert plan.sends_for(2).tolist() == [1]
        assert plan.n_remote == 1

    def test_false_positive_from_bbox_overlap(self):
        """An L-shaped subdomain's bbox covers space it does not own —
        the classic false positive the paper's tree descriptors
        eliminate."""
        # partition 0 is an L around partition 1's little square
        pts0 = np.array(
            [[0, 0], [4, 0], [0, 4], [1, 0], [0, 1], [4, 1]], dtype=float
        )
        pts1 = np.array([[3.4, 3.4], [3.6, 3.6]])
        pts = np.concatenate([pts0, pts1])
        part = np.array([0] * 6 + [1] * 2)
        # an element owned by 1 sitting in the empty corner of 0's bbox
        boxes = np.array([[[2.0, 2.0], [2.2, 2.2]]])
        owner = np.array([1])
        plan = bbox_filter_search(boxes, owner, pts, part, 2)
        assert plan.n_remote == 1  # false positive: sent to 0 anyway

    def test_pad_widens_sends(self):
        boxes, owner, pts, part = two_cluster_setup()
        near_miss = np.array([[[1.2, 0.0], [1.4, 0.5]]])
        plan0 = bbox_filter_search(near_miss, np.array([0]), pts, part, 2)
        assert plan0.n_remote == 0
        plan1 = bbox_filter_search(
            near_miss, np.array([0]), pts, part, 2, pad=4.0
        )
        assert plan1.n_remote == 1

    def test_receive_counts(self):
        boxes, owner, pts, part = two_cluster_setup()
        plan = bbox_filter_search(boxes, owner, pts, part, 2)
        recv = plan.per_partition_receive_counts(2)
        assert recv.tolist() == [0, 1]

    def test_length_mismatch_rejected(self):
        boxes, owner, pts, part = two_cluster_setup()
        with pytest.raises(ValueError, match="lengths differ"):
            bbox_filter_search(boxes, owner[:2], pts, part, 2)


class TestSearchPlan:
    def test_n_remote_counts_matrix(self):
        m = np.zeros((3, 2), dtype=bool)
        m[0, 1] = m[2, 0] = True
        plan = SearchPlan(send_matrix=m, owner=np.array([0, 0, 1]))
        assert plan.n_remote == 2
