"""Tests for AABB utilities."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry.bbox import (
    bbox_of_points,
    bboxes_intersect_matrix,
    bboxes_of_groups,
    box_contains_points,
    box_volume,
    element_bboxes,
)


class TestBboxOfPoints:
    def test_basic(self):
        pts = np.array([[0.0, 1.0], [2.0, -1.0], [1.0, 0.5]])
        box = bbox_of_points(pts)
        assert box[0].tolist() == [0.0, -1.0]
        assert box[1].tolist() == [2.0, 1.0]

    def test_single_point_degenerate(self):
        box = bbox_of_points(np.array([[3.0, 4.0]]))
        assert np.array_equal(box[0], box[1])

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            bbox_of_points(np.empty((0, 2)))


class TestGroupBoxes:
    def test_groups(self):
        pts = np.array([[0.0, 0.0], [1.0, 1.0], [5.0, 5.0]])
        boxes = bboxes_of_groups(pts, np.array([0, 0, 1]), 3)
        assert boxes[0, 0].tolist() == [0.0, 0.0]
        assert boxes[0, 1].tolist() == [1.0, 1.0]
        assert boxes[1, 0].tolist() == [5.0, 5.0]

    def test_empty_group_intersects_nothing(self):
        pts = np.array([[0.0, 0.0]])
        boxes = bboxes_of_groups(pts, np.array([0]), 2)
        probe = np.array([[[-10.0, -10.0], [10.0, 10.0]]])
        hits = bboxes_intersect_matrix(probe, boxes)
        assert hits[0, 0]
        assert not hits[0, 1]  # inverted box never hits


class TestElementBboxes:
    def test_quad_faces(self):
        pts = np.array([[0.0, 0.0], [1.0, 0.0], [1.0, 2.0], [0.0, 2.0]])
        conn = np.array([[0, 1, 2, 3]])
        boxes = element_bboxes(pts, conn)
        assert boxes[0, 0].tolist() == [0.0, 0.0]
        assert boxes[0, 1].tolist() == [1.0, 2.0]

    def test_3d(self):
        pts = np.random.default_rng(0).random((10, 3))
        conn = np.array([[0, 1, 2], [3, 4, 5]])
        boxes = element_bboxes(pts, conn)
        assert boxes.shape == (2, 2, 3)
        assert (boxes[:, 0] <= boxes[:, 1]).all()


class TestIntersectMatrix:
    def test_touching_counts(self):
        a = np.array([[[0.0, 0.0], [1.0, 1.0]]])
        b = np.array([[[1.0, 0.0], [2.0, 1.0]]])  # shares an edge
        assert bboxes_intersect_matrix(a, b)[0, 0]

    def test_disjoint(self):
        a = np.array([[[0.0, 0.0], [1.0, 1.0]]])
        b = np.array([[[2.0, 2.0], [3.0, 3.0]]])
        assert not bboxes_intersect_matrix(a, b)[0, 0]

    def test_pad_extends_reach(self):
        a = np.array([[[0.0, 0.0], [1.0, 1.0]]])
        b = np.array([[[1.5, 0.0], [2.0, 1.0]]])
        assert not bboxes_intersect_matrix(a, b)[0, 0]
        assert bboxes_intersect_matrix(a, b, pad=0.6)[0, 0]

    @given(st.integers(0, 10**6))
    @settings(max_examples=40, deadline=None)
    def test_property_matches_brute_force(self, seed):
        rng = np.random.default_rng(seed)
        lo_a = rng.random((6, 2))
        a = np.stack((lo_a, lo_a + rng.random((6, 2))), axis=1)
        lo_b = rng.random((5, 2))
        b = np.stack((lo_b, lo_b + rng.random((5, 2))), axis=1)
        got = bboxes_intersect_matrix(a, b)
        for i in range(6):
            for j in range(5):
                expect = all(
                    a[i, 0, d] <= b[j, 1, d] and a[i, 1, d] >= b[j, 0, d]
                    for d in range(2)
                )
                assert got[i, j] == expect


class TestContainsAndVolume:
    def test_contains_inclusive(self):
        box = np.array([[0.0, 0.0], [1.0, 1.0]])
        pts = np.array([[0.0, 0.0], [0.5, 0.5], [1.0, 1.0], [1.01, 0.5]])
        assert box_contains_points(box, pts).tolist() == [
            True, True, True, False,
        ]

    def test_volume(self):
        assert box_volume(np.array([[0.0, 0.0], [2.0, 3.0]])) == 6.0

    def test_inverted_box_zero_volume(self):
        assert box_volume(np.array([[1.0, 1.0], [0.0, 0.0]])) == 0.0
