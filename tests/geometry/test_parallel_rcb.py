"""Tests for distributed RCB."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry.parallel_rcb import parallel_rcb


class TestParallelRcb:
    def test_balanced_counts(self, spmd_backend):
        rng = np.random.default_rng(0)
        pts = rng.random((256, 2))
        owner = rng.integers(0, 4, 256)
        labels, ledger = parallel_rcb(
            pts, 8, owner, 4, backend=spmd_backend
        )
        counts = np.bincount(labels, minlength=8)
        assert counts.min() >= 24 and counts.max() <= 40

    def test_backends_bit_identical(self, spmd_backend):
        """Identical labels and ledger on every execution backend."""
        rng = np.random.default_rng(12)
        pts = rng.random((500, 3))
        owner = rng.integers(0, 4, 500)
        ref_labels, ref_ledger = parallel_rcb(
            pts, 6, owner, 4, backend="serial"
        )
        labels, ledger = parallel_rcb(
            pts, 6, owner, 4, backend=spmd_backend
        )
        assert np.array_equal(labels, ref_labels)
        assert ledger.summary() == ref_ledger.summary()

    def test_non_power_of_two(self):
        rng = np.random.default_rng(1)
        pts = rng.random((210, 3))
        owner = rng.integers(0, 3, 210)
        labels, _ = parallel_rcb(pts, 7, owner, 3)
        counts = np.bincount(labels, minlength=7)
        assert counts.min() >= 20 and counts.max() <= 42

    def test_parts_axis_separable_at_root(self):
        """The first cut must actually separate label groups along one
        axis (RCB geometry)."""
        rng = np.random.default_rng(2)
        pts = rng.random((128, 2))
        owner = rng.integers(0, 4, 128)
        labels, _ = parallel_rcb(pts, 2, owner, 4)
        left = pts[labels == 0]
        right = pts[labels == 1]
        separable = False
        for dim in range(2):
            if left[:, dim].max() <= right[:, dim].min() or (
                right[:, dim].max() <= left[:, dim].min()
            ):
                separable = True
        assert separable

    def test_weighted(self):
        rng = np.random.default_rng(3)
        pts = rng.random((100, 2))
        w = np.ones(100)
        w[:10] = 10.0  # heavy corner
        owner = rng.integers(0, 2, 100)
        labels, _ = parallel_rcb(pts, 2, owner, 2, weights=w)
        w0 = w[labels == 0].sum()
        assert 0.35 * w.sum() <= w0 <= 0.65 * w.sum()

    def test_communication_is_counts_not_points(self):
        """Items moved are O(iterations × regions), far below the point
        count — the protocol's selling point."""
        rng = np.random.default_rng(4)
        n = 4000
        pts = rng.random((n, 2))
        owner = rng.integers(0, 8, n)
        labels, ledger = parallel_rcb(pts, 8, owner, 8)
        assert ledger.items("rcb-count") < n
        assert ledger.items("rcb-extent") < n

    def test_single_rank_no_comm(self):
        rng = np.random.default_rng(5)
        pts = rng.random((64, 2))
        labels, ledger = parallel_rcb(
            pts, 4, np.zeros(64, dtype=int), 1
        )
        assert ledger.total_items() == 0
        assert (np.bincount(labels, minlength=4) > 0).all()

    def test_matches_serial_balance(self):
        """Distributed and serial RCB deliver the same count balance on
        the same input."""
        from repro.geometry.rcb import rcb_partition

        rng = np.random.default_rng(6)
        pts = rng.random((300, 2))
        serial_labels, _ = rcb_partition(pts, 6)
        par_labels, _ = parallel_rcb(
            pts, 6, rng.integers(0, 4, 300), 4
        )
        sc = np.bincount(serial_labels, minlength=6)
        pc = np.bincount(par_labels, minlength=6)
        assert abs(sc.max() - pc.max()) <= 5

    def test_validation(self):
        pts = np.random.default_rng(0).random((10, 2))
        with pytest.raises(ValueError, match="k must be"):
            parallel_rcb(pts, 0, np.zeros(10, dtype=int), 1)
        with pytest.raises(ValueError, match="at least k"):
            parallel_rcb(pts, 20, np.zeros(10, dtype=int), 1)
        with pytest.raises(ValueError, match="align"):
            parallel_rcb(pts, 2, np.zeros(5, dtype=int), 1)
        with pytest.raises(ValueError, match="out of range"):
            parallel_rcb(pts, 2, np.full(10, 3), 2)

    @given(st.integers(0, 10**6), st.integers(2, 8), st.integers(1, 5))
    @settings(max_examples=20, deadline=None)
    def test_property_all_parts_nonempty(self, seed, k, n_ranks):
        rng = np.random.default_rng(seed)
        pts = rng.random((k * 12, 2))
        owner = rng.integers(0, n_ranks, len(pts))
        labels, _ = parallel_rcb(pts, k, owner, n_ranks)
        assert (np.bincount(labels, minlength=k) > 0).all()

    def test_on_real_scene(self, small_sequence):
        """Structured-mesh contact points stack on coordinate planes, so
        threshold cuts cannot split tie blocks — serial RCB has the same
        limit; the bound here matches what serial achieves (~1.3–1.5)."""
        snap = small_sequence[0]
        coords = snap.mesh.nodes[snap.contact_nodes]
        owner = (np.arange(len(coords)) % 4).astype(np.int64)
        labels, ledger = parallel_rcb(coords, 4, owner, 4)
        counts = np.bincount(labels, minlength=4)
        assert counts.max() <= 1.55 * len(coords) / 4
        assert counts.min() > 0
