"""Direct tests for RCB's weighted-quantile threshold selection."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry.rcb import _weighted_quantile


class TestWeightedQuantile:
    def test_median_of_uniform(self):
        vals = np.arange(10, dtype=float)
        w = np.ones(10)
        t = _weighted_quantile(vals, w, 0.5)
        below = (vals <= t).sum()
        assert below == 5

    def test_threshold_between_points(self):
        vals = np.array([0.0, 1.0, 2.0, 3.0])
        t = _weighted_quantile(vals, np.ones(4), 0.5)
        assert 1.0 < t < 2.0  # midpoint, not on a point

    def test_respects_weights(self):
        vals = np.array([0.0, 1.0, 2.0, 3.0])
        w = np.array([10.0, 1.0, 1.0, 1.0])
        t = _weighted_quantile(vals, w, 0.5)
        # the first point alone carries >50% of the weight
        assert t < 1.0

    def test_zero_total_weight(self):
        vals = np.array([5.0, 6.0, 7.0])
        t = _weighted_quantile(vals, np.zeros(3), 0.5)
        assert t in vals  # falls back to a middle element

    def test_unsorted_input(self):
        vals = np.array([3.0, 0.0, 2.0, 1.0])
        t = _weighted_quantile(vals, np.ones(4), 0.5)
        assert 1.0 < t < 2.0

    @given(st.integers(0, 10**6), st.floats(0.1, 0.9))
    @settings(max_examples=60, deadline=None)
    def test_property_weight_split_near_target(self, seed, q):
        """The weight on the <= side lands within one max point-weight
        of the target fraction."""
        rng = np.random.default_rng(seed)
        n = int(rng.integers(2, 80))
        vals = rng.random(n)
        w = rng.random(n) + 0.05
        t = _weighted_quantile(vals, w, q)
        total = w.sum()
        below = w[vals <= t].sum()
        assert below >= q * total - w.max() - 1e-9
        assert below <= q * total + w.max() + 1e-9
