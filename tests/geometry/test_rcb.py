"""Tests for recursive coordinate bisection."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry.rcb import rcb_partition


class TestRCBPartition:
    def test_balanced_counts_power_of_two(self):
        rng = np.random.default_rng(0)
        pts = rng.random((128, 2))
        labels, tree = rcb_partition(pts, 8)
        counts = np.bincount(labels, minlength=8)
        assert counts.min() >= 12 and counts.max() <= 20

    def test_non_power_of_two(self):
        rng = np.random.default_rng(1)
        pts = rng.random((150, 2))
        labels, _ = rcb_partition(pts, 5)
        counts = np.bincount(labels, minlength=5)
        assert counts.min() >= 20 and counts.max() <= 40

    def test_3d(self):
        rng = np.random.default_rng(2)
        pts = rng.random((200, 3))
        labels, _ = rcb_partition(pts, 4)
        assert set(np.unique(labels)) == set(range(4))

    def test_weighted_split(self):
        # two clusters; the left one carries all the weight
        pts = np.concatenate(
            [np.random.default_rng(0).random((50, 2)),
             np.random.default_rng(1).random((50, 2)) + [10, 0]]
        )
        w = np.concatenate([np.full(50, 10.0), np.full(50, 0.1)])
        labels, _ = rcb_partition(pts, 2, weights=w)
        # the heavy cluster should be split, i.e. contain both labels
        assert len(np.unique(labels[:50])) == 2

    def test_parts_are_axis_separable(self):
        """Each pair of RCB parts is separated by some axis-parallel
        hyperplane along the cut structure — verify part bounding boxes
        are disjoint for sibling leaves by checking no point of one part
        falls strictly inside another part's bounding box interior along
        the first cut dimension."""
        rng = np.random.default_rng(3)
        pts = rng.random((100, 2))
        labels, tree = rcb_partition(pts, 2)
        root = tree.nodes[tree.root]
        left_pts = pts[labels == 0][:, root.dim]
        right_pts = pts[labels == 1][:, root.dim]
        assert left_pts.max() <= root.threshold <= right_pts.min()

    def test_assign_matches_build_labels(self):
        rng = np.random.default_rng(4)
        pts = rng.random((80, 2))
        labels, tree = rcb_partition(pts, 6)
        assert np.array_equal(tree.assign(pts), labels)

    def test_coincident_points_handled(self):
        pts = np.zeros((16, 2))  # all identical
        labels, _ = rcb_partition(pts, 4)
        counts = np.bincount(labels, minlength=4)
        assert counts.tolist() == [4, 4, 4, 4]

    def test_k_one(self):
        pts = np.random.default_rng(0).random((5, 2))
        labels, tree = rcb_partition(pts, 1)
        assert (labels == 0).all()
        assert tree.n_nodes == 1

    def test_errors(self):
        pts = np.random.default_rng(0).random((3, 2))
        with pytest.raises(ValueError, match="k must be"):
            rcb_partition(pts, 0)
        with pytest.raises(ValueError, match="at least k"):
            rcb_partition(pts, 5)

    @given(st.integers(0, 10**6), st.integers(2, 10))
    @settings(max_examples=30, deadline=None)
    def test_property_all_parts_nonempty(self, seed, k):
        rng = np.random.default_rng(seed)
        pts = rng.random((k * 10, 2))
        labels, _ = rcb_partition(pts, k)
        assert (np.bincount(labels, minlength=k) > 0).all()


class TestRCBUpdate:
    def test_small_motion_small_migration(self):
        rng = np.random.default_rng(5)
        pts = rng.random((200, 2))
        labels, tree = rcb_partition(pts, 8)
        moved_pts = pts + 0.004 * rng.standard_normal((200, 2))
        new_labels = tree.update(moved_pts)
        migrated = int(np.count_nonzero(new_labels != labels))
        assert migrated <= 20  # tiny motion, tiny migration

    def test_update_restores_balance_after_drift(self):
        rng = np.random.default_rng(6)
        pts = rng.random((200, 2))
        labels, tree = rcb_partition(pts, 4)
        # translate all points: labels from *stale* thresholds would be
        # wildly unbalanced, re-fit thresholds keep counts even
        drifted = pts + np.array([0.8, 0.0])
        new_labels = tree.update(drifted)
        counts = np.bincount(new_labels, minlength=4)
        assert counts.min() >= 30 and counts.max() <= 70

    def test_update_handles_changed_point_count(self):
        rng = np.random.default_rng(7)
        pts = rng.random((100, 2))
        _, tree = rcb_partition(pts, 4)
        more = rng.random((140, 2))
        labels = tree.update(more)
        assert len(labels) == 140
        assert (np.bincount(labels, minlength=4) > 0).all()

    def test_update_is_stable_for_static_points(self):
        rng = np.random.default_rng(8)
        pts = rng.random((150, 2))
        labels, tree = rcb_partition(pts, 8)
        assert np.array_equal(tree.update(pts), labels)
