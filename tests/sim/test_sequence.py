"""Tests for snapshot sequences."""

import numpy as np
import pytest

from repro.mesh.surface import boundary_faces
from repro.sim.projectile import ImpactConfig
from repro.sim.sequence import (
    ContactSnapshot,
    MeshSequence,
    extract_contact_surface,
    simulate_impact,
)


class TestSimulateImpact:
    def test_snapshot_count(self, small_sequence):
        assert len(small_sequence) == 12

    def test_nodes_persistent_across_snapshots(self, small_sequence):
        n = small_sequence[0].mesh.num_nodes
        for s in small_sequence:
            assert s.mesh.num_nodes == n

    def test_elements_monotone_nonincreasing(self, small_sequence):
        counts = [s.mesh.num_elements for s in small_sequence]
        assert all(a >= b for a, b in zip(counts, counts[1:]))

    def test_tip_strictly_descends(self, small_sequence):
        tips = [s.tip_z for s in small_sequence]
        assert all(a > b for a, b in zip(tips, tips[1:]))

    def test_contact_nodes_are_mesh_nodes(self, small_sequence):
        for s in small_sequence:
            assert s.contact_nodes.max() < s.mesh.num_nodes
            # contact nodes are exactly the nodes of contact faces
            assert np.array_equal(
                s.contact_nodes, np.unique(s.contact_faces)
            )

    def test_contact_faces_are_boundary_faces(self, small_sequence):
        s = small_sequence[5]
        all_faces, _ = boundary_faces(s.mesh)
        keys = {tuple(sorted(f)) for f in all_faces.tolist()}
        for f in s.contact_faces.tolist():
            assert tuple(sorted(f)) in keys

    def test_projectile_faces_always_contact(self, small_sequence):
        for s in (small_sequence[0], small_sequence[-1]):
            owners = s.contact_face_owner
            proj_faces = (s.mesh.body_id[owners] == 0).sum()
            # the whole projectile surface is in the contact set
            faces, owner = boundary_faces(s.mesh)
            total_proj = (s.mesh.body_id[owner] == 0).sum()
            assert proj_faces == total_proj

    def test_contact_fraction_realistic(self, small_sequence):
        """Contact nodes should be a modest fraction of all nodes, like
        the EPIC mesh (~13%)."""
        s = small_sequence[0]
        frac = s.num_contact_nodes / s.mesh.num_nodes
        assert 0.03 <= frac <= 0.5

    def test_n_snapshots_override(self, small_config):
        seq = simulate_impact(small_config, n_snapshots=4)
        assert len(seq) == 4

    def test_zero_snapshots_rejected(self, small_config):
        with pytest.raises(ValueError, match="at least one"):
            simulate_impact(small_config, n_snapshots=0)

    def test_sequence_iteration_and_indexing(self, small_sequence):
        assert isinstance(small_sequence[0], ContactSnapshot)
        assert sum(1 for _ in small_sequence) == len(small_sequence)
        assert small_sequence.num_nodes == small_sequence[0].mesh.num_nodes


class TestExtractContactSurface:
    def test_capture_radius_limits_plate_faces(self, small_sequence):
        s = small_sequence[0]
        faces, owner, nodes = extract_contact_surface(
            s.mesh, capture_radius=0.5
        )
        wide_faces, _, _ = extract_contact_surface(
            s.mesh, capture_radius=100.0
        )
        assert len(faces) < len(wide_faces)

    def test_deterministic(self, small_config):
        a = simulate_impact(small_config)
        b = simulate_impact(small_config)
        for sa, sb in zip(a, b):
            assert np.array_equal(sa.mesh.nodes, sb.mesh.nodes)
            assert np.array_equal(sa.contact_faces, sb.contact_faces)
