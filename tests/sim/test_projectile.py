"""Tests for the impact scene simulator."""

import numpy as np
import pytest

from repro.sim.projectile import ImpactConfig, ImpactSimulator


@pytest.fixture(scope="module")
def sim():
    return ImpactSimulator(ImpactConfig(refine=0.6))


class TestSceneSetup:
    def test_three_bodies(self, sim):
        assert set(np.unique(sim.reference.body_id)) == {0, 1, 2}

    def test_projectile_above_plates(self, sim):
        ref = sim.reference
        proj_z = ref.nodes[sim.node_body == 0, 2]
        upper_z = ref.nodes[sim.node_body == 1, 2]
        lower_z = ref.nodes[sim.node_body == 2, 2]
        assert proj_z.min() >= upper_z.max()
        assert upper_z.min() > lower_z.max()

    def test_refine_scales_counts(self):
        coarse = ImpactSimulator(ImpactConfig(refine=0.5))
        fine = ImpactSimulator(ImpactConfig(refine=1.0))
        assert fine.reference.num_elements > 2 * coarse.reference.num_elements


class TestStateAt:
    def test_time_zero_nothing_eroded(self, sim):
        mesh, alive, tip = sim.state_at(0.0)
        assert alive.all()
        assert tip == pytest.approx(sim.config.standoff)

    def test_projectile_translates_rigidly(self, sim):
        m0, _, tip0 = sim.state_at(0.0)
        m1, _, tip1 = sim.state_at(5.0)
        proj = sim.node_body == 0
        dz = m1.nodes[proj, 2] - m0.nodes[proj, 2]
        assert np.allclose(dz, tip1 - tip0)
        # lateral coordinates unchanged
        assert np.allclose(m1.nodes[proj, :2], m0.nodes[proj, :2])

    def test_erosion_monotone(self, sim):
        masks = [sim.state_at(t)[1] for t in (0.0, 30.0, 60.0, 99.0)]
        for earlier, later in zip(masks, masks[1:]):
            # everything dead earlier stays dead later
            assert not (later & ~earlier).any()

    def test_erosion_confined_to_channel(self, sim):
        mesh, alive, _ = sim.state_at(99.0)
        dead = ~alive
        if dead.any():
            centroids = sim.reference.centroids()[dead]
            lateral = np.linalg.norm(centroids[:, :2], axis=1)
            assert lateral.max() <= sim.channel_radius + 1e-9

    def test_only_plates_erode(self, sim):
        _, alive, _ = sim.state_at(99.0)
        dead_bodies = sim.reference.body_id[~alive]
        assert 0 not in dead_bodies

    def test_negative_time_rejected(self, sim):
        with pytest.raises(ValueError, match="time"):
            sim.state_at(-1.0)


class TestConfig:
    def test_paper_scale_dimensions(self):
        sim = ImpactSimulator(ImpactConfig.paper_scale(n_steps=1))
        assert 15_000 <= sim.reference.num_nodes <= 22_000

    def test_epic_scale_matches_paper_node_count(self):
        """The EPIC analogue lands within a few percent of the paper's
        156,601 nodes (construction only; partitioning it is an
        explicitly opt-in example run)."""
        sim = ImpactSimulator(ImpactConfig.epic_scale(n_steps=1))
        n = sim.reference.num_nodes
        assert abs(n - 156_601) / 156_601 < 0.05

    def test_scaled_floors(self):
        c = ImpactConfig(refine=0.01).scaled()
        assert c.plate_nxy >= 2
        assert c.proj_n >= 2

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            ImpactConfig(n_steps=0)
        with pytest.raises(ValueError):
            ImpactConfig(plate_size=-1.0)
