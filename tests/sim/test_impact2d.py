"""Tests for the 2D punch scene and the 2D end-to-end pipeline."""

import numpy as np
import pytest

from repro.sim.impact2d import (
    Impact2DConfig,
    Impact2DSimulator,
    simulate_impact_2d,
)


@pytest.fixture(scope="module")
def seq2d():
    return simulate_impact_2d(Impact2DConfig(n_steps=25))


class TestScene2D:
    def test_three_bodies(self):
        sim = Impact2DSimulator(Impact2DConfig())
        assert set(np.unique(sim.reference.body_id)) == {0, 1, 2}
        assert sim.reference.dim == 2

    def test_punch_above_bars(self):
        sim = Impact2DSimulator(Impact2DConfig())
        y = sim.reference.nodes[:, 1]
        punch = sim.node_body == 0
        assert y[punch].min() >= y[~punch].max() - 1e-9

    def test_erosion_monotone_and_confined(self):
        sim = Impact2DSimulator(Impact2DConfig())
        prev = None
        for t in (0.0, 30.0, 60.0, 99.0):
            _, alive, _ = sim.state_at(t)
            if prev is not None:
                assert not (alive & ~prev).any()
            prev = alive
        dead = ~prev
        if dead.any():
            cx = sim.reference.centroids()[dead, 0]
            assert np.abs(cx).max() <= sim.channel_halfwidth + 1e-9

    def test_negative_time_rejected(self):
        sim = Impact2DSimulator(Impact2DConfig())
        with pytest.raises(ValueError, match="time"):
            sim.state_at(-0.5)


class TestSequence2D:
    def test_snapshot_structure(self, seq2d):
        s = seq2d[0]
        assert s.mesh.elem_type == "quad"
        assert s.contact_faces.shape[1] == 2  # edges
        assert s.num_contact_nodes > 0
        assert np.array_equal(s.contact_nodes, np.unique(s.contact_faces))

    def test_tip_descends_and_erodes(self, seq2d):
        tips = [s.tip_z for s in seq2d]
        assert all(a > b for a, b in zip(tips, tips[1:]))
        elems = [s.mesh.num_elements for s in seq2d]
        assert elems[-1] <= elems[0]

    def test_zero_snapshots_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            simulate_impact_2d(Impact2DConfig(n_steps=5), n_snapshots=0)


class TestPipeline2D:
    def test_mcml_dt_on_2d(self, seq2d):
        """The full algorithm runs unchanged on the 2D workload."""
        from repro.core.mcml_dt import MCMLDTPartitioner
        from repro.core.weights import build_contact_graph
        from repro.graph.metrics import load_imbalance

        snap = seq2d[0]
        k = 4
        pt = MCMLDTPartitioner(k)
        pt.fit(snap)
        g = build_contact_graph(snap)
        imb = load_imbalance(g, pt.part, k)
        assert imb[0] <= 1.15
        tree, _ = pt.build_descriptors(snap)
        plan = pt.search_plan(snap, tree)
        assert plan.n_remote >= 0

    def test_ml_rcb_on_2d(self, seq2d):
        from repro.core.ml_rcb import MLRCBPartitioner

        pt = MLRCBPartitioner(4)
        pt.fit(seq2d[0])
        for snap in seq2d.snapshots[1:5]:
            pt.update(snap)
        assert pt.m2m_comm_now() >= 0
        plan = pt.search_plan(seq2d[4])
        assert plan.n_remote >= 0

    def test_search_equivalence_2d(self, seq2d):
        """Serial == parallel candidate sets in 2D too."""
        from repro.core.contact_search import (
            parallel_contact_search,
            serial_candidate_pairs,
        )
        from repro.core.mcml_dt import MCMLDTParams, MCMLDTPartitioner
        from repro.geometry.bbox import element_bboxes

        snap = seq2d[15]
        k = 4
        pad = 0.25
        pt = MCMLDTPartitioner(k, MCMLDTParams(pad=pad))
        pt.fit(snap)
        plan = pt.search_plan(snap)
        boxes = element_bboxes(snap.mesh.nodes, snap.contact_faces)
        boxes[:, 0] -= pad
        boxes[:, 1] += pad
        coords = snap.mesh.nodes[snap.contact_nodes]
        serial = serial_candidate_pairs(
            boxes, snap.contact_faces, coords, snap.contact_nodes
        )
        parallel, _ = parallel_contact_search(
            plan, boxes, snap.contact_faces, coords,
            snap.contact_nodes, pt.part[snap.contact_nodes], k,
        )
        assert parallel == serial

    def test_local_search_2d(self, seq2d):
        from repro.core.contact_search import serial_candidate_pairs
        from repro.core.local_search import resolve_candidates
        from repro.geometry.bbox import element_bboxes

        snap = seq2d[20]
        boxes = element_bboxes(snap.mesh.nodes, snap.contact_faces)
        boxes[:, 0] -= 0.25
        boxes[:, 1] += 0.25
        pairs = serial_candidate_pairs(
            boxes, snap.contact_faces,
            snap.mesh.nodes[snap.contact_nodes], snap.contact_nodes,
        )
        res = resolve_candidates(
            snap.mesh.nodes, snap.contact_faces, sorted(pairs)
        )
        assert np.isfinite(res.gap).all()
