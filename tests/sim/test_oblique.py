"""Tests for oblique (slanted-axis) impact."""

import numpy as np
import pytest

from repro.sim.projectile import ImpactConfig, ImpactSimulator
from repro.sim.sequence import simulate_impact


@pytest.fixture(scope="module")
def oblique_sim():
    return ImpactSimulator(
        ImpactConfig(refine=0.7, obliquity=0.5, plate_nxy=20)
    )


class TestObliqueMotion:
    def test_projectile_drifts_laterally(self, oblique_sim):
        m0, _, tip0 = oblique_sim.state_at(0.0)
        m1, _, tip1 = oblique_sim.state_at(40.0)
        proj = oblique_sim.node_body == 0
        dx = (m1.nodes[proj, 0] - m0.nodes[proj, 0]).mean()
        descent = tip0 - tip1
        assert dx == pytest.approx(0.5 * descent)

    def test_zero_obliquity_no_drift(self):
        sim = ImpactSimulator(ImpactConfig(refine=0.6))
        m0, _, _ = sim.state_at(0.0)
        m1, _, _ = sim.state_at(40.0)
        proj = sim.node_body == 0
        assert np.allclose(m1.nodes[proj, 0], m0.nodes[proj, 0])

    def test_channel_is_slanted(self, oblique_sim):
        """Eroded elements in the lower plate sit at larger x than in
        the upper plate (the channel follows the slanted axis)."""
        _, alive, _ = oblique_sim.state_at(99.0)
        dead = ~alive
        ref = oblique_sim.reference
        if dead.sum() < 4:
            pytest.skip("not enough erosion at this resolution")
        centroids = ref.centroids()[dead]
        bodies = ref.body_id[dead]
        upper_x = centroids[bodies == 1, 0]
        lower_x = centroids[bodies == 2, 0]
        if len(upper_x) and len(lower_x):
            assert lower_x.mean() > upper_x.mean()

    def test_erosion_follows_axis(self, oblique_sim):
        """Every eroded centroid is within the channel radius of the
        slanted axis at its own depth."""
        _, alive, _ = oblique_sim.state_at(99.0)
        dead = ~alive
        ref = oblique_sim.reference
        c = ref.centroids()[dead]
        axis_x = 0.5 * (oblique_sim.config.standoff - c[:, 2])
        lateral = np.sqrt((c[:, 0] - axis_x) ** 2 + c[:, 1] ** 2)
        assert (lateral <= oblique_sim.channel_radius + 1e-9).all()


class TestObliqueSequence:
    def test_sequence_tracks_slanted_contact_zone(self):
        seq = simulate_impact(
            ImpactConfig(n_steps=12, refine=0.6, obliquity=0.5)
        )
        s = seq[0]
        assert s.num_contact_nodes > 0
        # pipeline runs end to end on the oblique workload
        from repro.core.mcml_dt import MCMLDTPartitioner

        pt = MCMLDTPartitioner(4)
        pt.fit(seq[5])
        tree, _ = pt.build_descriptors(seq[5])
        plan = pt.search_plan(seq[5], tree)
        assert plan.n_remote >= 0
        from repro.dtree.query import predict_partition

        coords = seq[5].mesh.nodes[seq[5].contact_nodes]
        assert np.array_equal(
            predict_partition(tree, coords),
            pt.part[seq[5].contact_nodes],
        )
