"""Tests for erosion and crater deformation."""

import numpy as np
import pytest

from repro.sim.erosion import channel_erosion_mask, crater_displacement


class TestErosionMask:
    def _centroids(self):
        # 3x3 column of centroids at z = 0, lateral spread
        xs = np.array([-1.0, 0.0, 1.0])
        cx, cy = np.meshgrid(xs, xs, indexing="ij")
        return np.column_stack(
            (cx.ravel(), cy.ravel(), np.zeros(9))
        )

    def test_radius_respected(self):
        c = self._centroids()
        mask = channel_erosion_mask(
            c, np.zeros(2), tip_z=-1.0, radius=0.5,
            body_id=np.ones(9, dtype=int), erodible_bodies=np.array([1]),
        )
        assert mask.sum() == 1  # only the centre column

    def test_tip_gates_erosion(self):
        c = self._centroids()
        # nose hasn't reached the elements yet (tip above centroids)
        mask = channel_erosion_mask(
            c, np.zeros(2), tip_z=0.5, radius=10.0,
            body_id=np.ones(9, dtype=int), erodible_bodies=np.array([1]),
        )
        assert mask.sum() == 0

    def test_projectile_never_erodes(self):
        c = self._centroids()
        mask = channel_erosion_mask(
            c, np.zeros(2), tip_z=-1.0, radius=10.0,
            body_id=np.zeros(9, dtype=int), erodible_bodies=np.array([1]),
        )
        assert mask.sum() == 0

    def test_off_axis_channel(self):
        c = self._centroids()
        mask = channel_erosion_mask(
            c, np.array([1.0, 1.0]), tip_z=-1.0, radius=0.5,
            body_id=np.ones(9, dtype=int), erodible_bodies=np.array([1]),
        )
        assert mask.sum() == 1
        assert mask.reshape(3, 3)[2, 2]

    def test_negative_radius_rejected(self):
        with pytest.raises(ValueError, match="radius"):
            channel_erosion_mask(
                self._centroids(), np.zeros(2), 0.0, -1.0,
                np.ones(9, dtype=int), np.array([1]),
            )


class TestCraterDisplacement:
    def _nodes(self):
        xs = np.linspace(-4, 4, 9)
        cx, cy = np.meshgrid(xs, xs, indexing="ij")
        return np.column_stack((cx.ravel(), cy.ravel(), np.zeros(81)))

    def test_decays_with_distance(self):
        nodes = self._nodes()
        disp = crater_displacement(
            nodes, np.zeros(2), tip_z=-1.0, channel_radius=0.5,
            amplitude=0.2, decay=1.0,
        )
        r = np.linalg.norm(nodes[:, :2], axis=1)
        mag = np.linalg.norm(disp, axis=1)
        near = mag[np.argsort(r)[:5]].mean()
        far = mag[np.argsort(r)[-5:]].mean()
        assert near > 3 * far

    def test_points_above_tip_unaffected(self):
        nodes = self._nodes()
        nodes[:, 2] = -5.0  # all below where the nose has reached
        disp = crater_displacement(
            nodes, np.zeros(2), tip_z=-1.0, channel_radius=0.5,
            amplitude=0.2, decay=1.0,
        )
        assert np.allclose(disp, 0.0)

    def test_radially_outward(self):
        nodes = self._nodes()
        disp = crater_displacement(
            nodes, np.zeros(2), tip_z=-1.0, channel_radius=0.5,
            amplitude=0.2, decay=1.0,
        )
        lateral = nodes[:, :2]
        r = np.linalg.norm(lateral, axis=1)
        nz = r > 1e-9
        dots = (disp[nz, :2] * lateral[nz]).sum(axis=1)
        assert (dots >= -1e-12).all()  # never pushed inward

    def test_axial_dishing_downward(self):
        nodes = self._nodes()
        disp = crater_displacement(
            nodes, np.zeros(2), tip_z=-1.0, channel_radius=0.5,
            amplitude=0.2, decay=1.0,
        )
        assert (disp[:, 2] <= 1e-12).all()
