"""Tests for projectile kinematics."""

import numpy as np
import pytest

from repro.sim.motion import ProjectileKinematics


def free_flight():
    return ProjectileKinematics(tip0=1.0, v0=0.5, slabs=[], drag=0.0)


class TestFreeFlight:
    def test_constant_speed(self):
        k = free_flight()
        z = k.tip_at(np.array([0.0, 1.0, 2.0, 4.0]))
        assert z[0] == pytest.approx(1.0)
        assert np.allclose(np.diff(z), [-0.5, -0.5, -1.0])

    def test_interpolation_between_substeps(self):
        k = free_flight()
        assert k.tip_at(np.array([0.5]))[0] == pytest.approx(0.75)


class TestDrag:
    def test_slows_inside_slab(self):
        k = ProjectileKinematics(
            tip0=1.0, v0=0.5, slabs=[(-5.0, 0.0)], drag=0.3, min_speed=0.01
        )
        z = k.tip_at(np.arange(0, 20, dtype=float))
        speeds = -np.diff(z)
        # speed before entering the slab vs after several slab steps
        assert speeds[0] == pytest.approx(0.5)
        assert speeds[-1] < 0.25

    def test_min_speed_floor(self):
        k = ProjectileKinematics(
            tip0=0.0, v0=0.5, slabs=[(-100.0, 100.0)], drag=0.9,
            min_speed=0.05,
        )
        z = k.tip_at(np.arange(0, 30, dtype=float))
        speeds = -np.diff(z)
        assert speeds.min() >= 0.05 - 1e-9

    def test_monotone_descent(self):
        k = ProjectileKinematics(
            tip0=2.0, v0=0.3, slabs=[(-1.0, 0.0), (-3.0, -2.0)], drag=0.2
        )
        z = k.tip_at(np.arange(0, 50, dtype=float))
        assert (np.diff(z) < 0).all()

    def test_no_reacceleration_after_exit(self):
        """Speed lost in a slab stays lost (no propulsion)."""
        k = ProjectileKinematics(
            tip0=1.0, v0=0.5, slabs=[(-2.0, 0.0)], drag=0.5, min_speed=0.01
        )
        z = k.tip_at(np.arange(0, 40, dtype=float))
        speeds = -np.diff(z)
        below = z[:-1] < -2.0  # steps after exiting the slab
        if below.any():
            exit_speeds = speeds[below]
            assert exit_speeds.max() <= speeds[0] / 2 + 1e-9


class TestValidation:
    def test_bad_drag(self):
        with pytest.raises(ValueError, match="drag"):
            ProjectileKinematics(tip0=0, v0=1, slabs=[], drag=1.5)

    def test_bad_v0(self):
        with pytest.raises(ValueError, match="v0"):
            ProjectileKinematics(tip0=0, v0=0, slabs=[])

    def test_bad_min_speed(self):
        with pytest.raises(ValueError, match="min_speed"):
            ProjectileKinematics(tip0=0, v0=1, slabs=[], min_speed=0)

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            free_flight().tip_at(np.array([-1.0]))

    def test_tip_speed_at(self):
        assert free_flight().tip_speed_at(0.0) == pytest.approx(0.5)
