"""Shared fixtures.

Expensive artefacts (the snapshot sequence, fitted partitioners) are
session-scoped; tests must not mutate them. Every stochastic component
is seeded so the suite is deterministic.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph.build import grid_graph
from repro.partition.config import PartitionOptions
from repro.sim.projectile import ImpactConfig
from repro.sim.sequence import simulate_impact


@pytest.fixture(scope="session")
def small_config():
    """A coarse, fast impact scene (~1.5k nodes)."""
    return ImpactConfig(n_steps=12, refine=0.6)


@pytest.fixture(scope="session")
def small_sequence(small_config):
    """12 snapshots of the coarse scene."""
    return simulate_impact(small_config)


@pytest.fixture(scope="session")
def mid_sequence():
    """30 snapshots at default resolution (~5k nodes) — used by the
    heavier integration tests."""
    return simulate_impact(ImpactConfig(n_steps=30))


@pytest.fixture()
def options():
    """Deterministic partitioner options."""
    return PartitionOptions(seed=42)


@pytest.fixture(scope="session")
def grid_16():
    return grid_graph(16, 16)


@pytest.fixture(scope="session")
def grid_3d():
    return grid_graph(8, 8, 6)


@pytest.fixture()
def rng():
    return np.random.default_rng(1234)


@pytest.fixture(
    scope="session",
    params=[
        ("serial", None),
        ("thread", None),
        ("process", None),
        ("sentinel", None),
        ("chaos", None),
        ("tcp://127.0.0.1:0?accept_timeout=30", None),
        ("serial", "compiled"),
        ("process", "compiled"),
        ("chaos", "compiled"),
    ],
    ids=lambda p: (
        ("tcp" if p[0].startswith("tcp:") else p[0])
        if p[1] is None
        else f"{p[0]}-{p[1]}"
    ),
)
def spmd_backend(request):
    """Each (execution backend, kernel tier) combination,
    session-scoped so the process backend's worker pool is spun up once
    for the whole run.  Tests using this fixture assert
    backend-independence: identical results and ledgers on every
    backend.  The ``sentinel`` variant additionally proves the
    supersteps never mutate shared state (it raises
    ``SharedStateMutationError`` if one does); the ``chaos`` variant
    exercises the fault-injection harness (a passthrough unless
    ``$REPRO_FAULT_PLAN`` schedules faults — the chaos CI job does,
    and results must STILL be identical).  The ``tcp`` variant runs
    the distributed coordinator against two locally spawned
    ``repro-agent`` processes over loopback sockets — the full
    ``repro.wire/1`` stack, same bit-identical results.  The
    ``*-compiled`` variants
    run the same assertions with ``REPRO_KERNELS=compiled``
    (``repro.runtime.compiled``): with numba the compiled kernels must
    be bit-identical to the serial/pure baseline, without it the
    per-kernel fallback must be equally invisible."""
    import os

    from repro.runtime.backends import build_backend
    from repro.runtime.compiled import KERNELS_ENV, set_kernel_tier

    name, tier = request.param
    saved_env = os.environ.get(KERNELS_ENV)
    if tier is not None:
        # env var too, so process-backend workers forked during the
        # session inherit the tier
        os.environ[KERNELS_ENV] = tier
        set_kernel_tier(tier)
    backend = build_backend(name, workers=2)
    yield backend
    backend.close()
    if tier is not None:
        set_kernel_tier(None)
        if saved_env is None:
            os.environ.pop(KERNELS_ENV, None)
        else:
            os.environ[KERNELS_ENV] = saved_env
