"""Tests for the installation self-check."""

from repro.selfcheck import main, run_selfcheck


class TestSelfcheck:
    def test_passes_quietly(self):
        assert run_selfcheck(verbose=False) is True

    def test_main_exit_code(self, capsys):
        assert main() == 0
        out = capsys.readouterr().out
        assert "self-check passed" in out
        # 7 stages: the repro-lint gate plus the six pipeline stages
        assert out.count("[    ok]") == 7
