"""Cross-subsystem integration and property tests.

These tie the whole pipeline together: random scene/parameter draws
must always yield valid partitions, exact descriptor classification,
self-send-free search plans, and a communication ledger that conserves
items. Failures here localise to interface contracts rather than any
single module.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.contact_search import parallel_contact_search
from repro.core.mcml_dt import MCMLDTParams, MCMLDTPartitioner
from repro.core.weights import build_contact_graph
from repro.dtree.query import predict_partition
from repro.geometry.bbox import element_bboxes
from repro.graph.metrics import load_imbalance
from repro.partition.config import PartitionOptions
from repro.sim.projectile import ImpactConfig
from repro.sim.sequence import simulate_impact


@settings(max_examples=6, deadline=None)
@given(
    seed=st.integers(0, 10**6),
    k=st.integers(2, 6),
    step=st.integers(0, 7),
)
def test_property_pipeline_contracts(seed, k, step):
    """For arbitrary (seed, k, snapshot): the fitted partition is a
    valid labelling balanced within a generous bound, the descriptor
    tree classifies the contact points exactly, and the plan never
    self-sends."""
    seq = simulate_impact(ImpactConfig(n_steps=8, refine=0.5))
    snap = seq[step]
    pt = MCMLDTPartitioner(
        k, MCMLDTParams(options=PartitionOptions(seed=seed))
    )
    result = pt.fit(snap)

    # partition contract
    assert result.labels is pt.part
    assert len(pt.part) == snap.mesh.num_nodes
    assert pt.part.min() >= 0 and pt.part.max() < k
    g = build_contact_graph(snap)
    assert load_imbalance(g, pt.part, k).max() <= 1.6

    # descriptor contract: exact classification
    tree, _ = pt.build_descriptors(snap)
    coords = snap.mesh.nodes[snap.contact_nodes]
    assert np.array_equal(
        predict_partition(tree, coords), pt.part[snap.contact_nodes]
    )

    # search-plan contract: no self sends
    plan = pt.search_plan(snap, tree)
    owners = plan.owner
    assert not plan.send_matrix[np.arange(len(owners)), owners].any()


class TestLedgerConservation:
    def test_parallel_search_conserves_items(self, small_sequence):
        """Every item sent is received: per-phase totals match across
        the rank ledgers."""
        snap = small_sequence[6]
        k = 4
        pt = MCMLDTPartitioner(
            k, MCMLDTParams(pad=0.2, options=PartitionOptions(seed=0))
        )
        pt.fit(snap)
        plan = pt.search_plan(snap)
        boxes = element_bboxes(snap.mesh.nodes, snap.contact_faces)
        boxes[:, 0] -= 0.2
        boxes[:, 1] += 0.2
        coords = snap.mesh.nodes[snap.contact_nodes]
        _, ledger = parallel_contact_search(
            plan, boxes, snap.contact_faces, coords,
            snap.contact_nodes, pt.part[snap.contact_nodes], k,
        )
        sent = sum(
            ledger.sent_by_rank[("contact-exchange", r)] for r in range(k)
        )
        recv = sum(
            ledger.received_by_rank[("contact-exchange", r)]
            for r in range(k)
        )
        assert sent == recv == ledger.items("contact-exchange")


class TestDeterminism:
    def test_full_evaluation_deterministic(self):
        """Identical seeds ⇒ identical metrics, end to end."""
        from repro.core.pipeline import evaluate_mcml_dt

        def run():
            seq = simulate_impact(ImpactConfig(n_steps=4, refine=0.5))
            res = evaluate_mcml_dt(
                seq, 3,
                MCMLDTParams(options=PartitionOptions(seed=7)),
            )
            return [
                (s.fe_comm, s.nt_nodes, s.n_remote) for s in res.steps
            ]

        assert run() == run()


class TestDriver2D:
    def test_driver_runs_on_2d_scene(self):
        """The production driver is dimension-agnostic."""
        from repro.core.driver import ContactStepDriver
        from repro.sim.impact2d import Impact2DConfig, simulate_impact_2d

        seq = simulate_impact_2d(Impact2DConfig(n_steps=8))
        driver = ContactStepDriver(
            3, MCMLDTParams(pad=0.2, options=PartitionOptions(seed=0))
        )
        results = driver.run(seq)
        assert len(results) == 8
        assert all(r.nt_nodes >= 1 for r in results)
        touched = [r for r in results if r.n_candidates]
        for r in touched:
            assert np.isfinite(r.resolution.gap).all()
