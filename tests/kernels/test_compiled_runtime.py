"""Fallback semantics, tier selection, and counter plumbing of the
compiled kernel runtime (``repro.runtime.compiled``).

These tests never require numba: they monkeypatch the runtime's two
seams (``_load_numba`` for "numba is not installed", ``_jit_compile``
for "this kernel fails to compile") and assert the contract the docs
promise — per-kernel fallback, exactly one ``RuntimeWarning``, correct
``kernel_calls_pure`` accounting, and no cross-kernel contamination of
the compile cache.
"""

from __future__ import annotations

import warnings

import numpy as np
import pytest

from repro.core.contact_search import row_majority
from repro.geometry.bbox import bboxes_intersect_matrix
from repro.obs import RunReport, Tracer
from repro.runtime import compiled as rc

ROW_MAJORITY = "repro.core.contact_search.row_majority"
BBOXES = "repro.geometry.bbox.bboxes_intersect_matrix"

LABELS = np.array([[1, 1, 2], [3, 2, 3]], dtype=np.int64)
BOXES_A = np.array([[[0.0, 0.0], [1.0, 1.0]]])
BOXES_B = np.array([[[0.5, 0.5], [2.0, 2.0]]])


@pytest.fixture(autouse=True)
def clean_kernel_runtime():
    """Isolate every test from process-wide caches, fallbacks,
    counters, the cached numba probe, and the tier override."""
    rc._reset_state()
    rc.set_kernel_tier(None)
    yield
    rc._reset_state()
    rc.set_kernel_tier(None)


def _no_numba(monkeypatch):
    def boom():
        raise ImportError("No module named 'numba'")

    monkeypatch.setattr(rc, "_load_numba", boom)


# ----------------------------------------------------------------------
# tier selection
# ----------------------------------------------------------------------


class TestTierSelection:
    def test_default_is_auto(self, monkeypatch):
        monkeypatch.delenv(rc.KERNELS_ENV, raising=False)
        assert rc.kernel_tier() == "auto"

    def test_env_selects_tier(self, monkeypatch):
        monkeypatch.setenv(rc.KERNELS_ENV, "pure")
        assert rc.kernel_tier() == "pure"
        monkeypatch.setenv(rc.KERNELS_ENV, "Compiled")
        assert rc.kernel_tier() == "compiled"

    def test_override_beats_env(self, monkeypatch):
        monkeypatch.setenv(rc.KERNELS_ENV, "pure")
        rc.set_kernel_tier("compiled")
        assert rc.kernel_tier() == "compiled"
        rc.set_kernel_tier(None)
        assert rc.kernel_tier() == "pure"

    def test_invalid_values_raise(self, monkeypatch):
        with pytest.raises(ValueError, match="invalid kernel tier"):
            rc.set_kernel_tier("jit")
        monkeypatch.setenv(rc.KERNELS_ENV, "fast")
        with pytest.raises(ValueError, match=rc.KERNELS_ENV):
            rc.kernel_tier()

    def test_pure_tier_never_probes_numba(self, monkeypatch):
        def boom():  # pragma: no cover - must not run
            raise AssertionError("pure tier imported numba")

        monkeypatch.setattr(rc, "_load_numba", boom)
        rc.set_kernel_tier("pure")
        out = row_majority(LABELS)
        assert np.array_equal(out, np.array([1, 3]))
        assert rc.kernel_stats()["kernel_calls_pure"] == 1


# ----------------------------------------------------------------------
# numba missing
# ----------------------------------------------------------------------


class TestNumbaMissing:
    def test_auto_falls_back_silently(self, monkeypatch):
        _no_numba(monkeypatch)
        monkeypatch.delenv(rc.KERNELS_ENV, raising=False)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            out = row_majority(LABELS)
        assert np.array_equal(out, np.array([1, 3]))
        assert not [
            w for w in caught if issubclass(w.category, RuntimeWarning)
        ]
        stats = rc.kernel_stats()
        assert stats["kernel_calls_pure"] == 1
        assert stats["kernel_calls_compiled"] == 0

    def test_compiled_warns_once_per_kernel(self, monkeypatch):
        _no_numba(monkeypatch)
        rc.set_kernel_tier("compiled")
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            out1 = row_majority(LABELS)
            out2 = row_majority(LABELS)
        assert np.array_equal(out1, out2)
        runtime_warnings = [
            w for w in caught if issubclass(w.category, RuntimeWarning)
        ]
        assert len(runtime_warnings) == 1
        message = str(runtime_warnings[0].message)
        assert ROW_MAJORITY in message
        assert "falling back" in message
        stats = rc.kernel_stats()
        assert stats["kernel_calls_pure"] == 2
        assert stats["kernel_compiles"] == 0
        assert ROW_MAJORITY in rc.fallback_reasons()

    def test_each_kernel_warns_independently(self, monkeypatch):
        _no_numba(monkeypatch)
        rc.set_kernel_tier("compiled")
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            row_majority(LABELS)
            bboxes_intersect_matrix(BOXES_A, BOXES_B)
        runtime_warnings = [
            w for w in caught if issubclass(w.category, RuntimeWarning)
        ]
        assert len(runtime_warnings) == 2
        assert {ROW_MAJORITY, BBOXES} <= set(rc.fallback_reasons())


# ----------------------------------------------------------------------
# compile failure isolation
# ----------------------------------------------------------------------


class TestCompileFailureIsolation:
    def test_typing_error_pins_only_the_failing_kernel(self, monkeypatch):
        """A mid-compile TypingError pins *that* kernel to pure; other
        kernels keep compiling and the cache stays uncontaminated."""

        def fake_jit(name, source):
            if name == ROW_MAJORITY:
                raise rc.KernelCompileError(
                    f"njit({name}) failed: TypingError: cannot unify"
                )
            return source  # "compiled": the source, run interpreted

        monkeypatch.setattr(rc, "_jit_compile", fake_jit)
        rc.set_kernel_tier("compiled")

        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            bad = row_majority(LABELS)
            good = bboxes_intersect_matrix(BOXES_A, BOXES_B)
            bad_again = row_majority(LABELS)
            good_again = bboxes_intersect_matrix(BOXES_A, BOXES_B)

        assert np.array_equal(bad, np.array([1, 3]))
        assert np.array_equal(bad, bad_again)
        assert np.array_equal(good, np.array([[True]]))
        assert np.array_equal(good, good_again)

        runtime_warnings = [
            w for w in caught if issubclass(w.category, RuntimeWarning)
        ]
        assert len(runtime_warnings) == 1
        assert ROW_MAJORITY in str(runtime_warnings[0].message)

        assert set(rc.fallback_reasons()) == {ROW_MAJORITY}
        assert "TypingError" in rc.fallback_reasons()[ROW_MAJORITY]

        cached = [k for k, _sig in rc.compiled_signatures()]
        assert cached == [BBOXES]

        stats = rc.kernel_stats()
        assert stats["kernel_calls_pure"] == 2  # both row_majority calls
        assert stats["kernel_calls_compiled"] == 2  # both bbox calls
        assert stats["kernel_compiles"] == 1  # bbox only
        assert stats["kernel_compile_seconds"] > 0.0

    def test_data_error_is_transient_not_pinning(self, monkeypatch):
        """A non-numba exception on the compiled path re-runs pure for
        that call only — the kernel is not pinned to fallback."""
        calls = {"n": 0}

        def fake_jit(name, source):
            def exploding(*args):
                calls["n"] += 1
                raise ValueError("bad data, not a compile failure")

            return exploding

        monkeypatch.setattr(rc, "_jit_compile", fake_jit)
        rc.set_kernel_tier("compiled")
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            out1 = row_majority(LABELS)
            out2 = row_majority(LABELS)
        assert np.array_equal(out1, np.array([1, 3]))
        assert np.array_equal(out1, out2)
        assert not [
            w for w in caught if issubclass(w.category, RuntimeWarning)
        ]
        assert rc.fallback_reasons() == {}
        assert calls["n"] == 2  # the compiled path was retried
        assert rc.kernel_stats()["kernel_calls_pure"] == 2


# ----------------------------------------------------------------------
# counters → tracer → report
# ----------------------------------------------------------------------


class TestCounterPlumbing:
    def test_tracer_attaches_kernel_deltas_to_root(self, monkeypatch):
        _no_numba(monkeypatch)
        monkeypatch.delenv(rc.KERNELS_ENV, raising=False)
        tracer = Tracer(kernel_counters=True)
        with tracer.span("work"):
            row_majority(LABELS)
            row_majority(LABELS)
        root = tracer.finish()
        assert root.counters["kernel_calls_pure"] == 2
        assert "kernel_calls_compiled" not in root.counters  # zero

    def test_tracer_without_flag_stays_clean(self, monkeypatch):
        _no_numba(monkeypatch)
        tracer = Tracer()
        with tracer.span("work"):
            row_majority(LABELS)
        root = tracer.finish()
        assert "kernel_calls_pure" not in root.counters

    def test_report_renders_kernel_totals(self, monkeypatch):
        _no_numba(monkeypatch)
        monkeypatch.delenv(rc.KERNELS_ENV, raising=False)
        tracer = Tracer(kernel_counters=True)
        with tracer.span("work"):
            row_majority(LABELS)
        report = RunReport.from_run(tracer, kernels="auto")
        totals = report.kernel_totals()
        assert totals == {"kernel_calls_pure": 1.0}
        rendered = report.render()
        assert "Compiled kernels" in rendered
        assert "kernel_calls_pure=1" in rendered
        # round-trips through the versioned JSON document
        reloaded = RunReport.from_dict(report.to_dict())
        assert reloaded.kernel_totals() == totals

    def test_counter_delta_ignores_other_runs(self, monkeypatch):
        _no_numba(monkeypatch)
        monkeypatch.delenv(rc.KERNELS_ENV, raising=False)
        row_majority(LABELS)  # before the tracer exists
        tracer = Tracer(kernel_counters=True)
        with tracer.span("work"):
            row_majority(LABELS)
        root = tracer.finish()
        assert root.counters["kernel_calls_pure"] == 1
