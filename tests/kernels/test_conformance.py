"""Differential kernel-conformance harness.

Compiled numerics are the classic source of silent divergence, so
"compiled ≡ pure" is a machine-checked invariant here, not a hope: for
every kernel in ``declared_kernels()``, hypothesis-generated inputs run
through the pure NumPy implementation and the compiled loop source, and
the results must be **bit-identical** — exact ``np.array_equal`` with
dtype and shape equality, never ``allclose``.

Two differential layers:

* the loop *sources* run interpreted against pure on every platform
  (no numba needed) — this proves the algorithm algebra, including
  stable-sort permutations under heavy ties;
* with numba installed, the full dispatch path runs jit-compiled
  against pure, and additionally asserts the call really took the
  compiled tier (a silent fallback would make the comparison
  vacuous).  Without numba the jitted layer skips with a reason.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.kernels import declared_kernels, kernel_dispatchers, kernel_names
from repro.runtime import compiled as rc

KERNELS = kernel_names()

needs_numba = pytest.mark.skipif(
    not rc.numba_available(),
    reason=(
        "numba unavailable on this platform: the compiled tier falls "
        "back to pure (covered by test_compiled_runtime); the jitted "
        "differential layer cannot run"
    ),
)

# generous budget: the first jitted example per signature compiles
CONFORMANCE_SETTINGS = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

_coord = st.floats(-100.0, 100.0, allow_nan=False, allow_infinity=False)
#: coordinate pool with deliberate tie mass — stable-sort permutations
#: are part of the bit-identity contract
_tied_coord = st.one_of(
    st.sampled_from([-1.0, -0.5, 0.0, 0.5, 1.0, 2.0]),
    st.floats(-5.0, 5.0, allow_nan=False, allow_infinity=False),
)


@st.composite
def _bbox_inputs(draw):
    d = draw(st.integers(1, 3))
    m_a = draw(st.integers(0, 5))
    m_b = draw(st.integers(0, 5))
    boxes_a = draw(hnp.arrays(np.float64, (m_a, 2, d), elements=_coord))
    boxes_b = draw(hnp.arrays(np.float64, (m_b, 2, d), elements=_coord))
    pad = draw(st.floats(0.0, 5.0, allow_nan=False))
    return (boxes_a, boxes_b), {"pad": pad}


@st.composite
def _boxsearch_inputs(draw):
    d = draw(st.integers(1, 3))
    n_boxes = draw(st.integers(1, 5))
    n_points = draw(st.integers(1, 6))
    n_pairs = draw(st.integers(0, 12))
    boxes = draw(
        hnp.arrays(np.float64, (n_boxes, 2, d), elements=_coord)
    )
    boxes.sort(axis=1)
    points = draw(hnp.arrays(np.float64, (n_points, d), elements=_coord))
    box_index = draw(
        hnp.arrays(
            np.int64, (n_pairs,), elements=st.integers(0, n_boxes - 1)
        )
    )
    point_index = draw(
        hnp.arrays(
            np.int64, (n_pairs,), elements=st.integers(0, n_points - 1)
        )
    )
    return (boxes, points, box_index, point_index), {}


@st.composite
def _row_majority_inputs(draw):
    n = draw(st.integers(0, 8))
    w = draw(st.integers(1, 6))
    labels = draw(
        hnp.arrays(np.int64, (n, w), elements=st.integers(-3, 5))
    )
    return (labels,), {}


@st.composite
def _split_curve_inputs(draw):
    n = draw(st.integers(1, 16))
    coords = draw(hnp.arrays(np.float64, (n,), elements=_tied_coord))
    labels = draw(
        hnp.arrays(np.int64, (n,), elements=st.integers(0, 3))
    )
    return (coords, labels), {}


INPUTS = {
    "repro.geometry.bbox.bboxes_intersect_matrix": _bbox_inputs,
    "repro.geometry.boxsearch.box_candidate_pairs": _boxsearch_inputs,
    "repro.core.contact_search.row_majority": _row_majority_inputs,
    "repro.dtree.splitter.split_index_curve": _split_curve_inputs,
}


def _as_tuple(out):
    return out if isinstance(out, tuple) else (out,)


def _assert_bit_identical(name, want, got):
    want, got = _as_tuple(want), _as_tuple(got)
    assert len(want) == len(got), (
        f"{name}: pure returned {len(want)} array(s), "
        f"compiled returned {len(got)}"
    )
    for i, (w, g) in enumerate(zip(want, got)):
        assert isinstance(g, np.ndarray), (
            f"{name}[{i}]: compiled returned {type(g).__name__}"
        )
        assert g.dtype == w.dtype, (
            f"{name}[{i}]: dtype {g.dtype} != pure {w.dtype}"
        )
        assert g.shape == w.shape, (
            f"{name}[{i}]: shape {g.shape} != pure {w.shape}"
        )
        assert np.array_equal(w, g), (
            f"{name}[{i}]: values diverge\npure:     {w!r}\n"
            f"compiled: {g!r}"
        )


def test_every_declared_kernel_is_covered():
    """Adding a kernel without conformance inputs (or a compiled
    source) must fail loudly, not silently shrink coverage."""
    assert set(INPUTS) == set(KERNELS)
    assert set(rc.NUMBA_SOURCES) == set(KERNELS)
    assert set(rc._PREPARE) == set(KERNELS)
    assert set(kernel_dispatchers()) == set(KERNELS)


@pytest.mark.parametrize("name", KERNELS)
@given(data=st.data())
@CONFORMANCE_SETTINGS
def test_interpreted_source_matches_pure(name, data):
    """The loop source, run as plain Python, is bit-identical to the
    pure kernel — platform-independent proof of the algorithm."""
    args, kwargs = data.draw(INPUTS[name]())
    pure = declared_kernels()[name]
    source = rc.NUMBA_SOURCES[name]
    prepare = rc._PREPARE[name]
    want = pure(*args, **kwargs)
    got = source(*prepare(*args, **kwargs))
    _assert_bit_identical(name, want, got)


@needs_numba
@pytest.mark.parametrize("name", KERNELS)
@given(data=st.data())
@CONFORMANCE_SETTINGS
def test_compiled_dispatch_matches_pure(name, data):
    """The full compiled tier (dispatch → njit) is bit-identical to
    pure, and genuinely ran compiled — a fallback here is a failure,
    not a skip, because numba *is* available."""
    args, kwargs = data.draw(INPUTS[name]())
    pure = declared_kernels()[name]
    dispatcher = kernel_dispatchers()[name]
    rc.set_kernel_tier("compiled")
    try:
        before = rc.stats_snapshot()
        got = dispatcher(*args, **kwargs)
        delta = rc.stats_delta(before)
    finally:
        rc.set_kernel_tier(None)
    assert name not in rc.fallback_reasons(), (
        f"{name} fell back to pure although numba is available: "
        f"{rc.fallback_reasons()[name]}"
    )
    assert delta["kernel_calls_compiled"] == 1
    assert delta["kernel_calls_pure"] == 0
    want = pure(*args, **kwargs)
    _assert_bit_identical(name, want, got)


@needs_numba
def test_compile_cache_keyed_by_signature():
    """Repeat calls with one dtype signature compile once; the cache
    key includes the kernel name, so kernels never share entries."""
    from repro.core.contact_search import row_majority

    labels = np.array([[1, 2, 2], [3, 3, 1]], dtype=np.int64)
    rc.set_kernel_tier("compiled")
    try:
        row_majority(labels)
        before = rc.stats_snapshot()
        row_majority(labels + 1)
        delta = rc.stats_delta(before)
    finally:
        rc.set_kernel_tier(None)
    assert delta["kernel_compiles"] == 0
    assert delta["kernel_calls_compiled"] == 1
    name = "repro.core.contact_search.row_majority"
    assert any(k == name for k, _sig in rc.compiled_signatures())
