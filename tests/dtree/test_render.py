"""Tests for the terminal descriptor renderer."""

import numpy as np
import pytest

from repro.dtree.induction import induce_pure_tree
from repro.dtree.render import render_descriptors, render_points, render_tree


def simple_case():
    pts = np.array(
        [[0.0, 0.0], [1.0, 0.1], [0.2, 0.9], [9.0, 0.2], [9.5, 0.8]]
    )
    labels = np.array([0, 0, 0, 1, 1])
    tree, _ = induce_pure_tree(pts, labels, 2)
    return pts, labels, tree


class TestRenderPoints:
    def test_dimensions(self):
        pts, labels, _ = simple_case()
        out = render_points(pts, labels, width=30, height=10)
        lines = out.splitlines()
        assert len(lines) == 10
        assert all(len(l) == 30 for l in lines)

    def test_glyphs_present(self):
        pts, labels, _ = simple_case()
        out = render_points(pts, labels)
        assert "o" in out and "^" in out

    def test_point_count_preserved(self):
        pts, labels, _ = simple_case()
        out = render_points(pts, labels, width=80, height=40)
        assert out.count("o") == 3
        assert out.count("^") == 2

    def test_3d_rejected(self):
        with pytest.raises(ValueError, match="2D"):
            render_points(np.zeros((3, 3)), np.zeros(3, dtype=int))


class TestRenderDescriptors:
    def test_draws_borders(self):
        pts, labels, tree = simple_case()
        out = render_descriptors(tree, pts, labels)
        assert "|" in out and "-" in out
        assert "o" in out and "^" in out

    def test_grid_shape(self):
        pts, labels, tree = simple_case()
        lines = render_descriptors(
            tree, pts, labels, width=40, height=12
        ).splitlines()
        assert len(lines) == 12
        assert all(len(l) == 40 for l in lines)


class TestRenderTree:
    def test_mentions_splits_and_leaves(self):
        pts, labels, tree = simple_case()
        out = render_tree(tree)
        assert "x <=" in out
        assert "partition 0" in out
        assert "partition 1" in out

    def test_single_leaf(self):
        pts = np.random.default_rng(0).random((4, 2))
        tree, _ = induce_pure_tree(pts, np.zeros(4, dtype=int), 1)
        out = render_tree(tree)
        assert out.startswith("leaf: partition 0")

    def test_impure_flagged(self):
        pts = np.zeros((4, 2))
        tree, _ = induce_pure_tree(pts, np.array([0, 1, 0, 1]), 2)
        assert "(impure)" in render_tree(tree)
