"""Tests for tree queries: point assignment and box traversal."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dtree.induction import induce_pure_tree
from repro.dtree.query import (
    assign_points,
    box_query_pairs,
    predict_partition,
    tree_filter_search,
)


def recursive_point_assign(tree, point):
    nid = tree.root
    while not tree.nodes[nid].is_leaf:
        nd = tree.nodes[nid]
        nid = nd.left if point[nd.dim] <= nd.threshold else nd.right
    return nid


def recursive_box_leaves(tree, box):
    out = set()

    def walk(nid):
        nd = tree.nodes[nid]
        if nd.is_leaf:
            out.add(nid)
            return
        if box[0, nd.dim] <= nd.threshold:
            walk(nd.left)
        if box[1, nd.dim] > nd.threshold:
            walk(nd.right)

    walk(tree.root)
    return out


def random_tree(seed, n=60, k=3):
    rng = np.random.default_rng(seed)
    pts = rng.random((n, 2))
    labels = rng.integers(0, k, n)
    tree, _ = induce_pure_tree(pts, labels, k)
    return tree, pts, labels


class TestAssignPoints:
    def test_matches_recursive_walk(self):
        tree, pts, _ = random_tree(0)
        leaves = assign_points(tree, pts)
        for i in range(len(pts)):
            assert leaves[i] == recursive_point_assign(tree, pts[i])

    def test_out_of_domain_points_still_land(self):
        tree, pts, _ = random_tree(1)
        far = np.array([[99.0, 99.0], [-99.0, -99.0]])
        leaves = assign_points(tree, far)
        for leaf in leaves:
            assert tree.nodes[leaf].is_leaf

    def test_single_leaf_tree(self):
        pts = np.random.default_rng(0).random((10, 2))
        tree, _ = induce_pure_tree(pts, np.zeros(10, int), 1)
        assert (assign_points(tree, pts) == tree.root).all()

    @given(st.integers(0, 10**6))
    @settings(max_examples=25, deadline=None)
    def test_property_matches_recursion(self, seed):
        tree, pts, _ = random_tree(seed, n=30)
        rng = np.random.default_rng(seed + 1)
        probe = rng.random((15, 2)) * 2 - 0.5
        leaves = assign_points(tree, probe)
        for i in range(15):
            assert leaves[i] == recursive_point_assign(tree, probe[i])


class TestBoxQuery:
    def test_matches_recursive_traversal(self):
        tree, pts, _ = random_tree(2)
        rng = np.random.default_rng(3)
        lo = rng.random((10, 2))
        boxes = np.stack((lo, lo + 0.3 * rng.random((10, 2))), axis=1)
        b_idx, leaves = box_query_pairs(tree, boxes)
        got = {}
        for b, l in zip(b_idx, leaves):
            got.setdefault(int(b), set()).add(int(l))
        for b in range(10):
            assert got.get(b, set()) == recursive_box_leaves(tree, boxes[b])

    def test_point_box_hits_its_leaf(self):
        tree, pts, _ = random_tree(4)
        boxes = np.stack((pts, pts), axis=1)  # degenerate boxes
        b_idx, leaves = box_query_pairs(tree, boxes)
        point_leaf = assign_points(tree, pts)
        for b, l in zip(b_idx, leaves):
            # a degenerate box may touch multiple leaves if it sits on a
            # threshold, but its own leaf must be among them
            pass
        hit_map = {}
        for b, l in zip(b_idx, leaves):
            hit_map.setdefault(int(b), set()).add(int(l))
        for i in range(len(pts)):
            assert point_leaf[i] in hit_map[i]

    def test_huge_box_reaches_all_leaves(self):
        tree, _, _ = random_tree(5)
        box = np.array([[[-10.0, -10.0], [10.0, 10.0]]])
        _, leaves = box_query_pairs(tree, box)
        assert set(leaves.tolist()) == set(tree.leaf_ids().tolist())

    def test_empty_boxes_array(self):
        tree, _, _ = random_tree(6)
        b, l = box_query_pairs(tree, np.empty((0, 2, 2)))
        assert len(b) == 0 and len(l) == 0

    @given(st.integers(0, 10**6))
    @settings(max_examples=25, deadline=None)
    def test_property_box_query_completeness(self, seed):
        """Every contact point inside a query box is owned by some leaf
        the box query returns — the completeness invariant the global
        search relies on."""
        tree, pts, labels = random_tree(seed, n=40)
        rng = np.random.default_rng(seed + 7)
        lo = rng.random((8, 2)) - 0.1
        boxes = np.stack((lo, lo + 0.4), axis=1)
        b_idx, leaves = box_query_pairs(tree, boxes)
        hit = {}
        for b, l in zip(b_idx, leaves):
            hit.setdefault(int(b), set()).add(int(l))
        point_leaf = assign_points(tree, pts)
        for b in range(8):
            inside = np.nonzero(
                ((pts >= boxes[b, 0]) & (pts <= boxes[b, 1])).all(axis=1)
            )[0]
            for i in inside:
                assert point_leaf[i] in hit.get(b, set())


class TestTreeFilterSearch:
    def test_no_self_sends(self):
        tree, pts, labels = random_tree(8)
        boxes = np.stack((pts[:5], pts[:5] + 0.01), axis=1)
        owner = predict_partition(tree, pts[:5])
        plan = tree_filter_search(tree, boxes, owner, 3)
        for e in range(5):
            assert owner[e] not in plan.sends_for(e)

    def test_separated_clusters_zero_remote(self):
        rng = np.random.default_rng(9)
        pts = np.concatenate([rng.random((20, 2)),
                              rng.random((20, 2)) + [10, 0]])
        labels = np.repeat([0, 1], 20)
        tree, _ = induce_pure_tree(pts, labels, 2)
        # elements entirely inside cluster bodies
        boxes = np.stack((pts + 0.001, pts + 0.002), axis=1)
        owner = labels
        plan = tree_filter_search(tree, boxes, owner, 2)
        assert plan.n_remote == 0

    def test_straddling_element_sent(self):
        pts = np.array([[0.0, 0.0], [1.0, 0.0], [3.0, 0.0], [4.0, 0.0]])
        labels = np.array([0, 0, 1, 1])
        tree, _ = induce_pure_tree(pts, labels, 2)
        box = np.array([[[0.5, -0.5], [3.5, 0.5]]])  # spans the cut
        plan = tree_filter_search(tree, box, np.array([0]), 2)
        assert plan.sends_for(0).tolist() == [1]

    def test_impure_leaf_broadcasts(self):
        # coincident mixed points force an impure leaf
        pts = np.zeros((4, 2))
        labels = np.array([0, 1, 0, 2])
        tree, _ = induce_pure_tree(pts, labels, 3)
        box = np.array([[[-1.0, -1.0], [1.0, 1.0]]])
        plan = tree_filter_search(tree, box, np.array([0]), 3)
        assert plan.sends_for(0).tolist() == [1, 2]

    def test_length_mismatch(self):
        tree, pts, _ = random_tree(10)
        with pytest.raises(ValueError, match="lengths differ"):
            tree_filter_search(
                tree, np.empty((2, 2, 2)), np.array([0]), 3
            )
