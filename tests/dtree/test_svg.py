"""Tests for SVG descriptor rendering."""

import numpy as np
import pytest

from repro.dtree.induction import induce_pure_tree
from repro.dtree.svg import (
    descriptors_svg,
    project_2d,
    save_descriptors_svg,
)


def case():
    rng = np.random.default_rng(0)
    pts = np.concatenate(
        [rng.random((12, 2)), rng.random((12, 2)) + [3.0, 0.0]]
    )
    labels = np.repeat([0, 1], 12)
    tree, _ = induce_pure_tree(pts, labels, 2)
    return tree, pts, labels


class TestProject2D:
    def test_2d_passthrough(self):
        pts = np.random.default_rng(0).random((5, 2))
        assert np.array_equal(project_2d(pts), pts)

    def test_3d_drops_narrowest_axis(self):
        rng = np.random.default_rng(1)
        pts = np.column_stack(
            (rng.random(20) * 10, rng.random(20) * 5, rng.random(20) * 0.1)
        )
        out = project_2d(pts)
        assert out.shape == (20, 2)
        assert np.array_equal(out, pts[:, :2])


class TestDescriptorsSvg:
    def test_wellformed_document(self):
        tree, pts, labels = case()
        svg = descriptors_svg(tree, pts, labels, title="demo")
        assert svg.startswith("<svg")
        assert svg.endswith("</svg>")
        assert "demo" in svg

    def test_one_region_rect_per_leaf(self):
        tree, pts, labels = case()
        svg = descriptors_svg(tree, pts, labels)
        # region rectangles are the translucent ones (markers for the
        # "square" class are opaque rects)
        assert svg.count("fill-opacity") == tree.n_leaves

    def test_one_marker_per_point(self):
        tree, pts, labels = case()
        svg = descriptors_svg(tree, pts, labels)
        markers = (
            svg.count("<circle") + svg.count("<polygon")
            + (svg.count("<rect") - 1 - tree.n_leaves)
        )
        assert markers == len(pts)

    def test_length_mismatch(self):
        tree, pts, labels = case()
        with pytest.raises(ValueError, match="lengths differ"):
            descriptors_svg(tree, pts, labels[:-1])

    def test_save(self, tmp_path):
        tree, pts, labels = case()
        path = tmp_path / "fig1.svg"
        save_descriptors_svg(path, tree, pts, labels)
        assert path.read_text().startswith("<svg")

    def test_3d_scene_renders(self, small_sequence):
        from repro.core.mcml_dt import MCMLDTPartitioner

        snap = small_sequence[0]
        pt = MCMLDTPartitioner(3)
        pt.fit(snap)
        coords = snap.mesh.nodes[snap.contact_nodes]
        labels = pt.part[snap.contact_nodes]
        pts2d = project_2d(coords)
        tree, _ = induce_pure_tree(pts2d, labels, 3)
        svg = descriptors_svg(tree, coords, labels)
        assert "<svg" in svg
