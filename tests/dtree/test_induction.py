"""Tests for tree induction: purity, bounded termination, and the
paper's Figure 1 / Figure 2 behaviours."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dtree.induction import (
    induce_bounded_tree,
    induce_pure_tree,
    suggested_bounds,
)
from repro.dtree.query import predict_partition


def three_clusters(n_per=15, seed=0):
    """Figure-1-like: 3 clusters of contact points, 45 total."""
    rng = np.random.default_rng(seed)
    pts = np.concatenate(
        [
            rng.random((n_per, 2)),
            rng.random((n_per, 2)) + [2.0, 0.0],
            rng.random((n_per, 2)) + [1.0, 2.0],
        ]
    )
    labels = np.repeat(np.arange(3), n_per)
    return pts, labels


class TestPureTree:
    def test_all_leaves_pure(self):
        pts, labels = three_clusters()
        tree, leaf_of = induce_pure_tree(pts, labels, 3)
        for nd in tree.nodes:
            if nd.is_leaf:
                assert nd.is_pure

    def test_classifies_training_points_exactly(self):
        pts, labels = three_clusters()
        tree, _ = induce_pure_tree(pts, labels, 3)
        assert np.array_equal(predict_partition(tree, pts), labels)

    def test_leaf_of_point_consistent(self):
        pts, labels = three_clusters()
        tree, leaf_of = induce_pure_tree(pts, labels, 3)
        for i, leaf in enumerate(leaf_of):
            assert tree.nodes[leaf].is_leaf
            assert tree.nodes[leaf].label == labels[i]

    def test_figure1_three_clusters_small_tree(self):
        """Well-separated clusters need only a handful of rectangles."""
        pts, labels = three_clusters()
        tree, _ = induce_pure_tree(pts, labels, 3)
        assert tree.n_leaves <= 6
        assert tree.n_nodes <= 11

    def test_figure2_diagonal_blowup(self):
        """A diagonal boundary forces many axis-parallel cuts (Fig. 2):
        the tree is dramatically larger than for an axis-aligned
        boundary of the same point count."""
        n = 28
        t = np.linspace(0.0, 1.0, n)
        rng = np.random.default_rng(0)
        diag_pts = np.column_stack([t, t + 0.02 * rng.standard_normal(n)])
        diag_labels = (diag_pts[:, 1] > diag_pts[:, 0]).astype(int)
        diag_tree, _ = induce_pure_tree(diag_pts, diag_labels, 2)

        axis_pts = rng.random((n, 2))
        axis_labels = (axis_pts[:, 0] > 0.5).astype(int)
        axis_tree, _ = induce_pure_tree(axis_pts, axis_labels, 2)

        assert axis_tree.n_nodes == 3
        assert diag_tree.n_nodes >= 4 * axis_tree.n_nodes

    def test_single_class_is_single_leaf(self):
        pts = np.random.default_rng(0).random((20, 2))
        tree, _ = induce_pure_tree(pts, np.zeros(20, dtype=int), 1)
        assert tree.n_nodes == 1

    def test_coincident_mixed_points_terminate_impure(self):
        pts = np.zeros((4, 2))
        labels = np.array([0, 1, 0, 1])
        tree, _ = induce_pure_tree(pts, labels, 2)
        assert tree.n_nodes == 1
        assert not tree.nodes[0].is_pure

    def test_adjacent_float_coordinates(self):
        """Coordinates one ULP apart: the midpoint rounds onto one of
        them, which must terminate the node instead of recursing on an
        empty side (regression)."""
        a = 1.0
        b = np.nextafter(a, 2.0)
        pts = np.array([[a, 0.0], [b, 0.0], [a, 0.0], [b, 0.0]])
        labels = np.array([0, 1, 0, 1])
        tree, leaf_of = induce_pure_tree(pts, labels, 2)
        tree.validate()
        assert (leaf_of >= 0).all()

    def test_max_depth_guard(self):
        rng = np.random.default_rng(1)
        pts = rng.random((200, 2))
        labels = rng.integers(0, 2, 200)  # salt-and-pepper: deep tree
        tree, _ = induce_pure_tree(pts, labels, 2, max_depth=3)
        assert tree.depth() <= 3

    def test_input_validation(self):
        pts = np.random.default_rng(0).random((5, 2))
        with pytest.raises(ValueError, match="lengths differ"):
            induce_pure_tree(pts, np.zeros(4, dtype=int), 1)
        with pytest.raises(ValueError, match="zero points"):
            induce_pure_tree(np.empty((0, 2)), np.empty(0, dtype=int), 1)
        with pytest.raises(ValueError, match="labels must lie"):
            induce_pure_tree(pts, np.full(5, 7), 3)

    @given(st.integers(0, 10**6), st.integers(1, 5))
    @settings(max_examples=30, deadline=None)
    def test_property_pure_tree_classifies_exactly(self, seed, k):
        """For any point set with distinct coordinates, the pure tree
        reproduces the labelling exactly."""
        rng = np.random.default_rng(seed)
        n = int(rng.integers(1, 60))
        pts = rng.random((n, 2))  # distinct w.p. 1
        labels = rng.integers(0, k, n)
        tree, _ = induce_pure_tree(pts, labels, k)
        tree.validate()
        assert np.array_equal(predict_partition(tree, pts), labels)


class TestBoundedTree:
    def test_pure_nodes_split_down_to_max_p(self):
        """A single-class set larger than max_p keeps splitting."""
        pts = np.random.default_rng(0).random((64, 2))
        labels = np.zeros(64, dtype=int)
        tree, _ = induce_bounded_tree(pts, labels, 1, max_p=10, max_i=5)
        for nd in tree.nodes:
            if nd.is_leaf:
                assert nd.n_points < 10

    def test_impure_nodes_stop_below_max_i(self):
        rng = np.random.default_rng(1)
        pts = rng.random((100, 2))
        labels = rng.integers(0, 2, 100)  # thoroughly mixed
        tree, _ = induce_bounded_tree(pts, labels, 2, max_p=100, max_i=20)
        for nd in tree.nodes:
            if nd.is_leaf and not nd.is_pure:
                assert nd.n_points < 20

    def test_impure_nodes_above_max_i_are_split(self):
        rng = np.random.default_rng(2)
        pts = rng.random((200, 2))
        labels = (pts[:, 0] > 0.5).astype(int)
        tree, _ = induce_bounded_tree(pts, labels, 2, max_p=500, max_i=10)
        # root was impure with 200 >= 10 points, so it must have split
        assert not tree.nodes[tree.root].is_leaf

    def test_smaller_bounds_give_bigger_trees(self):
        rng = np.random.default_rng(3)
        pts = rng.random((300, 2))
        labels = (pts[:, 0] + pts[:, 1] > 1.0).astype(int)
        coarse, _ = induce_bounded_tree(pts, labels, 2, max_p=150, max_i=40)
        fine, _ = induce_bounded_tree(pts, labels, 2, max_p=20, max_i=5)
        assert fine.n_nodes > coarse.n_nodes

    def test_leaf_majority_labels_recorded(self):
        pts = np.array([[0.0, 0], [0.1, 0], [0.2, 0], [5.0, 0], [5.1, 0]])
        labels = np.array([0, 0, 1, 1, 1])
        tree, leaf_of = induce_bounded_tree(pts, labels, 2, max_p=10, max_i=10)
        # single leaf (5 < max_i); majority is class 1
        assert tree.n_nodes == 1
        assert tree.nodes[0].label == 1

    def test_invalid_bounds(self):
        pts = np.random.default_rng(0).random((5, 2))
        with pytest.raises(ValueError, match="max_p and max_i"):
            induce_bounded_tree(pts, np.zeros(5, int), 1, max_p=0, max_i=1)


class TestSuggestedBounds:
    def test_near_paper_windows(self):
        """Defaults sit half a step below the paper's windows (see the
        docstring); they must stay within a factor of k^0.25 of the
        window's low end and below it."""
        n, k = 100_000, 25
        max_p, max_i = suggested_bounds(n, k)
        assert n / k**2 <= max_p <= n / k**1.5
        assert n / k**3 <= max_i <= n / k**2.5

    def test_ordering(self):
        """The paper notes max_i < max_p must hold."""
        for k in (4, 25, 100):
            max_p, max_i = suggested_bounds(50_000, k)
            assert max_i < max_p

    def test_minimum_one(self):
        max_p, max_i = suggested_bounds(10, 100)
        assert max_p >= 1 and max_i >= 1

    def test_invalid(self):
        with pytest.raises(ValueError):
            suggested_bounds(0, 5)
