"""Tests for the Eq. 1 splitting-index scan, including brute-force
property verification."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dtree.splitter import (
    _occurrence_ranks,
    _sumsq_prefix,
    best_split,
    median_split,
    split_index_curve,
)


def eq1_brute_force(labels_left, labels_right, k):
    """Direct evaluation of the paper's Eq. 1."""
    c1 = np.bincount(labels_left, minlength=k)
    c2 = np.bincount(labels_right, minlength=k)
    return np.sqrt((c1.astype(float) ** 2).sum()) + np.sqrt(
        (c2.astype(float) ** 2).sum()
    )


class TestInternals:
    def test_occurrence_ranks(self):
        labels = np.array([3, 1, 3, 3, 1])
        assert _occurrence_ranks(labels).tolist() == [1, 1, 2, 3, 2]

    def test_sumsq_prefix_matches_definition(self):
        labels = np.array([0, 1, 0, 0, 2, 1])
        out = _sumsq_prefix(labels)
        for i in range(len(labels) + 1):
            counts = np.bincount(labels[:i], minlength=3)
            assert out[i] == (counts**2).sum()

    @given(st.lists(st.integers(0, 5), min_size=1, max_size=60))
    @settings(max_examples=60, deadline=None)
    def test_property_sumsq_prefix(self, labels):
        labels = np.asarray(labels, dtype=np.int64)
        out = _sumsq_prefix(labels)
        for i in (0, len(labels) // 2, len(labels)):
            counts = np.bincount(labels[:i], minlength=6)
            assert out[i] == (counts**2).sum()


class TestSplitIndexCurve:
    @given(st.integers(0, 10**6), st.integers(2, 5))
    @settings(max_examples=40, deadline=None)
    def test_property_matches_brute_force_eq1(self, seed, k):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(2, 40))
        coords = rng.random(n)
        labels = rng.integers(0, k, n)
        order, valid, idx_vals = split_index_curve(coords, labels)
        lab_sorted = labels[order]
        for i in range(n - 1):
            expect = eq1_brute_force(
                lab_sorted[: i + 1], lab_sorted[i + 1 :], k
            )
            assert idx_vals[i] == pytest.approx(expect)

    def test_valid_marks_distinct_coords_only(self):
        coords = np.array([0.0, 0.0, 1.0, 2.0])
        labels = np.array([0, 1, 0, 1])
        _, valid, _ = split_index_curve(coords, labels)
        assert valid.tolist() == [False, True, True]


class TestBestSplit:
    def test_perfect_separation_found(self):
        pts = np.array([[0.0, 5.0], [1.0, 3.0], [10.0, 4.0], [11.0, 6.0]])
        labels = np.array([0, 0, 1, 1])
        s = best_split(pts, labels)
        assert s.dim == 0
        assert 1.0 < s.threshold < 10.0
        assert s.n_left == 2 and s.n_right == 2

    def test_picks_discriminating_dimension(self):
        rng = np.random.default_rng(0)
        x = rng.random(40)
        y = np.concatenate([rng.random(20), rng.random(20) + 5.0])
        pts = np.column_stack([x, y])
        labels = np.repeat([0, 1], 20)
        s = best_split(pts, labels)
        assert s.dim == 1

    def test_maximises_eq1(self):
        """Chosen split's index equals the brute-force maximum."""
        rng = np.random.default_rng(1)
        pts = rng.random((30, 2))
        labels = rng.integers(0, 3, 30)
        s = best_split(pts, labels)
        best_val = -np.inf
        for dim in range(2):
            order = np.argsort(pts[:, dim])
            c = pts[order, dim]
            lab = labels[order]
            for i in range(29):
                if c[i] < c[i + 1]:
                    best_val = max(
                        best_val,
                        eq1_brute_force(lab[: i + 1], lab[i + 1 :], 3),
                    )
        assert s.index_value == pytest.approx(best_val)

    def test_unsplittable_returns_none(self):
        pts = np.zeros((5, 2))
        labels = np.array([0, 1, 0, 1, 0])
        assert best_split(pts, labels) is None

    def test_single_point_returns_none(self):
        assert best_split(np.array([[1.0, 2.0]]), np.array([0])) is None

    def test_threshold_strictly_separates(self):
        rng = np.random.default_rng(2)
        pts = rng.random((25, 3))
        labels = rng.integers(0, 2, 25)
        s = best_split(pts, labels)
        go_left = pts[:, s.dim] <= s.threshold
        assert go_left.sum() == s.n_left
        assert (~go_left).sum() == s.n_right
        assert 0 < s.n_left < 25

    def test_margin_mode_prefers_wide_gap(self):
        """With two equally pure cuts, margin weighting picks the one in
        the wider empty region."""
        #  class 0 at x in {0, 1}, class 1 at x in {1.2, 9}: cuts at
        #  ~1.1 and anywhere in (1.2, 9) are NOT equally pure; build a
        #  symmetric case instead: 0,0,1,1 at x = 0, 1, 1.1, 9
        pts = np.array([[0.0], [1.0], [1.1], [9.0]])
        labels = np.array([0, 0, 1, 1])
        plain = best_split(pts, labels)  # the pure, balanced cut at 1.05
        small = best_split(pts, labels, margin_weight=0.01)
        assert plain.n_left == 2
        assert small.n_left == 2  # tiny margin weight: purity still wins
        # a large margin weight lets the wide gap dominate purity
        big = best_split(pts, labels, margin_weight=5.0)
        assert big.threshold == pytest.approx(5.05)
        # among equally impure cuts, margin picks the one in the big gap
        pts2 = np.array([[0.0], [2.0], [4.0], [20.0]])
        labels2 = np.array([0, 1, 0, 1])
        s2 = best_split(pts2, labels2, margin_weight=5.0)
        assert s2.threshold == pytest.approx(12.0)  # through the big gap


class TestMedianSplit:
    def test_balances_counts(self):
        pts = np.random.default_rng(0).random((21, 2))
        s = median_split(pts)
        assert abs(s.n_left - s.n_right) <= 1

    def test_longest_extent_chosen(self):
        pts = np.column_stack(
            [np.linspace(0, 10, 12), np.linspace(0, 1, 12)]
        )
        assert median_split(pts).dim == 0

    def test_degenerate_dimension_skipped(self):
        pts = np.column_stack(
            [np.zeros(10), np.linspace(0, 1, 10)]
        )
        assert median_split(pts).dim == 1

    def test_all_coincident_returns_none(self):
        assert median_split(np.zeros((6, 2))) is None
