"""Tests for distributed tree induction on the simulated runtime."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dtree.parallel import parallel_induce_pure_tree
from repro.dtree.query import predict_partition
from repro.runtime.ledger import CommLedger


def clustered(seed=0, n_per=40, k=3):
    rng = np.random.default_rng(seed)
    offsets = rng.random((k, 2)) * 8
    pts = np.concatenate(
        [rng.random((n_per, 2)) + off for off in offsets]
    )
    labels = np.repeat(np.arange(k), n_per)
    return pts, labels


class TestParallelInduction:
    def test_classifies_exactly_like_serial(self, spmd_backend):
        pts, labels = clustered()
        tree, ledger = parallel_induce_pure_tree(
            pts, labels, 3, owner_rank=labels, n_ranks=3,
            backend=spmd_backend,
        )
        tree.validate()
        assert np.array_equal(predict_partition(tree, pts), labels)

    def test_backends_bit_identical(self, spmd_backend):
        """Same tree (node for node), same ledger, on every backend."""
        pts, labels = clustered(seed=9, n_per=60, k=4)
        rng = np.random.default_rng(10)
        owner = rng.integers(0, 4, len(pts))
        ref_tree, ref_ledger = parallel_induce_pure_tree(
            pts, labels, 4, owner_rank=owner, n_ranks=4, backend="serial"
        )
        tree, ledger = parallel_induce_pure_tree(
            pts, labels, 4, owner_rank=owner, n_ranks=4,
            backend=spmd_backend,
        )
        assert len(tree.nodes) == len(ref_tree.nodes)
        for got, ref in zip(tree.nodes, ref_tree.nodes):
            assert (got.dim, got.threshold, got.left, got.right,
                    got.label) == (
                ref.dim, ref.threshold, ref.left, ref.right, ref.label
            )
        assert ledger.summary() == ref_ledger.summary()

    def test_works_with_arbitrary_distribution(self):
        """Ownership need not correlate with class."""
        pts, labels = clustered(seed=1)
        rng = np.random.default_rng(2)
        owner = rng.integers(0, 4, len(pts))
        tree, _ = parallel_induce_pure_tree(
            pts, labels, 3, owner_rank=owner, n_ranks=4
        )
        assert np.array_equal(predict_partition(tree, pts), labels)

    def test_single_rank_degenerates_gracefully(self):
        pts, labels = clustered(seed=3)
        tree, ledger = parallel_induce_pure_tree(
            pts, labels, 3, owner_rank=np.zeros(len(pts), dtype=int),
            n_ranks=1,
        )
        assert np.array_equal(predict_partition(tree, pts), labels)
        # nothing to communicate on one rank
        assert ledger.total_items() == 0

    def test_communication_less_than_gathering(self):
        """The point of the histogram protocol: total items moved are
        far fewer than shipping every point to one rank (times the
        dimensionality)."""
        pts, labels = clustered(seed=4, n_per=400, k=4)
        owner = (np.arange(len(pts)) % 8).astype(np.int64)
        tree, ledger = parallel_induce_pure_tree(
            pts, labels, 4, owner_rank=owner, n_ranks=8, n_bins=16
        )
        gather_cost = len(pts)
        assert ledger.items("dtree-gather") < gather_cost / 2
        assert np.array_equal(predict_partition(tree, pts), labels)

    def test_ledger_phases_present(self):
        pts, labels = clustered(seed=5)
        _, ledger = parallel_induce_pure_tree(
            pts, labels, 3, owner_rank=labels, n_ranks=3
        )
        assert ledger.items("dtree-hist") > 0
        assert ledger.items("dtree-split") > 0

    def test_mixed_coincident_points(self):
        """Coincident mixed-label points are impure but unsplittable;
        the gather fallback must terminate them as impure leaves."""
        pts = np.concatenate([np.zeros((4, 2)), np.ones((4, 2))])
        labels = np.array([0, 1, 0, 1, 0, 0, 0, 0])
        tree, _ = parallel_induce_pure_tree(
            pts, labels, 2, owner_rank=np.array([0, 1] * 4), n_ranks=2
        )
        tree.validate()
        # the ones-cluster is pure, classified correctly
        assert predict_partition(tree, np.array([[1.0, 1.0]]))[0] == 0

    def test_input_validation(self):
        pts, labels = clustered()
        with pytest.raises(ValueError, match="owner_rank"):
            parallel_induce_pure_tree(
                pts, labels, 3, owner_rank=labels[:5], n_ranks=3
            )
        with pytest.raises(ValueError, match="out of range"):
            parallel_induce_pure_tree(
                pts, labels, 3, owner_rank=np.full(len(pts), 9), n_ranks=3
            )
        with pytest.raises(ValueError, match="zero points"):
            parallel_induce_pure_tree(
                np.empty((0, 2)), np.empty(0, dtype=int), 1,
                owner_rank=np.empty(0, dtype=int), n_ranks=2,
            )

    @given(st.integers(0, 10**6), st.integers(1, 5))
    @settings(max_examples=20, deadline=None)
    def test_property_matches_serial_classification(self, seed, n_ranks):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(4, 80))
        pts = rng.random((n, 2))
        k = int(rng.integers(1, 4))
        labels = rng.integers(0, k, n)
        owner = rng.integers(0, n_ranks, n)
        tree, _ = parallel_induce_pure_tree(
            pts, labels, k, owner_rank=owner, n_ranks=n_ranks,
            n_bins=8,
        )
        tree.validate()
        assert np.array_equal(predict_partition(tree, pts), labels)

    def test_on_real_scene(self, small_sequence):
        """End-to-end: distributed induction over the real contact
        points, owners = MCML+DT partitions."""
        from repro.core.mcml_dt import MCMLDTPartitioner

        snap = small_sequence[0]
        k = 4
        pt = MCMLDTPartitioner(k)
        pt.fit(snap)
        coords = snap.mesh.nodes[snap.contact_nodes]
        labels = pt.part[snap.contact_nodes]
        tree, ledger = parallel_induce_pure_tree(
            coords, labels, k, owner_rank=labels, n_ranks=k
        )
        assert np.array_equal(predict_partition(tree, coords), labels)
