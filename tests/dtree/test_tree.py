"""Tests for the DecisionTree structure."""

import numpy as np
import pytest

from repro.dtree.induction import induce_pure_tree
from repro.dtree.tree import DecisionTree, TreeNode


def small_tree():
    """Hand-built: root splits x at 0.5; leaves labelled 0, 1."""
    tree = DecisionTree(k=2)
    tree.nodes = [
        TreeNode(n_points=4, dim=0, threshold=0.5, left=1, right=2),
        TreeNode(n_points=2, label=0, is_pure=True),
        TreeNode(n_points=2, label=1, is_pure=True),
    ]
    return tree


class TestStructure:
    def test_counts(self):
        t = small_tree()
        assert t.n_nodes == 3
        assert t.n_leaves == 2
        assert t.depth() == 1

    def test_leaf_ids_and_labels(self):
        t = small_tree()
        assert t.leaf_ids().tolist() == [1, 2]
        assert t.leaf_labels().tolist() == [0, 1]
        assert t.partitions_present().tolist() == [0, 1]

    def test_single_leaf_tree(self):
        t = DecisionTree(k=1)
        t.nodes = [TreeNode(n_points=5, label=0, is_pure=True)]
        assert t.depth() == 0
        assert t.n_leaves == 1
        t.validate()


class TestValidate:
    def test_valid_tree_passes(self):
        small_tree().validate()

    def test_point_count_mismatch(self):
        t = small_tree()
        t.nodes[1].n_points = 3
        with pytest.raises(ValueError, match="point count"):
            t.validate()

    def test_missing_child(self):
        t = small_tree()
        t.nodes[0].right = -1  # interior node with one child looks leafy
        # it now reads as a leaf with dim set but also has unreachable node 2
        with pytest.raises(ValueError):
            t.validate()

    def test_label_out_of_range(self):
        t = small_tree()
        t.nodes[2].label = 7
        with pytest.raises(ValueError, match="label"):
            t.validate()

    def test_unreachable_node(self):
        t = small_tree()
        t.nodes.append(TreeNode(n_points=1, label=0))
        with pytest.raises(ValueError, match="unreachable"):
            t.validate()

    def test_induced_trees_always_valid(self):
        rng = np.random.default_rng(0)
        for trial in range(5):
            pts = rng.random((50, 2))
            labels = rng.integers(0, 4, 50)
            tree, _ = induce_pure_tree(pts, labels, 4)
            tree.validate()

    def test_repr_mentions_size(self):
        assert "nodes=3" in repr(small_tree())
