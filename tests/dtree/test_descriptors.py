"""Tests for subdomain geometric descriptors."""

import numpy as np
import pytest

from repro.dtree.descriptors import SubdomainDescriptors, leaf_regions
from repro.dtree.induction import induce_pure_tree
from repro.geometry.bbox import bbox_of_points, box_volume


def clusters(seed=0):
    rng = np.random.default_rng(seed)
    pts = np.concatenate(
        [rng.random((20, 2)), rng.random((20, 2)) + [3.0, 0.0],
         rng.random((20, 2)) + [1.5, 3.0]]
    )
    labels = np.repeat(np.arange(3), 20)
    return pts, labels


class TestLeafRegions:
    def test_regions_tile_the_domain(self):
        """Leaf regions are disjoint and their volumes sum to the
        domain volume (they partition the space)."""
        pts, labels = clusters()
        tree, _ = induce_pure_tree(pts, labels, 3)
        domain = bbox_of_points(pts)
        ids, regions = leaf_regions(tree, domain)
        assert len(ids) == tree.n_leaves
        total = sum(box_volume(r) for r in regions)
        assert total == pytest.approx(box_volume(domain))

    def test_regions_contain_their_points(self):
        pts, labels = clusters(1)
        tree, leaf_of = induce_pure_tree(pts, labels, 3)
        domain = bbox_of_points(pts)
        ids, regions = leaf_regions(tree, domain)
        region_of = {int(i): r for i, r in zip(ids, regions)}
        for p, leaf in zip(pts, leaf_of):
            r = region_of[int(leaf)]
            assert (p >= r[0] - 1e-12).all() and (p <= r[1] + 1e-12).all()

    def test_single_leaf_covers_domain(self):
        pts = np.random.default_rng(0).random((10, 2))
        tree, _ = induce_pure_tree(pts, np.zeros(10, int), 1)
        domain = bbox_of_points(pts)
        _, regions = leaf_regions(tree, domain)
        assert len(regions) == 1
        assert np.allclose(regions[0], domain)


class TestSubdomainDescriptors:
    def test_every_partition_described(self):
        pts, labels = clusters(2)
        tree, _ = induce_pure_tree(pts, labels, 3)
        desc = SubdomainDescriptors.from_tree(tree, bbox_of_points(pts))
        assert set(desc.regions_of) == {0, 1, 2}
        assert desc.n_regions() == tree.n_leaves

    def test_zero_overlap_invariant(self):
        """The paper's key geometric property: descriptor regions of
        different subdomains never overlap (no false-positive volume),
        unlike plain bounding boxes."""
        pts, labels = clusters(3)
        tree, _ = induce_pure_tree(pts, labels, 3)
        desc = SubdomainDescriptors.from_tree(tree, bbox_of_points(pts))
        assert desc.total_overlap_volume() == pytest.approx(0.0)

    def test_volumes_sum_to_domain(self):
        pts, labels = clusters(4)
        tree, _ = induce_pure_tree(pts, labels, 3)
        domain = bbox_of_points(pts)
        desc = SubdomainDescriptors.from_tree(tree, domain)
        total = sum(desc.volume_of(p) for p in range(3))
        assert total == pytest.approx(box_volume(domain))

    def test_missing_partition_zero_volume(self):
        pts, labels = clusters(5)
        tree, _ = induce_pure_tree(pts, labels, 3)
        desc = SubdomainDescriptors.from_tree(tree, bbox_of_points(pts))
        assert desc.volume_of(99) == 0.0
