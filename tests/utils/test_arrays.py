"""Tests for repro.utils.arrays (including hypothesis properties)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.utils.arrays import (
    counts_per_label,
    group_by_label,
    relabel_contiguous,
)


class TestCountsPerLabel:
    def test_basic(self):
        out = counts_per_label(np.array([0, 1, 1, 3]), 5)
        assert out.tolist() == [1, 2, 0, 1, 0]

    def test_empty(self):
        assert counts_per_label(np.array([], dtype=int), 3).tolist() == [
            0, 0, 0,
        ]

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError, match="labels must lie"):
            counts_per_label(np.array([0, 5]), 3)
        with pytest.raises(ValueError, match="labels must lie"):
            counts_per_label(np.array([-1]), 3)


class TestGroupByLabel:
    def test_partition_of_indices(self):
        labels = np.array([2, 0, 1, 0, 2, 2])
        groups = group_by_label(labels, 3)
        assert groups[0].tolist() == [1, 3]
        assert groups[1].tolist() == [2]
        assert groups[2].tolist() == [0, 4, 5]

    def test_empty_groups_present(self):
        groups = group_by_label(np.array([0, 0]), 4)
        assert [len(g) for g in groups] == [2, 0, 0, 0]

    @given(
        st.lists(st.integers(min_value=0, max_value=6), max_size=80),
    )
    @settings(max_examples=50, deadline=None)
    def test_property_groups_cover_exactly(self, labels):
        labels = np.asarray(labels, dtype=np.int64)
        groups = group_by_label(labels, 7)
        # every index appears in exactly one group, with correct label
        seen = np.concatenate([g for g in groups]) if len(labels) else []
        assert sorted(seen) == list(range(len(labels)))
        for lab, g in enumerate(groups):
            assert (labels[g] == lab).all()


class TestRelabelContiguous:
    def test_roundtrip(self):
        labels = np.array([10, 3, 10, 7])
        new, uniq = relabel_contiguous(labels)
        assert np.array_equal(uniq[new], labels)

    def test_dense_range(self):
        new, uniq = relabel_contiguous(np.array([5, 5, 9]))
        assert set(new.tolist()) == {0, 1}
        assert uniq.tolist() == [5, 9]

    @given(st.lists(st.integers(-50, 50), min_size=1, max_size=60))
    @settings(max_examples=50, deadline=None)
    def test_property_inverse(self, labels):
        labels = np.asarray(labels)
        new, uniq = relabel_contiguous(labels)
        assert np.array_equal(uniq[new], labels)
        assert new.min() == 0
        assert new.max() == len(uniq) - 1
