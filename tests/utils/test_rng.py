"""Tests for repro.utils.rng."""

import numpy as np
import pytest

from repro.utils.rng import as_rng, spawn_rngs


class TestAsRng:
    def test_int_seed_is_deterministic(self):
        a = as_rng(7).integers(0, 1000, size=10)
        b = as_rng(7).integers(0, 1000, size=10)
        assert np.array_equal(a, b)

    def test_different_seeds_differ(self):
        a = as_rng(1).integers(0, 10**9, size=8)
        b = as_rng(2).integers(0, 10**9, size=8)
        assert not np.array_equal(a, b)

    def test_generator_passthrough(self):
        gen = np.random.default_rng(3)
        assert as_rng(gen) is gen

    def test_none_gives_generator(self):
        assert isinstance(as_rng(None), np.random.Generator)


class TestSpawnRngs:
    def test_count(self):
        assert len(spawn_rngs(0, 5)) == 5

    def test_children_are_independent_streams(self):
        children = spawn_rngs(0, 3)
        draws = [c.integers(0, 10**9, size=4) for c in children]
        assert not np.array_equal(draws[0], draws[1])
        assert not np.array_equal(draws[1], draws[2])

    def test_deterministic_in_root_seed(self):
        a = [c.integers(0, 10**6) for c in spawn_rngs(11, 4)]
        b = [c.integers(0, 10**6) for c in spawn_rngs(11, 4)]
        assert a == b

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            spawn_rngs(0, -1)

    def test_zero_count(self):
        assert spawn_rngs(0, 0) == []
