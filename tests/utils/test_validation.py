"""Tests for repro.utils.validation."""

import types

import numpy as np
import pytest

from repro.utils.validation import (
    check_array,
    check_in_range,
    check_positive,
    require,
)


class TestRequire:
    def test_passes_silently(self):
        require(True, "never raised")

    def test_raises_with_message(self):
        with pytest.raises(ValueError, match="broken invariant"):
            require(False, "broken invariant")


class TestCheckPositive:
    def test_strict_accepts_positive(self):
        check_positive("x", 0.5)

    def test_strict_rejects_zero(self):
        with pytest.raises(ValueError, match="x must be > 0"):
            check_positive("x", 0)

    def test_non_strict_accepts_zero(self):
        check_positive("x", 0, strict=False)

    def test_non_strict_rejects_negative(self):
        with pytest.raises(ValueError, match=">= 0"):
            check_positive("x", -1, strict=False)


class TestCheckInRange:
    def test_inclusive_bounds_accepted(self):
        check_in_range("f", 0.0, 0.0, 1.0)
        check_in_range("f", 1.0, 0.0, 1.0)

    def test_exclusive_bounds_rejected(self):
        with pytest.raises(ValueError):
            check_in_range("f", 0.0, 0.0, 1.0, inclusive=False)

    def test_out_of_range(self):
        with pytest.raises(ValueError, match="f must satisfy"):
            check_in_range("f", 1.5, 0.0, 1.0)


class TestCheckArray:
    def test_ndim_mismatch(self):
        with pytest.raises(ValueError, match="ndim=2"):
            check_array("a", np.zeros(3), ndim=2)

    def test_shape_wildcards(self):
        out = check_array("a", np.zeros((4, 2)), shape=(None, 2))
        assert out.shape == (4, 2)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError, match="shape"):
            check_array("a", np.zeros((4, 3)), shape=(None, 2))

    def test_shape_rank_mismatch(self):
        with pytest.raises(ValueError, match="shape"):
            check_array("a", np.zeros(4), shape=(None, 2))

    def test_dtype_kind(self):
        check_array("a", np.zeros(3, dtype=np.int64), dtype_kind="iu")
        with pytest.raises(ValueError, match="dtype kind"):
            check_array("a", np.zeros(3), dtype_kind="iu")

    def test_coerces_lists(self):
        out = check_array("a", [[1, 2], [3, 4]], ndim=2)
        assert isinstance(out, np.ndarray)


class TestCheckLabels:
    def test_accepts_valid_labels(self):
        from repro.utils.validation import check_labels

        out = check_labels("part", np.array([0, 2, 1]), 3)
        assert out.tolist() == [0, 2, 1]

    def test_rejects_out_of_range(self):
        from repro.utils.validation import check_labels

        with pytest.raises(ValueError, match="must lie in"):
            check_labels("part", np.array([0, 3]), 3)
        with pytest.raises(ValueError, match="must lie in"):
            check_labels("part", np.array([-1, 0]), 3)

    def test_rejects_wrong_size(self):
        from repro.utils.validation import check_labels

        with pytest.raises(ValueError, match="lengths differ"):
            check_labels("part", np.array([0, 1]), 2, size=3)

    def test_rejects_float_dtype(self):
        from repro.utils.validation import check_labels

        with pytest.raises(ValueError, match="dtype kind"):
            check_labels("part", np.array([0.0, 1.0]), 2)

    def test_accepts_empty(self):
        from repro.utils.validation import check_labels

        assert len(check_labels("part", np.empty(0, dtype=np.int64), 4)) == 0


class TestCheckCSRArrays:
    def _graph_arrays(self):
        xadj = np.array([0, 1, 2], dtype=np.int64)
        adjncy = np.array([1, 0], dtype=np.int64)
        adjwgt = np.ones(2, dtype=np.int64)
        vwgts = np.ones((2, 1), dtype=np.int64)
        return xadj, adjncy, adjwgt, vwgts

    def test_accepts_csr_graph(self):
        from repro.graph.csr import CSRGraph
        from repro.utils.validation import check_csr_arrays

        check_csr_arrays(CSRGraph(*self._graph_arrays()))

    def test_rejects_misaligned_xadj(self):
        from repro.utils.validation import check_csr_arrays

        xadj, adjncy, adjwgt, vwgts = self._graph_arrays()
        bad = types.SimpleNamespace(
            xadj=np.array([0, 1, 3], dtype=np.int64),
            adjncy=adjncy, adjwgt=adjwgt, vwgts=vwgts,
        )
        with pytest.raises(ValueError, match="xadj"):
            check_csr_arrays(bad)

    def test_rejects_negative_weights(self):
        from repro.utils.validation import check_csr_arrays

        xadj, adjncy, adjwgt, vwgts = self._graph_arrays()
        bad = types.SimpleNamespace(
            xadj=xadj, adjncy=adjncy, adjwgt=adjwgt,
            vwgts=np.array([[1], [-1]], dtype=np.int64),
        )
        with pytest.raises(ValueError, match="non-negative"):
            check_csr_arrays(bad)

    def test_rejects_non_contiguous(self):
        from repro.utils.validation import check_csr_arrays

        xadj, adjncy, adjwgt, vwgts = self._graph_arrays()
        bad = types.SimpleNamespace(
            xadj=xadj, adjncy=adjncy, adjwgt=adjwgt,
            vwgts=np.ones((2, 4), dtype=np.int64)[:, ::2],
        )
        with pytest.raises(ValueError, match="contiguous"):
            check_csr_arrays(bad)

    def test_rejects_float_adjacency(self):
        from repro.utils.validation import check_csr_arrays

        xadj, adjncy, adjwgt, vwgts = self._graph_arrays()
        bad = types.SimpleNamespace(
            xadj=xadj, adjncy=adjncy.astype(float),
            adjwgt=adjwgt, vwgts=vwgts,
        )
        with pytest.raises(ValueError, match="dtype kind"):
            check_csr_arrays(bad)
