"""Tests for repro.utils.validation."""

import numpy as np
import pytest

from repro.utils.validation import (
    check_array,
    check_in_range,
    check_positive,
    require,
)


class TestRequire:
    def test_passes_silently(self):
        require(True, "never raised")

    def test_raises_with_message(self):
        with pytest.raises(ValueError, match="broken invariant"):
            require(False, "broken invariant")


class TestCheckPositive:
    def test_strict_accepts_positive(self):
        check_positive("x", 0.5)

    def test_strict_rejects_zero(self):
        with pytest.raises(ValueError, match="x must be > 0"):
            check_positive("x", 0)

    def test_non_strict_accepts_zero(self):
        check_positive("x", 0, strict=False)

    def test_non_strict_rejects_negative(self):
        with pytest.raises(ValueError, match=">= 0"):
            check_positive("x", -1, strict=False)


class TestCheckInRange:
    def test_inclusive_bounds_accepted(self):
        check_in_range("f", 0.0, 0.0, 1.0)
        check_in_range("f", 1.0, 0.0, 1.0)

    def test_exclusive_bounds_rejected(self):
        with pytest.raises(ValueError):
            check_in_range("f", 0.0, 0.0, 1.0, inclusive=False)

    def test_out_of_range(self):
        with pytest.raises(ValueError, match="f must satisfy"):
            check_in_range("f", 1.5, 0.0, 1.0)


class TestCheckArray:
    def test_ndim_mismatch(self):
        with pytest.raises(ValueError, match="ndim=2"):
            check_array("a", np.zeros(3), ndim=2)

    def test_shape_wildcards(self):
        out = check_array("a", np.zeros((4, 2)), shape=(None, 2))
        assert out.shape == (4, 2)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError, match="shape"):
            check_array("a", np.zeros((4, 3)), shape=(None, 2))

    def test_shape_rank_mismatch(self):
        with pytest.raises(ValueError, match="shape"):
            check_array("a", np.zeros(4), shape=(None, 2))

    def test_dtype_kind(self):
        check_array("a", np.zeros(3, dtype=np.int64), dtype_kind="iu")
        with pytest.raises(ValueError, match="dtype kind"):
            check_array("a", np.zeros(3), dtype_kind="iu")

    def test_coerces_lists(self):
        out = check_array("a", [[1, 2], [3, 4]], ndim=2)
        assert isinstance(out, np.ndarray)
