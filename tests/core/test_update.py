"""Tests for the §4.3 update strategies."""

import numpy as np
import pytest

from repro.core.mcml_dt import MCMLDTParams
from repro.core.update import ReplayResult, UpdateStrategy, replay_sequence
from repro.partition.config import PartitionOptions

K = 4


def params():
    return MCMLDTParams(options=PartitionOptions(seed=0))


class TestReplaySequence:
    def test_descriptor_only_never_moves_vertices(self, small_sequence):
        r = replay_sequence(
            small_sequence, K, UpdateStrategy.DESCRIPTOR_ONLY,
            params=params(),
        )
        assert r.total_moved() == 0
        assert len(r.steps) == len(small_sequence)

    def test_repartition_moves_when_drift(self, small_sequence):
        r = replay_sequence(
            small_sequence, K, UpdateStrategy.REPARTITION, params=params()
        )
        # moves may be zero if the scene barely drifts, but the field
        # must be populated per step and non-negative
        assert all(s.n_moved >= 0 for s in r.steps)
        assert r.steps[0].n_moved == 0  # never repartition the first step

    def test_hybrid_moves_only_on_period(self, small_sequence):
        r = replay_sequence(
            small_sequence, K, UpdateStrategy.HYBRID, period=5,
            params=params(),
        )
        for s in r.steps:
            if s.step % 5 != 0 or s.step == 0:
                assert s.n_moved == 0

    def test_trees_track_every_step(self, small_sequence):
        r = replay_sequence(
            small_sequence, K, UpdateStrategy.DESCRIPTOR_ONLY,
            params=params(),
        )
        assert all(s.nt_nodes >= 1 for s in r.steps)

    def test_repartition_keeps_balance_tighter(self, small_sequence):
        """Repartitioning bounds imbalance drift at least as well as
        never repartitioning."""
        fixed = replay_sequence(
            small_sequence, K, UpdateStrategy.DESCRIPTOR_ONLY,
            params=params(),
        )
        repart = replay_sequence(
            small_sequence, K, UpdateStrategy.REPARTITION, params=params()
        )
        assert repart.max_imbalance() <= fixed.max_imbalance() + 0.05

    def test_invalid_period(self, small_sequence):
        with pytest.raises(ValueError, match="period"):
            replay_sequence(
                small_sequence, K, UpdateStrategy.HYBRID, period=0
            )


class TestReplayResult:
    def test_aggregates(self):
        from repro.core.update import ReplayStep

        r = ReplayResult(strategy=UpdateStrategy.HYBRID, k=2)
        r.steps = [
            ReplayStep(0, nt_nodes=10, imbalance_fe=1.1,
                       imbalance_search=1.0, n_moved=0),
            ReplayStep(1, nt_nodes=20, imbalance_fe=1.0,
                       imbalance_search=1.3, n_moved=5),
        ]
        assert r.mean_nt_nodes() == 15.0
        assert r.max_imbalance() == 1.3
        assert r.total_moved() == 5
