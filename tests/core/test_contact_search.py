"""Tests for contact search: serial reference, parallel execution, and
the completeness of both filters (the paper's correctness claim)."""

import numpy as np
import pytest

from repro.core.contact_search import (
    face_owner_partition,
    parallel_contact_search,
    row_majority,
    serial_candidate_pairs,
)
from repro.core.mcml_dt import MCMLDTParams, MCMLDTPartitioner
from repro.core.ml_rcb import MLRCBPartitioner
from repro.geometry.bbox import element_bboxes
from repro.partition.config import PartitionOptions


class TestRowMajority:
    def test_basic(self):
        labels = np.array([[1, 2, 2, 3], [5, 5, 1, 1], [4, 4, 4, 0]])
        assert row_majority(labels).tolist() == [2, 1, 4]

    def test_tie_prefers_smaller(self):
        assert row_majority(np.array([[3, 1, 3, 1]])).tolist() == [1]

    def test_single_column(self):
        assert row_majority(np.array([[7], [2]])).tolist() == [7, 2]


class TestFaceOwner:
    def test_majority_of_nodes(self):
        part = np.array([0, 0, 1, 1, 1])
        faces = np.array([[0, 1, 2], [2, 3, 4]])
        assert face_owner_partition(part, faces).tolist() == [0, 1]


class TestSerialSearch:
    def test_finds_containment(self):
        pts = np.array([[0.5, 0.5], [5.0, 5.0]])
        ids = np.array([10, 11])
        boxes = np.array([[[0.0, 0.0], [1.0, 1.0]]])
        faces = np.array([[98, 99]])  # element's own nodes (not 10/11)
        pairs = serial_candidate_pairs(boxes, faces, pts, ids)
        assert pairs == {(0, 10)}

    def test_excludes_own_nodes(self):
        pts = np.array([[0.5, 0.5]])
        ids = np.array([10])
        boxes = np.array([[[0.0, 0.0], [1.0, 1.0]]])
        faces = np.array([[10, 99]])  # node 10 belongs to the element
        pairs = serial_candidate_pairs(boxes, faces, pts, ids)
        assert pairs == set()

    def test_empty_inputs(self):
        assert (
            serial_candidate_pairs(
                np.empty((0, 2, 2)), np.empty((0, 2), dtype=int),
                np.empty((0, 2)), np.empty(0, dtype=int),
            )
            == set()
        )


PAD = 0.3  # contact capture distance: plate spacing is 0.5, so this
# reaches across the projectile/channel-wall gap without being trivial


def padded_boxes(snap):
    boxes = element_bboxes(snap.mesh.nodes, snap.contact_faces)
    boxes[:, 0] -= PAD
    boxes[:, 1] += PAD
    return boxes


@pytest.fixture(scope="module")
def search_scene(mid_sequence):
    """A mid-penetration snapshot with fitted MCML+DT partitioner.

    Both partitioners use ``pad=PAD`` so their filters see the same
    padded element boxes the detection tests use.
    """
    snap = mid_sequence[20]
    k = 6
    pt = MCMLDTPartitioner(
        k, MCMLDTParams(options=PartitionOptions(seed=0), pad=PAD)
    )
    pt.fit(snap)
    return snap, pt, k


class TestParallelEqualsSerial:
    def test_tree_filter_complete(self, search_scene, spmd_backend):
        """MCML+DT parallel search finds exactly the serial candidate
        set — the decision-tree filter loses nothing, on every
        execution backend, with identical ledger accounting."""
        snap, pt, k = search_scene
        tree, _ = pt.build_descriptors(snap)
        plan = pt.search_plan(snap, tree)
        boxes = padded_boxes(snap)
        coords = snap.mesh.nodes[snap.contact_nodes]
        point_part = pt.part[snap.contact_nodes]

        serial = serial_candidate_pairs(
            boxes, snap.contact_faces, coords, snap.contact_nodes
        )
        parallel, ledger = parallel_contact_search(
            plan, boxes, snap.contact_faces, coords,
            snap.contact_nodes, point_part, k, backend=spmd_backend,
        )
        assert parallel == serial
        assert ledger.items("contact-exchange") == plan.n_remote

    def test_bbox_filter_complete(self, search_scene):
        """ML+RCB parallel search also finds the full serial set."""
        snap, _, k = search_scene
        from repro.core.ml_rcb import MLRCBParams
        ml = MLRCBPartitioner(k, MLRCBParams(pad=PAD))
        ml.fit(snap)
        plan = ml.search_plan(snap)
        boxes = padded_boxes(snap)
        coords = snap.mesh.nodes[ml.contact_ids]

        serial = serial_candidate_pairs(
            boxes, snap.contact_faces, coords, ml.contact_ids
        )
        parallel, _ = parallel_contact_search(
            plan, boxes, snap.contact_faces, coords,
            ml.contact_ids, ml.rcb_labels, k,
        )
        assert parallel == serial

    def test_ledger_matches_plan(self, search_scene):
        snap, pt, k = search_scene
        plan = pt.search_plan(snap)
        boxes = padded_boxes(snap)
        coords = snap.mesh.nodes[snap.contact_nodes]
        _, ledger = parallel_contact_search(
            plan, boxes, snap.contact_faces, coords,
            snap.contact_nodes, pt.part[snap.contact_nodes], k,
        )
        assert ledger.items("contact-exchange") == plan.n_remote
        # per-rank sends sum to the total
        total = sum(
            ledger.sent_by_rank[("contact-exchange", r)] for r in range(k)
        )
        assert total == plan.n_remote

    def test_backends_bit_identical(self, search_scene, spmd_backend):
        """The thread/process backends reproduce the serial backend's
        candidate set and ledger exactly (not just the serial search
        reference) — the determinism guarantee of the runtime."""
        snap, pt, k = search_scene
        plan = pt.search_plan(snap)
        boxes = padded_boxes(snap)
        coords = snap.mesh.nodes[snap.contact_nodes]
        point_part = pt.part[snap.contact_nodes]

        reference, ref_ledger = parallel_contact_search(
            plan, boxes, snap.contact_faces, coords,
            snap.contact_nodes, point_part, k, backend="serial",
        )
        got, ledger = parallel_contact_search(
            plan, boxes, snap.contact_faces, coords,
            snap.contact_nodes, point_part, k, backend=spmd_backend,
        )
        assert got == reference
        assert ledger.summary() == ref_ledger.summary()
        assert dict(ledger.sent_by_rank) == dict(ref_ledger.sent_by_rank)

    def test_serial_search_nontrivial(self, search_scene):
        """Sanity: the scene actually produces contact candidates
        (projectile faces near plate nodes)."""
        snap, pt, k = search_scene
        boxes = padded_boxes(snap)
        coords = snap.mesh.nodes[snap.contact_nodes]
        serial = serial_candidate_pairs(
            boxes, snap.contact_faces, coords, snap.contact_nodes
        )
        assert len(serial) > 0
