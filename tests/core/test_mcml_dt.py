"""Tests for the MCML+DT partitioner."""

import numpy as np
import pytest

from repro.core.mcml_dt import MCMLDTParams, MCMLDTPartitioner
from repro.core.weights import build_contact_graph
from repro.dtree.query import assign_points
from repro.graph.metrics import load_imbalance
from repro.partition.config import PartitionOptions


K = 6


@pytest.fixture(scope="module")
def fitted(mid_sequence):
    params = MCMLDTParams(options=PartitionOptions(seed=0))
    pt = MCMLDTPartitioner(K, params)
    pt.fit(mid_sequence[0])
    return pt


class TestFit:
    def test_partition_covers_all_nodes(self, fitted, mid_sequence):
        assert len(fitted.part) == mid_sequence[0].mesh.num_nodes
        assert fitted.part.min() >= 0 and fitted.part.max() < K

    def test_both_constraints_balanced(self, fitted, mid_sequence):
        g = build_contact_graph(mid_sequence[0])
        imb = load_imbalance(g, fitted.part, K)
        assert imb[0] <= 1.15  # FE work
        assert imb[1] <= 1.15  # contact-search work

    def test_diagnostics_populated(self, fitted):
        d = fitted.diagnostics
        assert d.edge_cut_initial > 0
        assert d.edge_cut_final > 0
        assert d.reshape_tree_nodes > 0
        assert d.max_p > d.max_i > 0

    def test_reshape_actually_moves_points(self, fitted):
        assert fitted.diagnostics.reshape_moved > 0

    def test_unfitted_raises(self, mid_sequence):
        pt = MCMLDTPartitioner(4)
        with pytest.raises(RuntimeError, match="fit"):
            pt.build_descriptors(mid_sequence[0])
        with pytest.raises(RuntimeError, match="fit"):
            pt.search_plan(mid_sequence[0])

    def test_k_validation(self):
        with pytest.raises(ValueError, match="k must be"):
            MCMLDTPartitioner(0)

    def test_reshape_off_ablation(self, mid_sequence):
        params = MCMLDTParams(reshape=False, options=PartitionOptions(seed=0))
        pt = MCMLDTPartitioner(K, params)
        pt.fit(mid_sequence[0])
        assert pt.diagnostics.reshape_tree_nodes == 0
        assert pt.diagnostics.reshape_moved == 0

    def test_k_one_trivial(self, mid_sequence):
        pt = MCMLDTPartitioner(1)
        pt.fit(mid_sequence[0])
        assert (pt.part == 0).all()


class TestReshapeGeometry:
    def test_reshape_reduces_descriptor_tree_size(self, mid_sequence):
        """The point of P→P'→P'': the contact-point search tree induced
        on the reshaped partition is not meaningfully larger (and is
        usually smaller) than on the raw multi-constraint partition.
        The effect is statistical, so a small per-instance slack is
        allowed; the evaluation-scale bench checks the averaged
        effect."""
        snap = mid_sequence[0]
        plain = MCMLDTPartitioner(
            K, MCMLDTParams(reshape=False, options=PartitionOptions(seed=0))
        )
        plain.fit(snap)
        shaped = MCMLDTPartitioner(
            K, MCMLDTParams(options=PartitionOptions(seed=0))
        )
        shaped.fit(snap)
        t_plain, _ = plain.build_descriptors(snap)
        t_shaped, _ = shaped.build_descriptors(snap)
        assert t_shaped.n_nodes <= 1.25 * t_plain.n_nodes

    def test_custom_bounds_respected(self, mid_sequence):
        snap = mid_sequence[0]
        params = MCMLDTParams(
            max_p=50, max_i=10, options=PartitionOptions(seed=0)
        )
        pt = MCMLDTPartitioner(K, params)
        pt.fit(snap)
        assert pt.diagnostics.max_p == 50
        assert pt.diagnostics.max_i == 10


class TestDescriptors:
    def test_pure_tree_over_contact_points(self, fitted, mid_sequence):
        snap = mid_sequence[0]
        tree, leaf_of = fitted.build_descriptors(snap)
        tree.validate()
        coords = snap.mesh.nodes[snap.contact_nodes]
        leaves = assign_points(tree, coords)
        assert np.array_equal(leaves, leaf_of)
        # every leaf pure -> classifies the partition labels exactly
        labels = np.array([tree.nodes[l].label for l in leaves])
        assert np.array_equal(labels, fitted.part[snap.contact_nodes])

    def test_descriptors_follow_moving_points(self, fitted, mid_sequence):
        """Descriptor-only updates: re-inducing the tree at a later
        snapshot still classifies the (fixed) partition exactly."""
        snap = mid_sequence[-1]
        tree, _ = fitted.build_descriptors(snap)
        coords = snap.mesh.nodes[snap.contact_nodes]
        from repro.dtree.query import predict_partition

        got = predict_partition(tree, coords)
        assert np.array_equal(got, fitted.part[snap.contact_nodes])


class TestSearchPlan:
    def test_no_self_sends(self, fitted, mid_sequence):
        snap = mid_sequence[10]
        plan = fitted.search_plan(snap)
        owners = plan.owner
        assert not plan.send_matrix[
            np.arange(len(owners)), owners
        ].any()

    def test_n_remote_nonnegative_and_bounded(self, fitted, mid_sequence):
        snap = mid_sequence[10]
        plan = fitted.search_plan(snap)
        m = len(snap.contact_faces)
        assert 0 <= plan.n_remote <= m * (K - 1)
