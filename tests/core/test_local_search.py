"""Tests for the local-search phase (closest-point projection / gaps)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.local_search import (
    ContactResolution,
    _closest_point_on_segments,
    _closest_point_on_triangles,
    penetration_summary,
    resolve_candidates,
)


class TestSegments:
    def test_interior_projection(self):
        p = np.array([[0.5, 1.0]])
        a, b = np.array([[0.0, 0.0]]), np.array([[1.0, 0.0]])
        out = _closest_point_on_segments(p, a, b)
        assert np.allclose(out, [[0.5, 0.0]])

    def test_clamps_to_endpoints(self):
        p = np.array([[-2.0, 1.0], [3.0, 1.0]])
        a = np.repeat([[0.0, 0.0]], 2, axis=0)
        b = np.repeat([[1.0, 0.0]], 2, axis=0)
        out = _closest_point_on_segments(p, a, b)
        assert np.allclose(out, [[0.0, 0.0], [1.0, 0.0]])

    def test_degenerate_segment(self):
        p = np.array([[1.0, 1.0]])
        a = b = np.array([[0.0, 0.0]])
        out = _closest_point_on_segments(p, a, b)
        assert np.allclose(out, [[0.0, 0.0]])


class TestTriangles:
    def _tri(self):
        return (
            np.array([[0.0, 0.0, 0.0]]),
            np.array([[1.0, 0.0, 0.0]]),
            np.array([[0.0, 1.0, 0.0]]),
        )

    def test_interior(self):
        a, b, c = self._tri()
        p = np.array([[0.25, 0.25, 2.0]])
        out = _closest_point_on_triangles(p, a, b, c)
        assert np.allclose(out, [[0.25, 0.25, 0.0]])

    def test_vertex_regions(self):
        a, b, c = self._tri()
        p = np.array([[-1.0, -1.0, 0.5]])
        out = _closest_point_on_triangles(p, a, b, c)
        assert np.allclose(out, [[0.0, 0.0, 0.0]])

    def test_edge_region(self):
        a, b, c = self._tri()
        p = np.array([[0.5, -1.0, 0.0]])
        out = _closest_point_on_triangles(p, a, b, c)
        assert np.allclose(out, [[0.5, 0.0, 0.0]])

    @given(st.integers(0, 10**6))
    @settings(max_examples=60, deadline=None)
    def test_property_closest_beats_corners_and_centroid(self, seed):
        """The returned point is never farther than any corner or the
        centroid (a necessary condition of being the closest point)."""
        rng = np.random.default_rng(seed)
        a, b, c = (rng.standard_normal((1, 3)) for _ in range(3))
        p = rng.standard_normal((1, 3)) * 2
        out = _closest_point_on_triangles(p, a, b, c)
        d_out = np.linalg.norm(p - out)
        for ref in (a, b, c, (a + b + c) / 3):
            assert d_out <= np.linalg.norm(p - ref) + 1e-9


class TestResolveCandidates:
    def test_2d_gap_sign(self):
        # an edge along +x; left normal is +y: nodes above have gap > 0
        nodes = np.array(
            [[0.0, 0.0], [1.0, 0.0], [0.5, 0.4], [0.5, -0.3]]
        )
        faces = np.array([[0, 1]])
        res = resolve_candidates(nodes, faces, [(0, 2), (0, 3)])
        assert res.gap[0] == pytest.approx(0.4)
        assert res.gap[1] == pytest.approx(-0.3)
        assert res.penetrating.tolist() == [False, True]

    def test_3d_quad_face(self):
        # unit quad in z=0 plane, CCW from +z: normal +z
        nodes = np.array(
            [
                [0.0, 0.0, 0.0], [1.0, 0.0, 0.0],
                [1.0, 1.0, 0.0], [0.0, 1.0, 0.0],
                [0.5, 0.5, 0.25], [0.5, 0.5, -0.5],
            ]
        )
        faces = np.array([[0, 1, 2, 3]])
        res = resolve_candidates(nodes, faces, [(0, 4), (0, 5)])
        assert res.gap[0] == pytest.approx(0.25)
        assert res.gap[1] == pytest.approx(-0.5)
        assert np.allclose(res.point[0], [0.5, 0.5, 0.0])

    def test_empty_candidates(self):
        nodes = np.zeros((3, 2))
        res = resolve_candidates(nodes, np.array([[0, 1]]), [])
        assert len(res.pairs) == 0
        assert res.worst_penetration() == 0.0

    def test_summary(self):
        nodes = np.array(
            [[0.0, 0.0], [1.0, 0.0], [0.5, 0.2], [0.5, -0.1]]
        )
        faces = np.array([[0, 1]])
        res = resolve_candidates(nodes, faces, [(0, 2), (0, 3)])
        s = penetration_summary(res)
        assert s["candidates"] == 2
        assert s["penetrating"] == 1
        assert s["worst_penetration"] == pytest.approx(-0.1)

    def test_pipeline_integration(self, small_sequence):
        """Global search candidates resolve without error on the real
        scene, and deep penetration is absent (the synthetic kinematics
        erode before deep overlap)."""
        from repro.core.contact_search import serial_candidate_pairs
        from repro.geometry.bbox import element_bboxes

        snap = small_sequence[8]
        boxes = element_bboxes(snap.mesh.nodes, snap.contact_faces)
        boxes[:, 0] -= 0.2
        boxes[:, 1] += 0.2
        pairs = serial_candidate_pairs(
            boxes, snap.contact_faces,
            snap.mesh.nodes[snap.contact_nodes], snap.contact_nodes,
        )
        res = resolve_candidates(
            snap.mesh.nodes, snap.contact_faces, sorted(pairs)
        )
        assert len(res.pairs) == len(pairs)
        assert np.isfinite(res.gap).all()
