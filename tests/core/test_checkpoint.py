"""Tests for checkpoint/restart."""

import numpy as np
import pytest

from repro.core.checkpoint import load_driver, save_driver
from repro.core.driver import ContactStepDriver
from repro.core.mcml_dt import MCMLDTParams
from repro.core.update import UpdateStrategy
from repro.partition.config import PartitionOptions

K = 4


def params():
    return MCMLDTParams(pad=0.2, options=PartitionOptions(seed=0))


class TestCheckpoint:
    def test_roundtrip_restores_partition(self, small_sequence, tmp_path):
        driver = ContactStepDriver(K, params())
        driver.initialize(small_sequence[0])
        driver.step(small_sequence[0])
        path = tmp_path / "ck.npz"
        save_driver(path, driver)
        restored = load_driver(path)
        assert np.array_equal(
            restored.partitioner.part, driver.partitioner.part
        )
        assert restored.k == K

    def test_restored_driver_continues(self, small_sequence, tmp_path):
        """A restarted driver steps on and produces the same metrics as
        an uninterrupted one."""
        a = ContactStepDriver(K, params())
        a.initialize(small_sequence[0])
        for snap in small_sequence.snapshots[:4]:
            a.step(snap)
        path = tmp_path / "mid.npz"
        save_driver(path, a)
        b = load_driver(path)
        ra = [a.step(s) for s in small_sequence.snapshots[4:8]]
        rb = [b.step(s) for s in small_sequence.snapshots[4:8]]
        for x, y in zip(ra, rb):
            assert x.nt_nodes == y.nt_nodes
            assert x.n_remote == y.n_remote
            assert x.fe_comm == y.fe_comm

    def test_ledger_totals_carried(self, small_sequence, tmp_path):
        driver = ContactStepDriver(K, params())
        driver.initialize(small_sequence[0])
        for snap in small_sequence.snapshots[:3]:
            driver.step(snap)
        before = driver.total_exchanged()
        path = tmp_path / "led.npz"
        save_driver(path, driver)
        restored = load_driver(path)
        assert restored.total_exchanged() == before

    def test_strategy_and_phase_preserved(self, small_sequence, tmp_path):
        driver = ContactStepDriver(
            K, params(), strategy=UpdateStrategy.HYBRID,
            repartition_period=5,
        )
        driver.initialize(small_sequence[0])
        for snap in small_sequence.snapshots[:3]:
            driver.step(snap)
        path = tmp_path / "strategy.npz"
        save_driver(path, driver)
        restored = load_driver(path)
        assert restored.strategy is UpdateStrategy.HYBRID
        assert restored.repartition_period == 5
        assert (
            restored._steps_since_repartition
            == driver._steps_since_repartition
        )

    def test_per_rank_totals_carried(self, small_sequence, tmp_path):
        """Schema v2: the per-rank sent/received breakdown survives the
        round-trip, not just per-phase totals."""
        driver = ContactStepDriver(K, params())
        driver.initialize(small_sequence[0])
        for snap in small_sequence.snapshots[:3]:
            driver.step(snap)
        assert driver.ledger.sent_by_rank  # scene produces traffic
        path = tmp_path / "ranks.npz"
        save_driver(path, driver)
        restored = load_driver(path)
        assert dict(restored.ledger.sent_by_rank) == dict(
            driver.ledger.sent_by_rank
        )
        assert dict(restored.ledger.received_by_rank) == dict(
            driver.ledger.received_by_rank
        )

    def test_v1_checkpoint_still_loads(self, small_sequence, tmp_path):
        import json

        driver = ContactStepDriver(K, params())
        driver.initialize(small_sequence[0])
        driver.step(small_sequence[0])
        path = tmp_path / "v1.npz"
        save_driver(path, driver)
        with np.load(path, allow_pickle=False) as data:
            meta = json.loads(str(data["meta"]))
            part = data["part"]
        meta["schema"] = 1
        del meta["ledger_ranks"]
        del meta["backend"]
        np.savez_compressed(
            path, part=part, meta=np.array(json.dumps(meta))
        )
        restored = load_driver(path)
        assert restored.total_exchanged() == driver.total_exchanged()
        assert not restored.ledger.sent_by_rank  # v1 never stored these

    def test_restart_equivalence_across_backends(
        self, small_sequence, tmp_path, spmd_backend
    ):
        """Checkpoint on the serial backend, restart on each backend:
        the continued run's candidates and ledger deltas are identical
        — restart + backend switch changes nothing observable."""
        a = ContactStepDriver(K, params())
        a.initialize(small_sequence[0])
        for snap in small_sequence.snapshots[:3]:
            a.step(snap)
        path = tmp_path / "switch.npz"
        save_driver(path, a)
        b = load_driver(path, backend=spmd_backend)
        ra = [a.step(s) for s in small_sequence.snapshots[3:6]]
        rb = [b.step(s) for s in small_sequence.snapshots[3:6]]
        for x, y in zip(ra, rb):
            assert x.candidates == y.candidates
            assert x.n_remote == y.n_remote
        assert a.ledger.summary() == b.ledger.summary()
        assert dict(a.ledger.sent_by_rank) == dict(b.ledger.sent_by_rank)

    def test_uninitialized_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="not initialized"):
            save_driver(tmp_path / "x.npz", ContactStepDriver(K, params()))

    def test_schema_checked(self, small_sequence, tmp_path):
        import json

        driver = ContactStepDriver(K, params())
        driver.initialize(small_sequence[0])
        path = tmp_path / "bad.npz"
        save_driver(path, driver)
        with np.load(path, allow_pickle=False) as data:
            meta = json.loads(str(data["meta"]))
            part = data["part"]
        meta["schema"] = 99
        np.savez_compressed(
            path, part=part, meta=np.array(json.dumps(meta))
        )
        with pytest.raises(ValueError, match="schema"):
            load_driver(path)

    def test_part_digest_recorded_and_verified(
        self, small_sequence, tmp_path
    ):
        """Checkpoints carry the canonical content digest of the
        partition vector, and a tampered payload refuses to load."""
        import json

        from repro.graph.digest import digest_arrays

        driver = ContactStepDriver(K, params())
        driver.initialize(small_sequence[0])
        path = tmp_path / "dig.npz"
        save_driver(path, driver)
        with np.load(path, allow_pickle=False) as data:
            meta = json.loads(str(data["meta"]))
            part = data["part"]
        assert meta["part_digest"] == digest_arrays({"part": part})

        corrupt = part.copy()
        corrupt[0] = (corrupt[0] + 1) % K
        np.savez_compressed(
            path, part=corrupt, meta=np.array(json.dumps(meta))
        )
        with pytest.raises(ValueError, match="corrupt"):
            load_driver(path)

    def test_digestless_checkpoint_still_loads(
        self, small_sequence, tmp_path
    ):
        """Checkpoints written before the digest existed (no
        ``part_digest`` key) load without verification."""
        import json

        driver = ContactStepDriver(K, params())
        driver.initialize(small_sequence[0])
        path = tmp_path / "old.npz"
        save_driver(path, driver)
        with np.load(path, allow_pickle=False) as data:
            meta = json.loads(str(data["meta"]))
            part = data["part"]
        del meta["part_digest"]
        np.savez_compressed(
            path, part=part, meta=np.array(json.dumps(meta))
        )
        restored = load_driver(path)
        assert np.array_equal(restored.partitioner.part, part)
