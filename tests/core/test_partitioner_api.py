"""Tests for the unified Partitioner protocol and PartitionResult.

The contract under test: every partitioning strategy implements one
``fit(snapshot, tracer=, ledger=) -> PartitionResult`` API, and the
result's deprecation shim keeps the legacy chained style
(``Partitioner(k).fit(snap).part``) working — loudly.
"""

import numpy as np
import pytest

from repro.core import (
    AprioriPartitioner,
    MCMLDTPartitioner,
    MLRCBPartitioner,
    PartitionDiagnostics,
    Partitioner,
    PartitionResult,
)
from repro.obs.tracer import Tracer
from repro.runtime.ledger import CommLedger

K = 4

ALL_PARTITIONERS = [MCMLDTPartitioner, MLRCBPartitioner, AprioriPartitioner]


@pytest.fixture(scope="module")
def snap(small_sequence):
    return small_sequence[0]


@pytest.mark.parametrize("cls", ALL_PARTITIONERS)
class TestProtocol:
    def test_isinstance(self, cls, snap):
        assert isinstance(cls(K), Partitioner)

    def test_fit_returns_result(self, cls, snap):
        pt = cls(K)
        result = pt.fit(snap)
        assert isinstance(result, PartitionResult)
        assert result.method == cls.method
        assert result.k == K
        assert len(result.labels) == snap.mesh.num_nodes
        assert result.labels.min() >= 0 and result.labels.max() < K
        assert isinstance(result.diagnostics, PartitionDiagnostics)
        assert "edge_cut_final" in result.diagnostics
        assert isinstance(result.ledger, CommLedger)

    def test_fit_uses_caller_ledger_and_tracer(self, cls, snap):
        tracer = Tracer()
        ledger = CommLedger()
        result = cls(K).fit(snap, tracer=tracer, ledger=ledger)
        assert result.ledger is ledger
        assert result.spans is not None and result.spans.name == "fit"
        root = tracer.finish()
        assert root.find("fit") is not None

    def test_labels_are_the_source_partition(self, cls, snap):
        pt = cls(K)
        result = pt.fit(snap)
        src_labels = pt.part_fe if cls is MLRCBPartitioner else pt.part
        assert result.labels is src_labels


class TestDiagnostics:
    def test_mapping_and_attribute_access_agree(self, snap):
        diag = MCMLDTPartitioner(K).fit(snap).diagnostics
        assert diag["edge_cut_final"] == diag.edge_cut_final
        assert set(diag) >= {"edge_cut_initial", "edge_cut_final"}
        assert len(diag) == len(dict(diag))

    def test_unknown_key_lists_available(self, snap):
        diag = AprioriPartitioner(K).fit(snap).diagnostics
        with pytest.raises(AttributeError, match="available"):
            diag.no_such_diagnostic
        with pytest.raises(KeyError):
            diag["no_such_diagnostic"]


class TestDeprecationShim:
    def test_chained_part(self, snap):
        with pytest.deprecated_call(match="'part'"):
            part = MCMLDTPartitioner(K).fit(snap).part
        assert isinstance(part, np.ndarray)

    def test_chained_part_fe(self, snap):
        with pytest.deprecated_call(match="'part_fe'"):
            MLRCBPartitioner(K).fit(snap).part_fe

    def test_chained_method_call(self, snap):
        result = MCMLDTPartitioner(K).fit(snap)
        with pytest.deprecated_call(match="'build_descriptors'"):
            tree, leaf_of = result.build_descriptors(snap)
        assert tree.n_nodes > 0

    def test_chained_setattr_proxies_to_source(self, snap):
        pt = MCMLDTPartitioner(K)
        result = pt.fit(snap)
        new = result.labels.copy()
        with pytest.deprecated_call(match="'part'"):
            result.part = new
        assert pt.part is new

    def test_result_fields_never_warn(self, snap, recwarn):
        result = AprioriPartitioner(K).fit(snap)
        result.labels, result.method, result.k
        result.diagnostics, result.ledger, result.spans
        assert not [w for w in recwarn
                    if issubclass(w.category, DeprecationWarning)]

    def test_unknown_attribute_raises(self, snap):
        result = MCMLDTPartitioner(K).fit(snap)
        with pytest.raises(AttributeError, match="no attribute"):
            result.definitely_not_an_attr

    def test_detached_result_has_no_proxy(self):
        bare = PartitionResult(
            method="x", k=2, labels=np.zeros(4, dtype=np.int64),
            diagnostics=PartitionDiagnostics({}),
        )
        with pytest.raises(AttributeError):
            bare.part
