"""Tests for the sequence-evaluation pipeline (Table-1 engine)."""

import numpy as np
import pytest

from repro.core.mcml_dt import MCMLDTParams
from repro.core.ml_rcb import MLRCBParams
from repro.core.pipeline import (
    SequenceResult,
    StepMetrics,
    evaluate_mcml_dt,
    evaluate_ml_rcb,
    table1,
)
from repro.partition.config import PartitionOptions

K = 4


@pytest.fixture(scope="module")
def results(small_sequence):
    mc = evaluate_mcml_dt(
        small_sequence, K, MCMLDTParams(options=PartitionOptions(seed=0))
    )
    ml = evaluate_ml_rcb(
        small_sequence, K, MLRCBParams(options=PartitionOptions(seed=0))
    )
    return mc, ml


class TestEvaluateMcmlDt:
    def test_one_step_per_snapshot(self, results, small_sequence):
        mc, _ = results
        assert len(mc.steps) == len(small_sequence)
        assert [s.step for s in mc.steps] == list(range(len(small_sequence)))

    def test_metrics_populated(self, results):
        mc, _ = results
        assert mc.mean("fe_comm") > 0
        assert mc.mean("nt_nodes") >= 1
        assert mc.mean("n_remote") >= 0
        # MCML+DT has no mesh-to-mesh or RCB update costs
        assert mc.mean("m2m_comm") == 0
        assert mc.mean("upd_comm") == 0

    def test_balanced_throughout(self, results):
        mc, _ = results
        for s in mc.steps:
            assert s.imbalance_fe <= 1.30
            assert s.imbalance_search <= 1.40


class TestEvaluateMlRcb:
    def test_metrics_populated(self, results):
        _, ml = results
        assert ml.mean("fe_comm") > 0
        assert ml.mean("m2m_comm") > 0
        assert ml.mean("nt_nodes") == 0  # no decision tree in ML+RCB
        assert ml.steps[0].upd_comm == 0  # first step has no update

    def test_fe_comm_lower_than_mcml(self, results):
        """The paper's trade-off: single-constraint partitioning gives
        ML+RCB the lower raw FEComm..."""
        mc, ml = results
        assert ml.mean("fe_comm") <= mc.mean("fe_comm")

    def test_but_total_fe_side_cost_higher(self, results):
        """...while 2×M2MComm pushes its total FE-side communication
        above MCML+DT's (the paper's headline claim)."""
        mc, ml = results
        assert ml.total_fe_side_comm() > mc.total_fe_side_comm() * 0.8
        # strict inequality is scene-dependent at tiny scale; the
        # benchmark asserts it at evaluation scale


class TestTable1:
    def test_renders_all_rows(self, small_sequence):
        t = table1(
            small_sequence, ks=(2, 4),
            mcml_params=MCMLDTParams(options=PartitionOptions(seed=0)),
            ml_params=MLRCBParams(options=PartitionOptions(seed=0)),
        )
        out = t.render()
        for row in (
            "2-way MCML+DT", "2-way ML+RCB",
            "4-way MCML+DT", "4-way ML+RCB",
        ):
            assert row in out


class TestSequenceResult:
    def test_mean(self):
        r = SequenceResult(algorithm="x", k=2)
        r.steps = [
            StepMetrics(step=0, fe_comm=10, m2m_comm=2),
            StepMetrics(step=1, fe_comm=30, m2m_comm=4),
        ]
        assert r.mean("fe_comm") == 20.0
        assert r.total_fe_side_comm() == 20.0 + 2 * 3.0

    def test_csv_roundtrip(self, tmp_path):
        r = SequenceResult(algorithm="x", k=2)
        r.steps = [
            StepMetrics(step=0, fe_comm=10, nt_nodes=5),
            StepMetrics(step=1, fe_comm=30, nt_nodes=7),
        ]
        text = r.to_csv()
        lines = text.strip().splitlines()
        assert lines[0].startswith("step,fe_comm")
        assert len(lines) == 3
        assert lines[1].split(",")[1] == "10"
        path = tmp_path / "metrics.csv"
        r.save_csv(path)
        assert path.read_text() == text
