"""Tests for the a-priori (§3 first-class) contact partitioner."""

import numpy as np
import pytest

from repro.core.apriori import (
    AprioriParams,
    AprioriPartitioner,
    build_apriori_graph,
    predict_contact_pairs,
)
from repro.core.mcml_dt import MCMLDTParams, MCMLDTPartitioner
from repro.core.weights import build_contact_graph
from repro.graph.metrics import load_imbalance
from repro.partition.config import PartitionOptions


@pytest.fixture(scope="module")
def touching_snapshot(mid_sequence):
    """A snapshot where the projectile has reached the upper plate, so
    cross-body proximity pairs exist."""
    for snap in mid_sequence:
        if snap.tip_z < 0.15:
            return snap
    pytest.skip("sequence never reaches the plate")


class TestPredictContactPairs:
    def test_pairs_cross_bodies(self, touching_snapshot):
        snap = touching_snapshot
        pairs = predict_contact_pairs(snap, radius=0.6)
        assert len(pairs) > 0
        body = snap.mesh.node_body_id()
        assert (body[pairs[:, 0]] != body[pairs[:, 1]]).all()

    def test_pairs_are_contact_nodes(self, touching_snapshot):
        snap = touching_snapshot
        pairs = predict_contact_pairs(snap, radius=0.6)
        contact = set(snap.contact_nodes.tolist())
        assert set(pairs.ravel().tolist()) <= contact

    def test_radius_monotone(self, touching_snapshot):
        snap = touching_snapshot
        small = predict_contact_pairs(snap, radius=0.3)
        large = predict_contact_pairs(snap, radius=0.8)
        assert len(large) >= len(small)

    def test_invalid_radius(self, touching_snapshot):
        with pytest.raises(ValueError, match="radius"):
            predict_contact_pairs(touching_snapshot, radius=0.0)


class TestBuildAprioriGraph:
    def test_adds_virtual_edges(self, touching_snapshot):
        snap = touching_snapshot
        pairs = predict_contact_pairs(snap, radius=0.6)
        base = build_contact_graph(snap)
        aug = build_apriori_graph(snap, pairs)
        aug.validate()
        assert aug.num_edges > base.num_edges

    def test_virtual_weight_applied(self, touching_snapshot):
        snap = touching_snapshot
        pairs = predict_contact_pairs(snap, radius=0.6)
        aug = build_apriori_graph(snap, pairs, virtual_edge_weight=10)
        u, v = int(pairs[0, 0]), int(pairs[0, 1])
        nbrs = aug.neighbors(u)
        wts = aug.edge_weights_of(u)
        assert wts[list(nbrs).index(v)] == 10

    def test_empty_pairs_is_base_graph(self, touching_snapshot):
        snap = touching_snapshot
        aug = build_apriori_graph(snap, np.empty((0, 2), dtype=np.int64))
        base = build_contact_graph(snap)
        assert aug.num_edges == base.num_edges


class TestAprioriPartitioner:
    def test_colocates_predicted_pairs(self, touching_snapshot):
        snap = touching_snapshot
        k = 6
        ap = AprioriPartitioner(
            k, AprioriParams(options=PartitionOptions(seed=0))
        )
        ap.fit(snap)
        mc = MCMLDTPartitioner(
            k, MCMLDTParams(options=PartitionOptions(seed=0))
        )
        mc.fit(snap)
        pairs = ap.predicted_pairs
        mc_coloc = float(
            (mc.part[pairs[:, 0]] == mc.part[pairs[:, 1]]).mean()
        )
        # the whole point of virtual edges: contacting pairs live
        # together far more often than under the prediction-free scheme
        assert ap.colocation_fraction() >= mc_coloc
        assert ap.colocation_fraction() >= 0.6

    def test_balance_maintained(self, touching_snapshot):
        snap = touching_snapshot
        k = 6
        ap = AprioriPartitioner(
            k, AprioriParams(options=PartitionOptions(seed=0))
        )
        ap.fit(snap)
        g = build_contact_graph(snap)
        assert load_imbalance(g, ap.part, k).max() <= 1.20

    def test_search_plan_runs(self, touching_snapshot):
        snap = touching_snapshot
        ap = AprioriPartitioner(
            4, AprioriParams(options=PartitionOptions(seed=0))
        )
        ap.fit(snap)
        plan = ap.search_plan(snap)
        assert plan.n_remote >= 0

    def test_unfitted_raises(self, touching_snapshot):
        ap = AprioriPartitioner(4)
        with pytest.raises(RuntimeError, match="fit"):
            ap.colocation_fraction()

    def test_k_validation(self):
        with pytest.raises(ValueError, match="k must be"):
            AprioriPartitioner(0)
