"""Tests for the two-constraint contact graph model."""

import numpy as np
import pytest

from repro.core.weights import build_contact_graph


class TestBuildContactGraph:
    def test_shapes(self, small_sequence):
        snap = small_sequence[0]
        g = build_contact_graph(snap)
        g.validate()
        assert g.num_vertices == snap.mesh.num_nodes
        assert g.ncon == 2

    def test_w1_marks_used_nodes(self, small_sequence):
        snap = small_sequence[-1]  # erosion has orphaned some nodes
        g = build_contact_graph(snap)
        used = np.zeros(snap.mesh.num_nodes, dtype=bool)
        used[snap.mesh.used_nodes()] = True
        assert (g.vwgts[used, 0] == 1).all()
        assert (g.vwgts[~used, 0] == 0).all()

    def test_w2_marks_contact_nodes(self, small_sequence):
        snap = small_sequence[0]
        g = build_contact_graph(snap)
        is_contact = np.zeros(snap.mesh.num_nodes, dtype=bool)
        is_contact[snap.contact_nodes] = True
        assert (g.vwgts[is_contact, 1] == 1).all()
        assert (g.vwgts[~is_contact, 1] == 0).all()

    def test_contact_edges_weighted(self, small_sequence):
        snap = small_sequence[0]
        g = build_contact_graph(snap, contact_edge_weight=5)
        is_contact = np.zeros(snap.mesh.num_nodes, dtype=bool)
        is_contact[snap.contact_nodes] = True
        src = np.repeat(np.arange(g.num_vertices), g.degrees())
        both = is_contact[src] & is_contact[g.adjncy]
        assert (g.adjwgt[both] == 5).all()
        assert (g.adjwgt[~both] == 1).all()

    def test_weight_one_uniform(self, small_sequence):
        g = build_contact_graph(small_sequence[0], contact_edge_weight=1)
        assert (g.adjwgt == 1).all()

    def test_invalid_edge_weight(self, small_sequence):
        with pytest.raises(ValueError, match="contact_edge_weight"):
            build_contact_graph(small_sequence[0], contact_edge_weight=0)

    def test_custom_work_vectors(self, small_sequence):
        snap = small_sequence[0]
        n = snap.mesh.num_nodes
        fe = np.full(n, 3, dtype=np.int64)
        sw = np.full(n, 7, dtype=np.int64)
        g = build_contact_graph(snap, fe_work=fe, search_work=sw)
        used = snap.mesh.used_nodes()
        assert (g.vwgts[used, 0] == 3).all()
        assert (g.vwgts[snap.contact_nodes, 1] == 7).all()

    def test_custom_work_length_checked(self, small_sequence):
        with pytest.raises(ValueError, match="one entry per node"):
            build_contact_graph(
                small_sequence[0], fe_work=np.ones(3, dtype=np.int64)
            )
