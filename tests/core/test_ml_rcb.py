"""Tests for the ML+RCB baseline."""

import numpy as np
import pytest

from repro.core.ml_rcb import MLRCBParams, MLRCBPartitioner
from repro.graph.metrics import load_imbalance
from repro.mesh.nodal_graph import nodal_graph
from repro.partition.config import PartitionOptions

K = 6


@pytest.fixture(scope="module")
def fitted(mid_sequence):
    pt = MLRCBPartitioner(K, MLRCBParams(options=PartitionOptions(seed=0)))
    pt.fit(mid_sequence[0])
    return pt


class TestFit:
    def test_fe_partition_balanced(self, fitted, mid_sequence):
        snap = mid_sequence[0]
        mesh = snap.mesh
        vwgts = np.zeros((mesh.num_nodes, 1), dtype=np.int64)
        vwgts[mesh.used_nodes(), 0] = 1
        g = nodal_graph(mesh, vwgts=vwgts)
        assert load_imbalance(g, fitted.part_fe, K).max() <= 1.10

    def test_rcb_balanced_on_contact_points(self, fitted):
        counts = np.bincount(fitted.rcb_labels, minlength=K)
        n = len(fitted.rcb_labels)
        assert counts.max() <= 1.3 * n / K

    def test_unfitted_raises(self, mid_sequence):
        pt = MLRCBPartitioner(4)
        with pytest.raises(RuntimeError, match="fit"):
            pt.search_plan(mid_sequence[0])
        with pytest.raises(RuntimeError, match="fit"):
            pt.m2m_comm_now()

    def test_k_validation(self):
        with pytest.raises(ValueError, match="k must be"):
            MLRCBPartitioner(0)


class TestUpdate:
    def test_update_tracks_contact_set(self, mid_sequence):
        pt = MLRCBPartitioner(
            K, MLRCBParams(options=PartitionOptions(seed=0))
        )
        pt.fit(mid_sequence[0])
        for snap in mid_sequence.snapshots[1:6]:
            labels = pt.update(snap)
            assert len(labels) == len(snap.contact_nodes)
            assert np.array_equal(pt.contact_ids, snap.contact_nodes)
            assert pt.last_upd_comm >= 0

    def test_rcb_balance_maintained_through_updates(self, mid_sequence):
        pt = MLRCBPartitioner(
            K, MLRCBParams(options=PartitionOptions(seed=0))
        )
        pt.fit(mid_sequence[0])
        for snap in mid_sequence.snapshots[1:]:
            pt.update(snap)
        counts = np.bincount(pt.rcb_labels, minlength=K)
        n = len(pt.rcb_labels)
        assert counts.max() <= 1.4 * n / K

    def test_static_snapshot_zero_updcomm(self, mid_sequence):
        pt = MLRCBPartitioner(
            K, MLRCBParams(options=PartitionOptions(seed=0))
        )
        pt.fit(mid_sequence[0])
        pt.update(mid_sequence[0])  # same snapshot again
        assert pt.last_upd_comm == 0


class TestM2MComm:
    def test_positive_for_decoupled_decompositions(self, fitted):
        """Graph and RCB decompositions generally disagree on many
        contact points — the cost MCML+DT eliminates."""
        m2m = fitted.m2m_comm_now()
        n = len(fitted.rcb_labels)
        assert 0 < m2m <= n

    def test_bounded_by_contact_count(self, fitted):
        assert fitted.m2m_comm_now() <= len(fitted.contact_ids)


class TestSearchPlan:
    def test_no_self_sends(self, fitted, mid_sequence):
        snap = mid_sequence[0]
        plan = fitted.search_plan(snap)
        owners = plan.owner
        assert not plan.send_matrix[np.arange(len(owners)), owners].any()

    def test_owner_is_rcb_partition(self, fitted, mid_sequence):
        snap = mid_sequence[0]
        plan = fitted.search_plan(snap)
        assert plan.owner.min() >= 0
        assert plan.owner.max() < K
