"""Step-level recovery in the ContactStepDriver (the acceptance test).

The contract under test: a chaos run that kills a rank — once per
phase, or enough to defeat the runtime's own recovery — completes with
partition labels, ledger, history, and final checkpoint bit-identical
to an uninjected serial run, with the retries visible in the trace.
"""

import io

import numpy as np
import pytest

from repro.core import ContactStepDriver, RecoveryPolicy
from repro.core.checkpoint import (
    dump_driver_bytes,
    load_driver,
    restore_driver_state,
    _read_checkpoint,
)
from repro.obs.report import RunReport
from repro.obs.tracer import Tracer
from repro.runtime.backends import BackendError, SupervisorConfig
from repro.runtime.backends.process import ProcessBackend
from repro.runtime.faults import ChaosBackend

K = 4
N_STEPS = 4


@pytest.fixture(scope="module")
def snaps(small_sequence):
    return list(small_sequence)[:N_STEPS]


@pytest.fixture(scope="module")
def reference(snaps):
    """The uninjected serial run every faulted run must match."""
    driver = ContactStepDriver(K, backend="serial")
    driver.run(snaps)
    return driver


def _assert_equivalent(driver, reference):
    assert np.array_equal(driver.partitioner.part,
                          reference.partitioner.part)
    assert driver.ledger.phases == reference.ledger.phases
    assert driver.ledger.sent_by_rank == reference.ledger.sent_by_rank
    assert [r.candidates for r in driver.history] == [
        r.candidates for r in reference.history
    ]
    # final checkpoints agree except for backend provenance
    meta_a, part_a = _read_checkpoint(io.BytesIO(dump_driver_bytes(driver)))
    meta_b, part_b = _read_checkpoint(
        io.BytesIO(dump_driver_bytes(reference))
    )
    meta_a["backend"] = meta_b["backend"] = None
    assert np.array_equal(part_a, part_b)
    assert meta_a == meta_b


def _counter_totals(tracer):
    totals = {}
    for _path, span in tracer.finish().walk():
        for name, value in span.counters.items():
            totals[name] = totals.get(name, 0) + value
    return totals


class TestChaosAcceptance:
    def test_kill_once_per_phase_is_bit_identical(self, snaps, reference):
        """One injected kill in each early superstep window; the chaos
        harness rolls back and retries, and the full driver run matches
        the clean serial run bit for bit."""
        tracer = Tracer()
        chaos = ChaosBackend(
            plan="kill@0.1,kill@1.0,kill@2.1,kill@3.0",
            inner="serial",
        )
        driver = ContactStepDriver(K, backend=chaos, tracer=tracer)
        try:
            driver.run(snaps)
        finally:
            chaos.close()
        _assert_equivalent(driver, reference)
        counters = _counter_totals(tracer)
        assert counters.get("faults_injected", 0) == 4
        assert counters.get("step_retries", 0) == 4

    def test_recovery_visible_in_run_report(self, snaps, reference):
        tracer = Tracer()
        chaos = ChaosBackend(plan="kill@1.0", inner="serial")
        driver = ContactStepDriver(K, backend=chaos, tracer=tracer)
        try:
            driver.run(snaps)
        finally:
            chaos.close()
        report = RunReport.from_run(tracer, driver.ledger)
        totals = report.recovery_totals()
        assert totals.get("faults_injected") == 1
        assert totals.get("step_retries") == 1
        assert report.recovery_seconds() >= 0.0
        assert "Fault recovery" in report.render()
        # and the counters survive the JSON round-trip
        reloaded = RunReport.from_dict(report.to_dict())
        assert reloaded.recovery_totals() == totals


class TestDriverCheckpointRecovery:
    def test_backend_loss_restores_and_reruns(self, snaps, reference):
        """An unsupervised pool (no retries, no degradation) loses its
        workers to an injected kill; the BackendError reaches the
        driver, which restores its recovery point and re-executes —
        ending bit-identical to serial."""
        tracer = Tracer()
        inner = ProcessBackend(
            workers=2,
            supervisor=SupervisorConfig(max_retries=0, degrade=False),
        )
        chaos = ChaosBackend(plan="kill@1.0", inner=inner)
        driver = ContactStepDriver(K, backend=chaos, tracer=tracer)
        try:
            driver.run(snaps)
        finally:
            chaos.close()
        _assert_equivalent(driver, reference)
        counters = _counter_totals(tracer)
        assert counters.get("step_recoveries", 0) >= 1
        assert counters.get("worker_deaths", 0) >= 1

    def test_recovery_disabled_propagates(self, snaps):
        inner = ProcessBackend(
            workers=2,
            supervisor=SupervisorConfig(max_retries=0, degrade=False),
        )
        chaos = ChaosBackend(plan="kill@1.0", inner=inner)
        driver = ContactStepDriver(
            K, backend=chaos, recovery=RecoveryPolicy(max_step_retries=0)
        )
        try:
            with pytest.raises(BackendError):
                driver.run(snaps)
        finally:
            chaos.close()

    def test_on_disk_recovery_point(self, snaps, tmp_path, reference):
        """With a checkpoint path the last good state is also left on
        disk, loadable for a whole-process restart."""
        path = tmp_path / "recovery.npz"
        chaos = ChaosBackend(plan="kill@2.0", inner="serial")
        driver = ContactStepDriver(
            K, backend=chaos,
            recovery=RecoveryPolicy(checkpoint_path=path),
        )
        try:
            driver.run(snaps)
        finally:
            chaos.close()
        _assert_equivalent(driver, reference)
        restarted = load_driver(path, backend="serial")
        assert np.array_equal(restarted.partitioner.part,
                              driver.partitioner.part)
        assert restarted.ledger.phases == driver.ledger.phases

    def test_restore_rejects_k_mismatch(self, snaps):
        driver = ContactStepDriver(K, backend="serial")
        driver.initialize(snaps[0])
        blob = dump_driver_bytes(driver)
        other = ContactStepDriver(K + 1, backend="serial")
        with pytest.raises(ValueError, match="k="):
            restore_driver_state(other, io.BytesIO(blob))

    def test_policy_validation(self):
        with pytest.raises(ValueError, match="max_step_retries"):
            RecoveryPolicy(max_step_retries=-1)
