"""Tests for the time-stepping driver."""

import numpy as np
import pytest

from repro.core.driver import ContactStepDriver, StepResult
from repro.core.mcml_dt import MCMLDTParams
from repro.core.update import UpdateStrategy
from repro.partition.config import PartitionOptions

K = 4


def params(pad=0.2):
    return MCMLDTParams(pad=pad, options=PartitionOptions(seed=0))


class TestDriverBasics:
    def test_run_produces_one_result_per_snapshot(self, small_sequence):
        driver = ContactStepDriver(K, params())
        results = driver.run(small_sequence)
        assert len(results) == len(small_sequence)
        assert [r.step for r in results] == list(range(len(small_sequence)))

    def test_step_without_initialize_raises(self, small_sequence):
        driver = ContactStepDriver(K, params())
        with pytest.raises(RuntimeError, match="initialize"):
            driver.step(small_sequence[0])

    def test_metrics_populated(self, small_sequence):
        driver = ContactStepDriver(K, params())
        results = driver.run(small_sequence)
        for r in results:
            assert r.nt_nodes >= 1
            assert r.n_remote >= 0
            assert r.fe_comm > 0
            assert len(r.imbalance) == 2

    def test_local_search_attached(self, small_sequence):
        driver = ContactStepDriver(K, params())
        results = driver.run(small_sequence)
        # once penetration starts, candidates resolve to finite gaps
        touched = [r for r in results if r.n_candidates > 0]
        assert touched, "the scene must produce contacts"
        for r in touched:
            assert r.resolution is not None
            assert np.isfinite(r.resolution.gap).all()

    def test_resolve_local_off(self, small_sequence):
        driver = ContactStepDriver(K, params(), resolve_local=False)
        result = driver.initialize(small_sequence[0]).step(small_sequence[0])
        assert result.resolution is None

    def test_ledger_accumulates(self, small_sequence):
        driver = ContactStepDriver(K, params())
        driver.run(small_sequence)
        total = driver.total_exchanged()
        assert total == sum(r.n_remote for r in driver.history)

    def test_empty_run_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            ContactStepDriver(K, params()).run([])

    def test_validation(self):
        with pytest.raises(ValueError, match="k must be"):
            ContactStepDriver(0)
        with pytest.raises(ValueError, match="repartition_period"):
            ContactStepDriver(2, repartition_period=0)


class TestDriverStrategies:
    def test_descriptor_only_never_repartitions(self, small_sequence):
        driver = ContactStepDriver(
            K, params(), strategy=UpdateStrategy.DESCRIPTOR_ONLY
        )
        results = driver.run(small_sequence)
        assert not any(r.repartitioned for r in results)
        assert driver.total_redistributed() == 0

    def test_hybrid_repartitions_on_period(self, small_sequence):
        driver = ContactStepDriver(
            K, params(), strategy=UpdateStrategy.HYBRID,
            repartition_period=4,
        )
        results = driver.run(small_sequence)
        flags = [r.repartitioned for r in results]
        assert not flags[0]  # first step never repartitions
        assert any(flags)
        # repartitions happen at most every `period` steps
        last = -10
        for i, f in enumerate(flags):
            if f:
                assert i - last >= 4
                last = i

    def test_repartition_every_step(self, small_sequence):
        driver = ContactStepDriver(
            K, params(), strategy=UpdateStrategy.REPARTITION
        )
        results = driver.run(small_sequence)
        assert all(r.repartitioned for r in results[1:])
