"""Property tests for global-search filter completeness on synthetic
geometry (independent of the mesh workload)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dtree.induction import induce_pure_tree
from repro.dtree.query import assign_points, tree_filter_search
from repro.geometry.boxsearch import bbox_filter_search


@given(st.integers(0, 10**6), st.integers(2, 5))
@settings(max_examples=40, deadline=None)
def test_property_tree_filter_never_misses(seed, k):
    """For random points/partitions/boxes: whenever a contact point of
    partition q lies inside a (padded) element box, the tree filter
    routes that element to q (or q owns it). This is the correctness
    the paper's descriptors must provide."""
    rng = np.random.default_rng(seed)
    n = int(rng.integers(k, 60))
    pts = rng.random((n, 2))
    labels = rng.integers(0, k, n)
    tree, _ = induce_pure_tree(pts, labels, k)

    m = int(rng.integers(1, 12))
    lo = rng.random((m, 2)) - 0.1
    boxes = np.stack((lo, lo + rng.random((m, 2)) * 0.5), axis=1)
    owner = rng.integers(0, k, m)
    plan = tree_filter_search(tree, boxes, owner, k)

    for e in range(m):
        inside = (
            (pts >= boxes[e, 0]) & (pts <= boxes[e, 1])
        ).all(axis=1)
        needed = set(labels[inside].tolist()) - {int(owner[e])}
        got = set(plan.sends_for(e).tolist())
        assert needed <= got


@given(st.integers(0, 10**6), st.integers(2, 5))
@settings(max_examples=40, deadline=None)
def test_property_bbox_filter_never_misses(seed, k):
    """Same completeness property for the ML+RCB bounding-box filter."""
    rng = np.random.default_rng(seed)
    n = int(rng.integers(k, 60))
    pts = rng.random((n, 2))
    labels = rng.integers(0, k, n)

    m = int(rng.integers(1, 12))
    lo = rng.random((m, 2)) - 0.1
    boxes = np.stack((lo, lo + rng.random((m, 2)) * 0.5), axis=1)
    owner = rng.integers(0, k, m)
    plan = bbox_filter_search(boxes, owner, pts, labels, k)

    for e in range(m):
        inside = (
            (pts >= boxes[e, 0]) & (pts <= boxes[e, 1])
        ).all(axis=1)
        needed = set(labels[inside].tolist()) - {int(owner[e])}
        got = set(plan.sends_for(e).tolist())
        assert needed <= got


def test_tree_beats_bbox_where_subdomain_boxes_overlap():
    """The regime the paper targets: a non-convex (L-shaped) subdomain
    whose bounding box covers another subdomain's territory. The bbox
    filter then ships every element in the covered area (false
    positives); the tree's disjoint regions ship almost none.

    The relation is regime-dependent — on *disjoint* compact clusters
    the bbox filter can beat the tree near region boundaries (a leaf
    region tiles space beyond its points) — so the aggregate advantage
    is asserted here in the overlap regime and measured at evaluation
    scale in ``benchmarks/bench_search.py``.
    """
    rng = np.random.default_rng(0)
    # partition 0: an L along the left and bottom; partition 1: a dense
    # block tucked into the L's notch -> bbox(0) fully covers block 1
    left = np.column_stack(
        (rng.random(30) * 0.25, rng.random(30) * 2.0)
    )
    bottom = np.column_stack(
        (0.25 + rng.random(30) * 1.75, rng.random(30) * 0.25)
    )
    notch = np.column_stack(
        (0.9 + rng.random(40) * 0.9, 0.9 + rng.random(40) * 0.9)
    )
    pts = np.concatenate([left, bottom, notch])
    labels = np.array([0] * 60 + [1] * 40)
    tree, _ = induce_pure_tree(pts, labels, 2)

    # elements: small boxes on each of partition 1's points
    boxes = np.stack((notch - 0.05, notch + 0.05), axis=1)
    owner = np.ones(len(notch), dtype=np.int64)

    tree_plan = tree_filter_search(tree, boxes, owner, 2)
    bbox_plan = bbox_filter_search(boxes, owner, pts, labels, 2)
    # bbox: every element sits inside bbox(partition 0) -> all shipped
    assert bbox_plan.n_remote == len(notch)
    # tree: only elements straddling the actual region boundary ship
    assert tree_plan.n_remote < bbox_plan.n_remote / 2
