"""Direct tests for the KD-tree candidate enumeration behind the
contact search (now the vectorised kernel in repro.geometry.boxsearch)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry.boxsearch import box_candidate_pairs, candidate_pairs


def _pair_set(arrays):
    b_idx, node_ids = arrays
    return set(zip(b_idx.tolist(), node_ids.tolist()))


class TestCandidatePairs:
    def test_exact_containment(self):
        pts = np.array([[0.5, 0.5], [2.0, 2.0], [0.9, 0.1]])
        ids = np.array([7, 8, 9])
        boxes = np.array([[[0.0, 0.0], [1.0, 1.0]]])
        out = _pair_set(candidate_pairs(boxes, pts, ids))
        assert out == {(0, 7), (0, 9)}

    def test_boundary_points_included(self):
        pts = np.array([[1.0, 1.0]])
        boxes = np.array([[[0.0, 0.0], [1.0, 1.0]]])
        out = _pair_set(candidate_pairs(boxes, pts, np.array([3])))
        assert out == {(0, 3)}

    def test_empty_inputs(self):
        for boxes, pts in (
            (np.empty((0, 2, 2)), np.empty((0, 2))),
            (np.zeros((1, 2, 2)), np.empty((0, 2))),
        ):
            b_idx, node_ids = candidate_pairs(
                boxes, pts, np.empty(0, int)
            )
            assert len(b_idx) == 0 and len(node_ids) == 0
            assert b_idx.dtype == np.int64
            assert node_ids.dtype == np.int64

    def test_returns_parallel_int64_arrays(self):
        pts = np.array([[0.5, 0.5], [0.6, 0.6]])
        boxes = np.array([[[0.0, 0.0], [1.0, 1.0]]])
        b_idx, node_ids = candidate_pairs(
            boxes, pts, np.array([4, 5])
        )
        assert b_idx.shape == node_ids.shape
        assert b_idx.dtype == np.int64
        assert node_ids.dtype == np.int64

    @given(st.integers(0, 10**6))
    @settings(max_examples=40, deadline=None)
    def test_property_matches_dense_containment(self, seed):
        """The KD-tree path finds exactly the pairs dense containment
        testing finds."""
        rng = np.random.default_rng(seed)
        n = int(rng.integers(1, 40))
        m = int(rng.integers(1, 10))
        pts = rng.random((n, 3))
        ids = rng.permutation(1000)[:n]
        lo = rng.random((m, 3)) - 0.2
        boxes = np.stack((lo, lo + rng.random((m, 3))), axis=1)
        got = _pair_set(candidate_pairs(boxes, pts, ids))
        expect = set()
        for b in range(m):
            inside = (
                (pts >= boxes[b, 0]) & (pts <= boxes[b, 1])
            ).all(axis=1)
            for pid in ids[inside]:
                expect.add((b, int(pid)))
        assert got == expect


class TestBoxCandidatePairsKernel:
    def test_filters_flattened_candidates(self):
        boxes = np.array(
            [[[0.0, 0.0], [1.0, 1.0]], [[2.0, 2.0], [3.0, 3.0]]]
        )
        pts = np.array([[0.5, 0.5], [2.5, 2.5], [5.0, 5.0]])
        box_index = np.array([0, 0, 1, 1, 1], dtype=np.int64)
        point_index = np.array([0, 2, 0, 1, 2], dtype=np.int64)
        b, p = box_candidate_pairs(boxes, pts, box_index, point_index)
        assert set(zip(b.tolist(), p.tolist())) == {(0, 0), (1, 1)}

    def test_kernel_is_registered(self):
        from repro.kernels import is_kernel

        assert is_kernel(box_candidate_pairs)
