"""Direct tests for the KD-tree candidate enumeration inside the
serial contact search."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.contact_search import _candidates_kdtree


class TestCandidatesKdtree:
    def test_exact_containment(self):
        pts = np.array([[0.5, 0.5], [2.0, 2.0], [0.9, 0.1]])
        ids = np.array([7, 8, 9])
        boxes = np.array([[[0.0, 0.0], [1.0, 1.0]]])
        out = _candidates_kdtree(boxes, pts, ids)
        assert sorted(out) == [(0, 7), (0, 9)]

    def test_boundary_points_included(self):
        pts = np.array([[1.0, 1.0]])
        boxes = np.array([[[0.0, 0.0], [1.0, 1.0]]])
        out = _candidates_kdtree(boxes, pts, np.array([3]))
        assert out == [(0, 3)]

    def test_empty_inputs(self):
        assert _candidates_kdtree(
            np.empty((0, 2, 2)), np.empty((0, 2)), np.empty(0, int)
        ) == []
        assert _candidates_kdtree(
            np.zeros((1, 2, 2)), np.empty((0, 2)), np.empty(0, int)
        ) == []

    @given(st.integers(0, 10**6))
    @settings(max_examples=40, deadline=None)
    def test_property_matches_dense_containment(self, seed):
        """The KD-tree path finds exactly the pairs dense containment
        testing finds."""
        rng = np.random.default_rng(seed)
        n = int(rng.integers(1, 40))
        m = int(rng.integers(1, 10))
        pts = rng.random((n, 3))
        ids = rng.permutation(1000)[:n]
        lo = rng.random((m, 3)) - 0.2
        boxes = np.stack((lo, lo + rng.random((m, 3))), axis=1)
        got = set(_candidates_kdtree(boxes, pts, ids))
        expect = set()
        for b in range(m):
            inside = (
                (pts >= boxes[b, 0]) & (pts <= boxes[b, 1])
            ).all(axis=1)
            for pid in ids[inside]:
                expect.add((b, int(pid)))
        assert got == expect
