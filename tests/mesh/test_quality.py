"""Tests for element measures."""

import numpy as np
import pytest

from repro.mesh.generators import structured_box_mesh, structured_quad_mesh
from repro.mesh.mesh import Mesh
from repro.mesh.quality import element_measures, mesh_stats


class TestMeasures:
    def test_tri_area(self):
        nodes = np.array([[0.0, 0.0], [1.0, 0.0], [0.0, 1.0]])
        m = Mesh(nodes, np.array([[0, 1, 2]]), "tri")
        assert element_measures(m)[0] == pytest.approx(0.5)

    def test_tet_volume(self):
        nodes = np.array(
            [[0.0, 0, 0], [1.0, 0, 0], [0.0, 1, 0], [0.0, 0, 1]]
        )
        m = Mesh(nodes, np.array([[0, 1, 2, 3]]), "tet")
        assert element_measures(m)[0] == pytest.approx(1 / 6)

    def test_unit_hex(self):
        m = structured_box_mesh(1, 1, 1)
        assert element_measures(m)[0] == pytest.approx(1.0)

    def test_sheared_quad(self):
        nodes = np.array([[0.0, 0], [2.0, 0], [3.0, 1], [1.0, 1]])
        m = Mesh(nodes, np.array([[0, 1, 2, 3]]), "quad")
        assert element_measures(m)[0] == pytest.approx(2.0)

    def test_orientation_invariant(self):
        nodes = np.array([[0.0, 0.0], [1.0, 0.0], [0.0, 1.0]])
        cw = Mesh(nodes, np.array([[0, 2, 1]]), "tri")  # reversed
        assert element_measures(cw)[0] == pytest.approx(0.5)


class TestMeshStats:
    def test_keys_and_values(self):
        m = structured_quad_mesh(2, 2, size=(2, 2))
        stats = mesh_stats(m)
        assert stats["num_elements"] == 4
        assert stats["total_measure"] == pytest.approx(4.0)
        assert stats["num_bodies"] == 1
        assert stats["min_measure"] == pytest.approx(1.0)
        assert stats["max_measure"] == pytest.approx(1.0)

    def test_empty_mesh(self):
        m = structured_quad_mesh(1, 1).with_elements(
            np.array([], dtype=np.int64)
        )
        stats = mesh_stats(m)
        assert stats["num_elements"] == 0
        assert stats["min_measure"] == 0.0
