"""Tests for element reference tables."""

import numpy as np
import pytest

from repro.mesh.element import (
    ELEMENT_DIM,
    ELEMENT_EDGES,
    ELEMENT_FACES,
    ELEMENT_NODES,
    check_element_type,
)


class TestTables:
    def test_counts(self):
        assert ELEMENT_FACES["tri"].shape == (3, 2)
        assert ELEMENT_FACES["quad"].shape == (4, 2)
        assert ELEMENT_FACES["tet"].shape == (4, 3)
        assert ELEMENT_FACES["hex"].shape == (6, 4)
        assert ELEMENT_EDGES["tet"].shape == (6, 2)
        assert ELEMENT_EDGES["hex"].shape == (12, 2)

    def test_local_indices_in_range(self):
        for etype, faces in ELEMENT_FACES.items():
            assert faces.min() >= 0
            assert faces.max() < ELEMENT_NODES[etype]
        for etype, edges in ELEMENT_EDGES.items():
            assert edges.min() >= 0
            assert edges.max() < ELEMENT_NODES[etype]

    def test_hex_faces_cover_all_corners(self):
        assert set(ELEMENT_FACES["hex"].ravel()) == set(range(8))

    def test_hex_each_corner_on_three_faces(self):
        counts = np.bincount(ELEMENT_FACES["hex"].ravel())
        assert (counts == 3).all()

    def test_hex_edges_each_corner_degree_three(self):
        counts = np.bincount(ELEMENT_EDGES["hex"].ravel())
        assert (counts == 3).all()

    def test_tet_edges_complete_graph(self):
        edges = {tuple(sorted(e)) for e in ELEMENT_EDGES["tet"].tolist()}
        assert len(edges) == 6  # K4

    def test_dims(self):
        assert ELEMENT_DIM["quad"] == 2
        assert ELEMENT_DIM["hex"] == 3


class TestCheckElementType:
    def test_accepts_known(self):
        assert check_element_type("hex") == "hex"

    def test_rejects_unknown(self):
        with pytest.raises(ValueError, match="unknown element type"):
            check_element_type("pyramid")
