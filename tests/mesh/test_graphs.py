"""Tests for nodal and dual graph construction."""

import numpy as np
import pytest

from repro.mesh.dual_graph import dual_graph
from repro.mesh.generators import structured_box_mesh, structured_quad_mesh
from repro.mesh.nodal_graph import nodal_graph


class TestNodalGraph:
    def test_quad_grid_graph(self):
        m = structured_quad_mesh(3, 2)
        g = nodal_graph(m)
        g.validate()
        assert g.num_vertices == 4 * 3
        # grid edges: 3 per row * 3 rows + 2 per column * 4 columns
        assert g.num_edges == 3 * 3 + 2 * 4

    def test_hex_mesh_degrees(self):
        m = structured_box_mesh(2, 2, 2)
        g = nodal_graph(m)
        g.validate()
        degs = g.degrees()
        # corner nodes have 3 neighbours, the centre node has 6
        assert degs.min() == 3
        assert degs.max() == 6

    def test_custom_vwgts_passthrough(self):
        m = structured_quad_mesh(2, 2)
        vw = np.arange(9).reshape(9, 1)
        g = nodal_graph(m, vwgts=vw)
        assert g.vwgts[:, 0].tolist() == list(range(9))

    def test_orphan_nodes_isolated(self):
        m = structured_quad_mesh(2, 1)
        sub = m.with_elements(np.array([0]))
        g = nodal_graph(sub)
        assert g.num_vertices == m.num_nodes
        # nodes of the dropped element that aren't shared are isolated
        assert (g.degrees() == 0).sum() == 2

    def test_duplicate_mesh_edges_collapse(self):
        """The edge between two elements' shared corner pair appears in
        both elements; the nodal graph must keep weight 1 (combine=max)."""
        m = structured_quad_mesh(2, 1)
        g = nodal_graph(m)
        assert g.adjwgt.max() == 1

    def test_edge_weights_length_checked(self):
        m = structured_quad_mesh(1, 1)
        with pytest.raises(ValueError, match="align"):
            nodal_graph(m, edge_weights=np.ones(3))


class TestDualGraph:
    def test_quad_strip(self):
        m = structured_quad_mesh(4, 1)
        g = dual_graph(m)
        g.validate()
        assert g.num_vertices == 4
        assert g.num_edges == 3  # a path

    def test_hex_block(self):
        m = structured_box_mesh(3, 3, 3)
        g = dual_graph(m)
        # interior element has 6 dual neighbours
        assert g.degrees().max() == 6
        assert g.num_edges == 3 * (2 * 3 * 3)

    def test_disconnected_bodies_stay_disconnected(self):
        from repro.mesh.generators import merge_meshes

        a = structured_box_mesh(2, 2, 2)
        b = structured_box_mesh(2, 2, 2, origin=(10, 0, 0))
        m = merge_meshes([a, b])
        g = dual_graph(m)
        from repro.graph.ops import connected_components

        comp = connected_components(g)
        assert len(np.unique(comp)) == 2
