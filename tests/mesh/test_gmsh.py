"""Tests for Gmsh MSH 2.2 import/export."""

import numpy as np
import pytest

from repro.mesh.generators import merge_meshes, structured_box_mesh, structured_quad_mesh
from repro.mesh.gmsh import read_gmsh_mesh, write_gmsh_mesh
from repro.mesh.quality import element_measures


class TestRoundtrip:
    def test_hex_mesh(self, tmp_path):
        m = structured_box_mesh(3, 2, 2, size=(3, 2, 2))
        path = tmp_path / "m.msh"
        write_gmsh_mesh(path, m)
        loaded = read_gmsh_mesh(path)
        assert loaded.elem_type == "hex"
        assert loaded.num_elements == m.num_elements
        assert element_measures(loaded).sum() == pytest.approx(12.0)

    def test_quad_mesh_2d(self, tmp_path):
        m = structured_quad_mesh(4, 3, size=(4, 3))
        path = tmp_path / "q.msh"
        write_gmsh_mesh(path, m)
        loaded = read_gmsh_mesh(path)
        assert loaded.elem_type == "quad"
        assert loaded.dim == 2
        assert element_measures(loaded).sum() == pytest.approx(12.0)

    def test_body_ids_roundtrip(self, tmp_path):
        a = structured_box_mesh(1, 1, 1)
        b = structured_box_mesh(1, 1, 1, origin=(5, 0, 0))
        m = merge_meshes([a, b])
        path = tmp_path / "bodies.msh"
        write_gmsh_mesh(path, m)
        loaded = read_gmsh_mesh(path)
        assert len(np.unique(loaded.body_id)) == 2

    def test_pipeline_on_imported_mesh(self, tmp_path):
        """An imported mesh drives the partitioner directly."""
        from repro.mesh.nodal_graph import nodal_graph
        from repro.partition import PartitionOptions, partition_kway

        m = structured_box_mesh(4, 4, 2)
        path = tmp_path / "p.msh"
        write_gmsh_mesh(path, m)
        loaded = read_gmsh_mesh(path)
        g = nodal_graph(loaded)
        g.validate()
        part = partition_kway(g, 4, PartitionOptions(seed=0))
        assert len(np.unique(part)) == 4


class TestParsing:
    def _file(self, tmp_path, body):
        path = tmp_path / "x.msh"
        path.write_text(body)
        return path

    def test_mixed_elements_auto_picks_majority(self, tmp_path):
        # 2 triangles + 1 line element (skipped)
        body = """$MeshFormat
2.2 0 8
$EndMeshFormat
$Nodes
4
1 0 0 0
2 1 0 0
3 1 1 0
4 0 1 0
$EndNodes
$Elements
3
1 1 2 0 0 1 2
2 2 2 7 7 1 2 3
3 2 2 7 7 1 3 4
$EndElements
"""
        m = read_gmsh_mesh(self._file(tmp_path, body))
        assert m.elem_type == "tri"
        assert m.num_elements == 2

    def test_explicit_type_selection(self, tmp_path):
        body = """$MeshFormat
2.2 0 8
$EndMeshFormat
$Nodes
4
1 0 0 0
2 1 0 0
3 1 1 0
4 0 1 0
$EndNodes
$Elements
2
1 2 2 0 0 1 2 3
2 3 2 0 0 1 2 3 4
$EndElements
"""
        m = read_gmsh_mesh(self._file(tmp_path, body), elem_type="quad")
        assert m.elem_type == "quad"
        with pytest.raises(ValueError, match="no 'hex'"):
            read_gmsh_mesh(self._file(tmp_path, body), elem_type="hex")

    def test_version_3_rejected(self, tmp_path):
        body = "$MeshFormat\n4.1 0 8\n$EndMeshFormat\n"
        with pytest.raises(ValueError, match="2.x"):
            read_gmsh_mesh(self._file(tmp_path, body))

    def test_binary_rejected(self, tmp_path):
        body = "$MeshFormat\n2.2 1 8\n$EndMeshFormat\n"
        with pytest.raises(ValueError, match="binary"):
            read_gmsh_mesh(self._file(tmp_path, body))

    def test_missing_sections(self, tmp_path):
        with pytest.raises(ValueError, match="MeshFormat"):
            read_gmsh_mesh(self._file(tmp_path, "$Nodes\n0\n$EndNodes\n"))

    def test_unclosed_section(self, tmp_path):
        body = "$MeshFormat\n2.2 0 8\n"
        with pytest.raises(ValueError, match="not closed"):
            read_gmsh_mesh(self._file(tmp_path, body))

    def test_no_supported_elements(self, tmp_path):
        body = """$MeshFormat
2.2 0 8
$EndMeshFormat
$Nodes
2
1 0 0 0
2 1 0 0
$EndNodes
$Elements
1
1 1 2 0 0 1 2
$EndElements
"""
        with pytest.raises(ValueError, match="no supported"):
            read_gmsh_mesh(self._file(tmp_path, body))

    def test_unused_nodes_compacted(self, tmp_path):
        body = """$MeshFormat
2.2 0 8
$EndMeshFormat
$Nodes
5
1 0 0 0
2 1 0 0
3 1 1 0
7 9 9 9
9 0 1 0
$EndNodes
$Elements
1
1 2 2 0 0 1 2 3
$EndElements
"""
        m = read_gmsh_mesh(self._file(tmp_path, body))
        assert m.num_nodes == 3  # nodes 7 and 9 unused -> dropped
