"""Tests for mesh persistence."""

import numpy as np
import pytest

from repro.mesh.generators import structured_box_mesh
from repro.mesh.io import load_mesh, save_mesh
from repro.mesh.mesh import Mesh


class TestRoundtrip:
    def test_mesh_roundtrip(self, tmp_path):
        m = structured_box_mesh(2, 3, 2)
        m = Mesh(m.nodes, m.elements, m.elem_type,
                 body_id=np.arange(m.num_elements) % 2)
        path = tmp_path / "mesh.npz"
        save_mesh(path, m)
        loaded = load_mesh(path)
        assert np.array_equal(loaded.nodes, m.nodes)
        assert np.array_equal(loaded.elements, m.elements)
        assert loaded.elem_type == m.elem_type
        assert np.array_equal(loaded.body_id, m.body_id)

    def test_loaded_mesh_is_usable(self, tmp_path):
        from repro.mesh.nodal_graph import nodal_graph

        m = structured_box_mesh(2, 2, 2)
        path = tmp_path / "m.npz"
        save_mesh(path, m)
        g = nodal_graph(load_mesh(path))
        g.validate()

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_mesh(tmp_path / "nope.npz")
