"""Tests for mesh generators."""

import numpy as np
import pytest

from repro.mesh.generators import (
    merge_meshes,
    structured_box_mesh,
    structured_quad_mesh,
)
from repro.mesh.quality import element_measures


class TestStructuredBox:
    def test_counts(self):
        m = structured_box_mesh(3, 4, 5)
        assert m.num_elements == 60
        assert m.num_nodes == 4 * 5 * 6

    def test_geometry(self):
        m = structured_box_mesh(2, 2, 2, origin=(1, 2, 3), size=(4, 4, 4))
        assert np.allclose(m.nodes.min(axis=0), [1, 2, 3])
        assert np.allclose(m.nodes.max(axis=0), [5, 6, 7])

    def test_volume_tiles_exactly(self):
        m = structured_box_mesh(3, 2, 4, size=(3.0, 1.0, 2.0))
        assert element_measures(m).sum() == pytest.approx(6.0)

    def test_elements_positive_volume(self):
        m = structured_box_mesh(2, 3, 2)
        assert (element_measures(m) > 0).all()

    def test_invalid_counts(self):
        with pytest.raises(ValueError):
            structured_box_mesh(0, 1, 1)


class TestStructuredQuad:
    def test_counts_and_area(self):
        m = structured_quad_mesh(5, 4, size=(5, 4))
        assert m.num_elements == 20
        assert element_measures(m).sum() == pytest.approx(20.0)

    def test_origin(self):
        m = structured_quad_mesh(1, 1, origin=(-2, -2), size=(1, 1))
        assert np.allclose(m.nodes.min(axis=0), [-2, -2])


class TestMergeMeshes:
    def test_node_offsets(self):
        a = structured_quad_mesh(1, 1)
        b = structured_quad_mesh(1, 1, origin=(5, 0))
        m = merge_meshes([a, b])
        assert m.num_nodes == 8
        assert m.num_elements == 2
        assert m.elements[1].min() >= 4  # b's connectivity offset

    def test_body_ids_assigned(self):
        a = structured_quad_mesh(2, 1)
        b = structured_quad_mesh(1, 1, origin=(5, 0))
        m = merge_meshes([a, b])
        assert m.body_id.tolist() == [0, 0, 1]

    def test_no_shared_nodes(self):
        """Contact bodies must not share nodes even when touching."""
        a = structured_quad_mesh(1, 1)
        b = structured_quad_mesh(1, 1, origin=(1, 0))  # geometrically abut
        m = merge_meshes([a, b])
        assert len(np.unique(m.elements)) == 8

    def test_type_mismatch_rejected(self):
        a = structured_quad_mesh(1, 1)
        b = structured_box_mesh(1, 1, 1)
        with pytest.raises(ValueError, match="element type"):
            merge_meshes([a, b])

    def test_empty_list_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            merge_meshes([])
