"""Tests for the hex→tet decomposition and tet-mesh simulation."""

import numpy as np
import pytest

from repro.mesh.generators import (
    hex_to_tet_mesh,
    merge_meshes,
    structured_box_mesh,
    structured_quad_mesh,
)
from repro.mesh.quality import element_measures
from repro.mesh.surface import boundary_faces, surface_nodes


class TestHexToTet:
    def test_six_tets_per_hex(self):
        m = structured_box_mesh(2, 2, 2)
        t = hex_to_tet_mesh(m)
        assert t.elem_type == "tet"
        assert t.num_elements == 6 * m.num_elements
        assert t.num_nodes == m.num_nodes

    def test_volume_preserved(self):
        m = structured_box_mesh(3, 2, 4, size=(1.5, 1.0, 2.0))
        t = hex_to_tet_mesh(m)
        assert element_measures(t).sum() == pytest.approx(
            element_measures(m).sum()
        )

    def test_all_tets_positive_volume(self):
        t = hex_to_tet_mesh(structured_box_mesh(2, 3, 2))
        assert (element_measures(t) > 1e-12).all()

    def test_decomposition_conforming(self):
        """Interior faces pair up exactly: boundary tri count is twice
        the hex boundary quad count and the surface node set matches."""
        m = structured_box_mesh(3, 3, 3)
        t = hex_to_tet_mesh(m)
        quads, _ = boundary_faces(m)
        tris, _ = boundary_faces(t)
        assert len(tris) == 2 * len(quads)
        assert np.array_equal(surface_nodes(t), surface_nodes(m))

    def test_body_ids_propagate(self):
        a = structured_box_mesh(1, 1, 1)
        b = structured_box_mesh(1, 1, 1, origin=(5, 0, 0))
        t = hex_to_tet_mesh(merge_meshes([a, b]))
        assert np.array_equal(t.body_id, np.repeat([0, 1], 6))

    def test_rejects_non_hex(self):
        with pytest.raises(ValueError, match="hex"):
            hex_to_tet_mesh(structured_quad_mesh(2, 2))


class TestTetSimulation:
    def test_tet_sequence_runs(self):
        from repro.sim.projectile import ImpactConfig
        from repro.sim.sequence import simulate_impact

        seq = simulate_impact(ImpactConfig(n_steps=6, refine=0.5, tet=True))
        s = seq[0]
        assert s.mesh.elem_type == "tet"
        assert s.contact_faces.shape[1] == 3  # triangle faces
        assert s.num_contact_nodes > 0

    def test_tet_pipeline_end_to_end(self):
        """MCML+DT + search + local search on the tet workload."""
        from repro.core.contact_search import serial_candidate_pairs
        from repro.core.local_search import resolve_candidates
        from repro.core.mcml_dt import MCMLDTPartitioner
        from repro.geometry.bbox import element_bboxes
        from repro.sim.projectile import ImpactConfig
        from repro.sim.sequence import simulate_impact

        seq = simulate_impact(
            ImpactConfig(n_steps=10, refine=0.5, tet=True)
        )
        snap = seq[9]
        pt = MCMLDTPartitioner(4)
        pt.fit(snap)
        tree, _ = pt.build_descriptors(snap)
        plan = pt.search_plan(snap, tree)
        assert plan.n_remote >= 0
        boxes = element_bboxes(snap.mesh.nodes, snap.contact_faces)
        boxes[:, 0] -= 0.2
        boxes[:, 1] += 0.2
        pairs = serial_candidate_pairs(
            boxes, snap.contact_faces,
            snap.mesh.nodes[snap.contact_nodes], snap.contact_nodes,
        )
        res = resolve_candidates(
            snap.mesh.nodes, snap.contact_faces, sorted(pairs)
        )
        assert np.isfinite(res.gap).all()
