"""Tests for the Mesh container."""

import numpy as np
import pytest

from repro.mesh.generators import structured_box_mesh, structured_quad_mesh
from repro.mesh.mesh import Mesh


class TestConstruction:
    def test_dim_mismatch_rejected(self):
        nodes = np.zeros((4, 2))
        elems = np.array([[0, 1, 2, 3]])
        with pytest.raises(ValueError, match="3-D"):
            Mesh(nodes, elems, "tet")

    def test_bad_connectivity_rejected(self):
        nodes = np.zeros((3, 2))
        with pytest.raises(ValueError, match="missing nodes"):
            Mesh(nodes, np.array([[0, 1, 5]]), "tri")

    def test_wrong_nodes_per_element(self):
        nodes = np.zeros((4, 2))
        with pytest.raises(ValueError, match="shape"):
            Mesh(nodes, np.array([[0, 1, 2]]), "quad")

    def test_body_id_defaults_to_zero(self):
        m = structured_quad_mesh(2, 2)
        assert (m.body_id == 0).all()

    def test_body_id_length_checked(self):
        nodes = np.zeros((3, 2))
        with pytest.raises(ValueError, match="body_id"):
            Mesh(nodes, np.array([[0, 1, 2]]), "tri", body_id=np.array([0, 1]))


class TestDerived:
    def test_centroids(self):
        m = structured_quad_mesh(1, 1)  # unit square, one element
        assert np.allclose(m.centroids(), [[0.5, 0.5]])

    def test_node_body_id(self):
        m = structured_quad_mesh(2, 1)
        bid = m.node_body_id()
        assert (bid == 0).all()

    def test_used_nodes_complete_for_fresh_mesh(self):
        m = structured_box_mesh(2, 2, 2)
        assert len(m.used_nodes()) == m.num_nodes


class TestWithElements:
    def test_keep_node_ids(self):
        m = structured_quad_mesh(3, 1)
        sub = m.with_elements(np.array([0, 2]))
        assert sub.num_nodes == m.num_nodes  # node array untouched
        assert sub.num_elements == 2

    def test_bool_mask(self):
        m = structured_quad_mesh(3, 1)
        mask = np.array([True, False, True])
        sub = m.with_elements(mask)
        assert sub.num_elements == 2

    def test_drop_orphans_compacts(self):
        m = structured_quad_mesh(3, 1)
        sub = m.with_elements(np.array([0]), drop_orphans=True)
        assert sub.num_nodes == 4
        assert sub.elements.max() < 4

    def test_body_id_follows_elements(self):
        m = structured_quad_mesh(2, 1)
        m2 = Mesh(m.nodes, m.elements, "quad", body_id=np.array([3, 7]))
        sub = m2.with_elements(np.array([1]))
        assert sub.body_id.tolist() == [7]


class TestTransforms:
    def test_with_nodes_shape_checked(self):
        m = structured_quad_mesh(2, 2)
        with pytest.raises(ValueError, match="shape"):
            m.with_nodes(np.zeros((3, 2)))

    def test_translated(self):
        m = structured_quad_mesh(1, 1)
        t = m.translated([2.0, 3.0])
        assert np.allclose(t.nodes.min(axis=0), [2.0, 3.0])
        # original untouched
        assert np.allclose(m.nodes.min(axis=0), [0.0, 0.0])
