"""Tests for surface extraction."""

import numpy as np
import pytest

from repro.mesh.generators import structured_box_mesh, structured_quad_mesh
from repro.mesh.surface import (
    boundary_faces,
    face_nodes,
    interior_face_pairs,
    surface_nodes,
)


class TestFaceNodes:
    def test_counts(self):
        m = structured_box_mesh(2, 2, 2)
        faces, owner, local = face_nodes(m)
        assert len(faces) == 8 * 6
        assert owner.max() == 7
        assert set(local.tolist()) == set(range(6))


class TestBoundaryFaces:
    def test_box_face_count(self):
        m = structured_box_mesh(3, 2, 2)
        faces, owner = boundary_faces(m)
        expect = 2 * (3 * 2 + 3 * 2 + 2 * 2)
        assert len(faces) == expect

    def test_quad_boundary_edges(self):
        m = structured_quad_mesh(4, 3)
        faces, _ = boundary_faces(m)
        assert len(faces) == 2 * (4 + 3)

    def test_owner_elements_touch_boundary(self):
        m = structured_box_mesh(3, 3, 3)
        faces, owner = boundary_faces(m)
        # the single interior element (1,1,1) owns no boundary face
        interior = 1 * 9 + 1 * 3 + 1  # element index for (1,1,1)
        assert interior not in owner

    def test_erosion_exposes_new_faces(self):
        """Deleting an interior element turns its faces into boundary —
        the mechanism growing the contact surface in penetration."""
        m = structured_box_mesh(3, 3, 3)
        before, _ = boundary_faces(m)
        centroids = m.centroids()
        centre = np.argmin(
            np.linalg.norm(centroids - centroids.mean(axis=0), axis=1)
        )
        keep = np.ones(27, dtype=bool)
        keep[centre] = False
        after, _ = boundary_faces(m.with_elements(keep))
        assert len(after) == len(before) + 6

    def test_empty_mesh(self):
        m = structured_quad_mesh(1, 1)
        empty = m.with_elements(np.array([], dtype=np.int64))
        faces, owner = boundary_faces(empty)
        assert len(faces) == 0


class TestSurfaceNodes:
    def test_box_surface_node_count(self):
        m = structured_box_mesh(4, 4, 4)
        sn = surface_nodes(m)
        assert len(sn) == 5**3 - 3**3

    def test_single_element_all_nodes_on_surface(self):
        m = structured_box_mesh(1, 1, 1)
        assert len(surface_nodes(m)) == 8


class TestInteriorFacePairs:
    def test_pair_count(self):
        m = structured_box_mesh(3, 2, 2)
        pairs = interior_face_pairs(m)
        expect = 2 * 2 * 2 + 3 * 1 * 2 + 3 * 2 * 1
        assert len(pairs) == expect

    def test_pairs_are_adjacent_elements(self):
        m = structured_box_mesh(2, 2, 2)
        centroids = m.centroids()
        for a, b in interior_face_pairs(m):
            # face-adjacent hexes in this mesh are at unit spacing
            assert np.isclose(
                np.linalg.norm(centroids[a] - centroids[b]), 0.5
            )
