"""Randomized invariant tests for the partitioning core.

Hypothesis draws only small integer seeds/shapes; all randomness inside
an example flows through :func:`repro.utils.rng.as_rng` (RNG001) so any
failing example replays from its printed inputs.

Invariants checked (paper §2 and §4.1.1):

* every partition vector is a total labelling into ``[0, k)``;
* both constraint imbalances respect the configured ``ubfactor`` (plus
  one max-weight vertex of integer-granularity slack per constraint);
* induced descriptor leaves are axis-parallel boxes that cover every
  contact point routed to them.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dtree.descriptors import leaf_regions
from repro.dtree.induction import induce_pure_tree
from repro.dtree.query import assign_points
from repro.graph.build import grid_graph
from repro.graph.metrics import load_imbalance
from repro.partition.config import PartitionOptions
from repro.partition.kway import partition_kway
from repro.utils.rng import as_rng


def _random_two_constraint_grid(seed):
    """A connected grid graph with a unit FE constraint and a random
    {1, 2} second constraint — always feasibly balanceable."""
    rng = as_rng(seed)
    nx = int(rng.integers(8, 17))
    ny = int(rng.integers(8, 17))
    n = nx * ny
    vwgts = np.column_stack(
        [
            np.ones(n, dtype=np.int64),
            rng.integers(1, 3, size=n),
        ]
    )
    return grid_graph(nx, ny, vwgts=vwgts)


@given(
    seed=st.integers(0, 10_000),
    k=st.integers(2, 5),
)
@settings(max_examples=25, deadline=None)
def test_property_labels_total_and_in_range(seed, k):
    """partition_kway labels every vertex with a value in [0, k)."""
    graph = _random_two_constraint_grid(seed)
    part = partition_kway(graph, k, PartitionOptions(seed=seed))
    assert part.shape == (graph.num_vertices,)
    assert part.dtype == np.int64
    assert part.min() >= 0
    assert part.max() < k
    # every part is non-empty for these feasible inputs
    assert len(np.unique(part)) == k


@given(
    seed=st.integers(0, 10_000),
    k=st.integers(2, 4),
    ubfactor=st.sampled_from([1.2, 1.3, 1.5]),
)
@settings(max_examples=25, deadline=None)
def test_property_both_constraints_within_ubfactor(seed, k, ubfactor):
    """Both constraint imbalances stay within the configured ubfactor
    (plus one max-weight vertex of granularity slack per constraint)."""
    graph = _random_two_constraint_grid(seed)
    options = PartitionOptions(seed=seed, ubfactor=ubfactor)
    part = partition_kway(graph, k, options)
    imbalance = load_imbalance(graph, part, k)
    slack = graph.vwgts.max(axis=0) / (graph.total_vwgt / k)
    assert imbalance.shape == (2,)
    for j in range(2):
        assert imbalance[j] <= ubfactor + slack[j] + 1e-9, (
            f"constraint {j}: {imbalance[j]:.4f} > "
            f"{ubfactor} + {slack[j]:.4f}"
        )


@given(
    seed=st.integers(0, 10_000),
    k=st.integers(2, 6),
    dim=st.integers(2, 3),
)
@settings(max_examples=25, deadline=None)
def test_property_descriptor_leaves_are_covering_boxes(seed, k, dim):
    """Induced descriptor leaves are axis-parallel boxes and every
    contact point lands inside its leaf's region."""
    rng = as_rng(seed)
    n = int(rng.integers(3 * k, 200))
    points = rng.random((n, dim))
    labels = rng.integers(0, k, size=n)
    tree, leaf_of = induce_pure_tree(points, labels, k)

    domain = np.vstack(
        [points.min(axis=0) - 0.1, points.max(axis=0) + 0.1]
    )
    leaf_ids, regions = leaf_regions(tree, domain)

    # axis-parallel boxes: (2, dim) with lo <= hi on every axis
    assert regions.shape == (len(leaf_ids), 2, dim)
    assert (regions[:, 0, :] <= regions[:, 1, :] + 1e-12).all()

    # leaf_regions enumerates exactly the tree's leaves
    tree_leaves = {
        i for i, node in enumerate(tree.nodes) if node.is_leaf
    }
    assert set(leaf_ids.tolist()) == tree_leaves

    # every point is covered by the region of the leaf it routes to
    region_of = {int(i): regions[j] for j, i in enumerate(leaf_ids)}
    routed = assign_points(tree, points)
    np.testing.assert_array_equal(routed, leaf_of)
    for idx in range(n):
        box = region_of[int(routed[idx])]
        assert (points[idx] >= box[0] - 1e-12).all()
        assert (points[idx] <= box[1] + 1e-12).all()


@given(seed=st.integers(0, 10_000), k=st.integers(2, 6))
@settings(max_examples=15, deadline=None)
def test_property_pure_leaves_match_labels(seed, k):
    """On distinct points, every pure leaf's label agrees with the
    labels of all points routed to it."""
    rng = as_rng(seed)
    n = int(rng.integers(3 * k, 120))
    points = rng.random((n, 2))
    labels = rng.integers(0, k, size=n)
    tree, leaf_of = induce_pure_tree(points, labels, k)
    for leaf in np.unique(leaf_of):
        node = tree.nodes[int(leaf)]
        members = labels[leaf_of == leaf]
        if node.is_pure:
            assert (members == node.label).all()
