"""Tests for the pluggable SPMD execution backends.

The contract under test: every backend runs the same superstep
protocol (messages visible next step, self-sends dropped, per-rank
state persistent) and produces *bit-identical* results, ledgers, and
merged spans — the serial backend is the reference, the thread and
process backends must be indistinguishable from it.
"""

import os
import pickle
import warnings

import numpy as np
import pytest

from repro.obs.tracer import Tracer
from repro.runtime.backends import (
    BACKEND_ENV,
    BACKEND_NAMES,
    WORKERS_ENV,
    Backend,
    BackendError,
    ProcessBackend,
    SerialBackend,
    SpmdSession,
    ThreadBackend,
    make_backend,
    resolve_backend,
    set_default_backend,
)
from repro.runtime.executor import spmd_run
from repro.runtime.ledger import CommLedger


# ----------------------------------------------------------------------
# module-level supersteps (picklable, usable on the process pool)
# ----------------------------------------------------------------------


def _ring_send(ctx):
    dst = (ctx.rank + 1) % ctx.size
    ctx.send(dst, ("hello", ctx.rank), phase="ring", items=1)
    ctx.state["sent_to"] = dst


def _ring_recv(ctx):
    got = ctx.inbox()
    return (ctx.rank, ctx.state["sent_to"], got)


def _sum_shared(ctx, scale):
    return float(ctx.shared["values"][ctx.rank :: ctx.size].sum()) * scale


def _traced(ctx):
    with ctx.span("work"):
        ctx.count("visits", 1)
    return ctx.rank


def _boom(ctx):
    if ctx.rank == 1:
        raise RuntimeError("rank 1 explodes")
    return ctx.rank


def _all_backends():
    return [SerialBackend(), ThreadBackend(workers=2),
            ProcessBackend(workers=2)]


# ----------------------------------------------------------------------
# resolution and validation
# ----------------------------------------------------------------------


class TestResolution:
    def test_make_backend_names(self):
        assert isinstance(make_backend("serial"), SerialBackend)
        assert isinstance(make_backend("thread"), ThreadBackend)
        assert isinstance(make_backend("process"), ProcessBackend)

    def test_make_backend_spec_with_workers(self):
        be = make_backend("process:3")
        assert be.workers == 3

    def test_make_backend_unknown(self):
        with pytest.raises(ValueError, match="unknown backend"):
            make_backend("gpu")

    def test_make_backend_bad_workers(self):
        with pytest.raises(ValueError, match="worker count"):
            make_backend("process:0")
        with pytest.raises(ValueError, match="invalid worker count"):
            make_backend("thread:lots")

    def test_resolve_passthrough_and_default(self, monkeypatch):
        monkeypatch.delenv(BACKEND_ENV, raising=False)
        be = SerialBackend()
        assert resolve_backend(be) is be
        assert isinstance(resolve_backend(None), SerialBackend)

    def test_make_backend_instance_passthrough(self):
        """Regression: an already-constructed backend instance must
        pass through ``make_backend`` untouched (it used to crash with
        an AttributeError on ``spec.partition``), so a pooled backend
        can be reused across jobs without re-resolving precedence or
        spinning up a second pool."""
        be = ThreadBackend(workers=1)
        try:
            assert make_backend(be) is be
            # workers is ignored for instances — no hidden re-pooling
            assert make_backend(be, workers=7) is be
            assert resolve_backend(be, workers=7) is be
        finally:
            be.close()

    def test_instance_reused_across_repeated_resolution(self):
        """Resolving the same instance many times (one resolution per
        job, as the service engine's job loop does) never constructs a
        new backend."""
        be = ThreadBackend(workers=1)
        try:
            resolved = {id(resolve_backend(make_backend(be)))
                        for _ in range(5)}
            assert resolved == {id(be)}
        finally:
            be.close()

    def test_resolve_set_default(self, monkeypatch):
        monkeypatch.delenv(BACKEND_ENV, raising=False)
        be = ThreadBackend(workers=1)
        set_default_backend(be)
        try:
            assert resolve_backend(None) is be
        finally:
            set_default_backend(None)
        assert isinstance(resolve_backend(None), SerialBackend)

    def test_resolve_env(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV, "thread:2")
        resolved = resolve_backend(None)
        assert isinstance(resolved, ThreadBackend)

    def test_env_workers(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV, "process")
        monkeypatch.setenv(WORKERS_ENV, "5")
        resolved = resolve_backend(None)
        assert isinstance(resolved, ProcessBackend)
        assert resolved.workers == 5


class TestValidation:
    def test_session_size_must_be_positive(self):
        with pytest.raises(ValueError, match="size must be >= 1"):
            SpmdSession(0, None, None)
        for be in _all_backends():
            with be:
                with pytest.raises(ValueError, match=">= 1"):
                    be.open_session(0)
                with pytest.raises(ValueError, match=">= 1"):
                    be.open_session(-3)

    def test_spmd_run_size_validation(self):
        with pytest.raises(ValueError, match="at least one rank"):
            spmd_run(0, [_traced])
        with pytest.raises(ValueError, match="size=-1"):
            spmd_run(-1, [_traced])

    def test_send_validation(self):
        be = SerialBackend()
        with be.open_session(2) as sess:

            def bad_dst(ctx, _arg):
                ctx.send(7, None, phase="p", items=1)

            with pytest.raises(ValueError, match="out of range"):
                sess.step(bad_dst)

    def test_account_validation(self):
        with SerialBackend().open_session(2) as sess:
            with pytest.raises(ValueError, match="out of range"):
                sess.account("p", 0, 5, 1)


# ----------------------------------------------------------------------
# cross-backend equivalence
# ----------------------------------------------------------------------


class TestEquivalence:
    def test_ring_program_identical_everywhere(self):
        reference = None
        for be in _all_backends():
            with be:
                ledger = CommLedger()
                results = spmd_run(
                    4, [_ring_send, _ring_recv], ledger=ledger, backend=be
                )
                outcome = (results[1], ledger.summary())
                if reference is None:
                    reference = outcome
                else:
                    assert outcome == reference, be.name
        # every rank got exactly the message from its predecessor
        for rank, sent_to, got in reference[0]:
            assert sent_to == (rank + 1) % 4
            assert got == [((rank - 1) % 4, ("hello", (rank - 1) % 4))]
        assert reference[1] == {"ring": (4, 4)}

    def test_shared_arrays_reach_every_rank(self):
        values = np.arange(1000, dtype=float)
        expect = [
            float(values[r::3].sum()) * 2.0 for r in range(3)
        ]
        for be in _all_backends():
            with be:
                with be.open_session(3, shared={"values": values}) as s:
                    assert s.step(_sum_shared, 2.0) == expect

    def test_state_persists_across_steps(self):
        for be in _all_backends():
            with be:
                results = spmd_run(3, [_ring_send, _ring_recv], backend=be)
                for rank, sent_to, _got in results[1]:
                    assert sent_to == (rank + 1) % 3

    def test_spans_merge_per_rank(self):
        for be in _all_backends():
            with be:
                tracer = Tracer()
                with tracer.span("run"):
                    spmd_run(4, [_traced], backend=be, tracer=tracer)
                root = tracer.finish()
                work = root.find("run/work")
                assert work is not None, be.name
                assert work.n_calls == 4
                assert work.counters["visits"] == 4


# ----------------------------------------------------------------------
# process-backend specifics
# ----------------------------------------------------------------------


class TestProcessBackend:
    def test_closure_falls_back_with_warning(self):
        captured = {}

        def closure_step(ctx):  # not picklable: a closure
            # the capture is the point — it proves the in-process
            # fallback (which runs ranks sequentially) actually ran
            captured.setdefault("ranks", []).append(ctx.rank)  # repro-lint: disable=SPMD001
            return ctx.rank * 10

        with ProcessBackend(workers=2) as be:
            with pytest.warns(RuntimeWarning, match="not picklable"):
                results = spmd_run(3, [closure_step], backend=be)
        assert results[0] == [0, 10, 20]
        assert captured["ranks"] == [0, 1, 2]  # ran in-process

    def test_worker_exception_propagates(self):
        with ProcessBackend(workers=2) as be:
            with pytest.raises(BackendError, match="rank 1 explodes"):
                spmd_run(2, [_boom], backend=be)

    def test_pool_is_reused_across_sessions(self):
        with ProcessBackend(workers=2) as be:
            spmd_run(2, [_traced], backend=be)
            first = {h.proc.pid for h in be._pool}
            spmd_run(4, [_traced], backend=be)
            assert {h.proc.pid for h in be._pool} == first

    def test_backend_error_is_picklable(self):
        err = BackendError("boom")
        assert str(pickle.loads(pickle.dumps(err))) == "boom"

    def test_more_ranks_than_workers(self):
        with ProcessBackend(workers=2) as be:
            ledger = CommLedger()
            results = spmd_run(
                7, [_ring_send, _ring_recv], ledger=ledger, backend=be
            )
            assert [r for r, _s, _g in results[1]] == list(range(7))
            assert ledger.summary() == {"ring": (7, 7)}


class TestBackendProtocol:
    def test_base_backend_is_abstract(self):
        with pytest.raises(NotImplementedError):
            Backend().open_session(1)

    def test_session_rejects_use_after_close(self):
        sess = SerialBackend().open_session(2)
        sess.close()
        with pytest.raises(BackendError, match="closed"):
            sess.step(_traced)

    def test_env_propagates_to_subprocess(self):
        # the documented way to run the whole suite on a backend:
        # REPRO_BACKEND=process — resolution must read it at call time
        env_before = os.environ.get(BACKEND_ENV)
        assert env_before is None or env_before.split(":")[0] in BACKEND_NAMES


class TestSharedPlanReuse:
    """The backend reuses its shared-memory plan across sessions with
    the same array layout (the driver's step loop), so segments are
    created once and keep stable names instead of being unlinked and
    re-created every step."""

    @staticmethod
    def _step_shared(step):
        return {
            "values": np.arange(8, dtype=np.float64) * (step + 1),
            "flags": np.array([step, step + 1], dtype=np.int64),
            "label": f"step-{step}",
        }

    def test_segment_names_stable_across_steps(self):
        with ProcessBackend(workers=2) as be:
            names = []
            for step in range(3):
                shared = self._step_shared(step)
                with be.open_session(2, shared=shared) as sess:
                    out = sess.step(_sum_shared, 1.0)
                    # fresh values each step, through the same segments
                    total = float(shared["values"].sum())
                    assert sum(out) == total
                    names.append(
                        tuple(n for _k, n, _d, _s in sess._specs)
                    )
            assert len(names[0]) == 2
            assert names[0] == names[1] == names[2]
            assert be.shm_creates == 2
            assert be.shm_reuses == 4  # 2 segments x 2 reusing steps

    def test_layout_change_retires_plan(self):
        with ProcessBackend(workers=2) as be:
            with be.open_session(2, shared=self._step_shared(0)) as s1:
                s1.step(_sum_shared, 1.0)
                first = tuple(n for _k, n, _d, _s in s1._specs)
            changed = {"values": np.arange(4, dtype=np.float64)}
            with be.open_session(2, shared=changed) as s2:
                out = s2.step(_sum_shared, 1.0)
                assert sum(out) == 6.0
                second = tuple(n for _k, n, _d, _s in s2._specs)
            assert set(first).isdisjoint(second)
            assert be.shm_reuses == 0

    def test_concurrent_sessions_fall_back_to_owned_segments(self):
        # the plan is single-slot: a second live session with the same
        # layout must get its own segments, not clobber the first's
        with ProcessBackend(workers=2) as be:
            shared = self._step_shared(0)
            with be.open_session(2, shared=shared) as s1:
                s1.step(_sum_shared, 1.0)
                with be.open_session(2, shared=shared) as s2:
                    out = s2.step(_sum_shared, 1.0)
                    assert sum(out) == float(shared["values"].sum())
                    n1 = {n for _k, n, _d, _s in s1._specs}
                    n2 = {n for _k, n, _d, _s in s2._specs}
                    assert n1.isdisjoint(n2)

    def test_plan_survives_worker_recovery(self):
        # killing a worker mid-session exercises the recovery re-open,
        # which must re-attach the same plan segments
        with ProcessBackend(workers=2) as be:
            with be.open_session(2, shared=self._step_shared(0)) as s1:
                s1.step(_sum_shared, 1.0)
                names = tuple(n for _k, n, _d, _s in s1._specs)
                victim = be._pool[0]
                victim.proc.terminate()
                victim.proc.join(timeout=5)
                out = s1.step(_sum_shared, 2.0)
                assert sum(out) == 2.0 * float(
                    self._step_shared(0)["values"].sum()
                )
            with be.open_session(2, shared=self._step_shared(1)) as s2:
                s2.step(_sum_shared, 1.0)
                assert tuple(n for _k, n, _d, _s in s2._specs) == names
