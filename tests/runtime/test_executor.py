"""Tests for the SPMD executor."""

import numpy as np
import pytest

from repro.runtime.executor import spmd_run
from repro.runtime.ledger import CommLedger


class TestSpmdRun:
    def test_results_indexed_by_step_and_rank(self):
        results = spmd_run(3, [lambda ctx: ctx.rank * 10])
        assert results == [[0, 10, 20]]

    def test_ring_exchange(self):
        """Classic ring: each rank sends its id right; superstep 2 sums
        what it received."""

        def send(ctx):
            ctx.send((ctx.rank + 1) % ctx.size, ctx.rank, "ring", 1)

        def receive(ctx):
            msgs = ctx.inbox()
            assert len(msgs) == 1
            src, payload = msgs[0]
            assert src == payload == (ctx.rank - 1) % ctx.size
            return payload

        results = spmd_run(4, [send, receive])
        assert results[1] == [3, 0, 1, 2]

    def test_messages_not_visible_same_superstep(self):
        def step(ctx):
            ctx.send((ctx.rank + 1) % ctx.size, "x", "p", 1)
            return len(ctx.inbox())

        results = spmd_run(2, [step])
        assert results[0] == [0, 0]

    def test_ledger_threading(self):
        led = CommLedger()

        def chatter(ctx):
            for dst in range(ctx.size):
                if dst != ctx.rank:
                    ctx.send(dst, None, "gossip", 2)

        spmd_run(3, [chatter], led)
        assert led.messages("gossip") == 6
        assert led.items("gossip") == 12

    def test_all_to_all_volume_symmetry(self):
        """Each rank's sent total equals each rank's received total in a
        symmetric exchange."""
        led = CommLedger()

        def exchange(ctx):
            for dst in range(ctx.size):
                if dst != ctx.rank:
                    ctx.send(dst, None, "sym", 5)

        spmd_run(4, [exchange], led)
        for r in range(4):
            assert led.sent_by_rank[("sym", r)] == 15
            assert led.received_by_rank[("sym", r)] == 15
