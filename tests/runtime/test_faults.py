"""Tests for the deterministic fault-injection harness (`chaos`).

The contract under test: a chaos run — any plan, any inner backend —
produces results, ledgers, and per-rank state bit-identical to an
uninjected serial run. Faults change *how long* a run takes, never
*what it computes*.
"""

import os

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.tracer import Tracer
from repro.runtime.backends import (
    CHAOS_INNER_ENV,
    FAULT_PLAN_ENV,
    SerialBackend,
    make_backend,
)
from repro.runtime.backends.process import ProcessBackend, SupervisorConfig
from repro.runtime.executor import spmd_run
from repro.runtime.faults import (
    ChaosBackend,
    ChaosStep,
    FaultPlan,
    FaultSpec,
    InjectedFault,
)
from repro.runtime.ledger import CommLedger


# ----------------------------------------------------------------------
# module-level supersteps (picklable, usable on the process pool)
# ----------------------------------------------------------------------


def _seed_state(ctx):
    ctx.state["acc"] = ctx.rank + 1
    ctx.send((ctx.rank + 1) % ctx.size, ctx.rank, phase="ring", items=1)


def _fold_inbox(ctx):
    for _src, payload in ctx.inbox():
        ctx.state["acc"] += payload * 10
    ctx.send((ctx.rank + 2) % ctx.size, ctx.state["acc"], phase="ring",
             items=1)


def _collect(ctx):
    extras = sorted(p for _s, p in ctx.inbox())
    return (ctx.rank, ctx.state["acc"], extras)


PIPELINE = (_seed_state, _fold_inbox, _collect)


def _run_pipeline(backend, tracer=None):
    ledger = CommLedger()
    results = spmd_run(
        3, PIPELINE, ledger=ledger, backend=backend, tracer=tracer
    )
    return results, ledger


# ----------------------------------------------------------------------
# plan grammar
# ----------------------------------------------------------------------


class TestFaultPlan:
    def test_parse_entry_defaults(self):
        plan = FaultPlan.parse("kill@2.1")
        assert plan.faults == (FaultSpec("kill", 2, 1, 0.0),)

    def test_parse_multiple_with_seconds(self):
        plan = FaultPlan.parse("kill@2.1, slow@5.0:0.02 ,hang@7.1:12")
        assert [f.kind for f in plan.faults] == ["kill", "slow", "hang"]
        assert plan.faults[1].seconds == pytest.approx(0.02)
        assert plan.faults[2].seconds == pytest.approx(12.0)

    def test_roundtrip(self):
        text = "kill@2.1,slow@5.0:0.02,hang@7.1:12"
        assert FaultPlan.parse(text).to_text() == text

    def test_default_seconds_omitted_from_text(self):
        assert FaultPlan.parse("hang@1.0:30").to_text() == "hang@1.0"

    @pytest.mark.parametrize(
        "bad",
        ["boom@1.0", "kill@1", "kill@x.y", "kill@1.0:soon", "kill1.0"],
    )
    def test_parse_errors(self, bad):
        with pytest.raises(ValueError, match="invalid fault entry|unknown"):
            FaultPlan.parse(bad)

    def test_spec_validation(self):
        with pytest.raises(ValueError, match="kind"):
            FaultSpec("explode", 0, 0, 0.0)
        with pytest.raises(ValueError, match=">= 0"):
            FaultSpec("kill", -1, 0, 0.0)
        with pytest.raises(ValueError, match="seconds"):
            FaultSpec("hang", 0, 0, -1.0)

    def test_from_env(self, monkeypatch):
        monkeypatch.setenv(FAULT_PLAN_ENV, "kill@0.0")
        assert FaultPlan.from_env().faults[0].kind == "kill"
        monkeypatch.delenv(FAULT_PLAN_ENV)
        assert not FaultPlan.from_env()

    def test_bool(self):
        assert not FaultPlan()
        assert FaultPlan.parse("slow@0.0")


class TestChaosBackendConstruction:
    def test_refuses_to_wrap_itself(self):
        with pytest.raises(ValueError, match="wrap itself"):
            ChaosBackend(plan="", inner="chaos")
        inner = ChaosBackend(plan="", inner="serial")
        with pytest.raises(ValueError, match="wrap itself"):
            ChaosBackend(plan="", inner=inner)

    def test_env_defaults(self, monkeypatch):
        monkeypatch.setenv(FAULT_PLAN_ENV, "kill@3.0")
        monkeypatch.setenv(CHAOS_INNER_ENV, "serial")
        be = ChaosBackend()
        assert isinstance(be.inner, SerialBackend)
        assert be.plan.to_text() == "kill@3.0"

    def test_make_backend_chaos(self, monkeypatch):
        monkeypatch.setenv(CHAOS_INNER_ENV, "serial")
        monkeypatch.delenv(FAULT_PLAN_ENV, raising=False)
        be = make_backend("chaos")
        assert isinstance(be, ChaosBackend)
        be.close()

    def test_reset_rearms(self):
        be = ChaosBackend(plan="kill@0.0", inner="serial")
        assert be._arm(0, 3)
        assert not be._arm(0, 3)  # one-shot
        be.reset()
        assert be._arm(0, 3)

    def test_fault_outside_session_not_consumed(self):
        be = ChaosBackend(plan="kill@0.5", inner="serial")
        assert be._arm(0, 2) == {}  # rank 5 doesn't exist at size 2
        assert be._arm(0, 8)  # still armed for a big enough session


# ----------------------------------------------------------------------
# equivalence: chaos == clean serial, on every inner backend
# ----------------------------------------------------------------------


REFERENCE = _run_pipeline(SerialBackend())


@pytest.mark.parametrize("inner", ["serial", "thread", "sentinel"])
def test_chaos_kill_is_bit_identical(inner):
    """An in-process kill rolls back and retries; results and ledger
    match the clean serial run exactly."""
    tracer = Tracer()
    chaos = ChaosBackend(plan="kill@1.1", inner=inner, workers=2)
    try:
        results, ledger = _run_pipeline(chaos, tracer=tracer)
    finally:
        chaos.close()
    ref_results, ref_ledger = REFERENCE
    assert results == ref_results
    assert ledger.phases == ref_ledger.phases
    assert ledger.sent_by_rank == ref_ledger.sent_by_rank
    counters = _counter_totals(tracer)
    assert counters.get("faults_injected") == 1
    assert counters.get("step_retries") == 1


def test_chaos_kill_on_process_pool_is_bit_identical():
    """A pool-worker kill exercises the supervised respawn path and
    still matches serial."""
    tracer = Tracer()
    inner = ProcessBackend(
        workers=2,
        supervisor=SupervisorConfig(max_retries=2, backoff_base_s=0.01),
    )
    chaos = ChaosBackend(plan="kill@1.0", inner=inner)
    try:
        results, ledger = _run_pipeline(chaos, tracer=tracer)
    finally:
        chaos.close()
    ref_results, ref_ledger = REFERENCE
    assert results == ref_results
    assert ledger.phases == ref_ledger.phases
    counters = _counter_totals(tracer)
    assert counters.get("worker_deaths", 0) >= 1
    assert counters.get("worker_respawns", 0) >= 1


def test_chaos_slow_is_bit_identical():
    chaos = ChaosBackend(plan="slow@0.0:0.001,slow@2.2:0.001",
                         inner="serial")
    try:
        results, ledger = _run_pipeline(chaos)
    finally:
        chaos.close()
    assert (results, ledger.phases) == (REFERENCE[0], REFERENCE[1].phases)


def test_empty_plan_is_passthrough():
    chaos = ChaosBackend(plan="", inner="serial")
    try:
        results, ledger = _run_pipeline(chaos)
    finally:
        chaos.close()
    assert results == REFERENCE[0]


def test_injected_fault_raises_without_chaos_session():
    """A ChaosStep fired outside a chaos session (no rollback layer)
    surfaces the InjectedFault to the caller."""
    step = ChaosStep(_collect, 0, {0: ("kill", 0.0)})
    with pytest.raises(InjectedFault, match="rank 0"):
        spmd_run(2, [lambda ctx: step(ctx, None)])


def test_chaos_step_is_transparent():
    step = ChaosStep(_seed_state, 4, {})
    assert step.__wrapped__ is _seed_state
    assert step.__name__ == "_seed_state"
    assert step.disarm() is _seed_state


# ----------------------------------------------------------------------
# property: no single-rank fault plan changes the answer
# ----------------------------------------------------------------------


@given(
    kind=st.sampled_from(["kill", "slow"]),
    step=st.integers(0, 3),
    rank=st.integers(0, 3),
)
@settings(max_examples=25, deadline=None)
def test_property_single_fault_never_changes_results(kind, step, rank):
    """For ANY single fault (any kind, any step — including past the
    end of the run — any rank, including absent ranks) the chaos run's
    results and ledger equal the clean serial run's."""
    plan = FaultPlan((FaultSpec(kind, step, rank, 0.0),))
    chaos = ChaosBackend(plan=plan, inner="serial")
    try:
        results, ledger = _run_pipeline(chaos)
    finally:
        chaos.close()
    assert results == REFERENCE[0]
    assert ledger.phases == REFERENCE[1].phases
    assert ledger.received_by_rank == REFERENCE[1].received_by_rank


# ----------------------------------------------------------------------


def _counter_totals(tracer):
    totals = {}
    for _path, span in tracer.finish().walk():
        for name, value in span.counters.items():
            totals[name] = totals.get(name, 0) + value
    return totals
