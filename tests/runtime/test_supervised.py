"""Tests for the supervised process backend.

The contract under test: worker death or hang at any superstep is
invisible in the results — the supervisor respawns and replays, and
when the pool is beyond saving it degrades to in-process serial
execution (warning, never wrong answers).
"""

import multiprocessing
import os
import time
import warnings

import pytest

from repro.obs.tracer import Tracer
from repro.runtime.backends import (
    MAX_RETRIES_ENV,
    STEP_DEADLINE_ENV,
    BackendError,
    SerialBackend,
    SupervisorConfig,
)
from repro.runtime.backends.process import ProcessBackend
from repro.runtime.executor import spmd_run
from repro.runtime.ledger import CommLedger


# ----------------------------------------------------------------------
# module-level supersteps.  Faulty behaviour is gated on actually being
# in a pool worker, so the degraded (in-process) replay runs clean and,
# critically, never kills the pytest process itself.
# ----------------------------------------------------------------------


def _in_pool_worker():
    return multiprocessing.current_process().name.startswith("repro-spmd-")


def _bump(ctx):
    ctx.state["n"] = ctx.state.get("n", 0) + 1
    ctx.send((ctx.rank + 1) % ctx.size, ctx.state["n"], phase="p", items=1)


def _die_once_rank1(ctx):
    marker = ctx.shared["marker"]
    if ctx.rank == 1 and _in_pool_worker() and not os.path.exists(marker):
        open(marker, "w").close()
        os._exit(5)
    _bump(ctx)


def _hang_once_rank0(ctx):
    marker = ctx.shared["marker"]
    if ctx.rank == 0 and _in_pool_worker() and not os.path.exists(marker):
        open(marker, "w").close()
        time.sleep(30.0)
    _bump(ctx)


def _die_always_rank1(ctx):
    if ctx.rank == 1 and _in_pool_worker():
        os._exit(5)
    _bump(ctx)


def _report(ctx):
    got = sorted(p for _s, p in ctx.inbox())
    return (ctx.rank, ctx.state.get("n", 0), got)


def _run(backend, steps, shared=None, tracer=None):
    ledger = CommLedger()
    results = spmd_run(
        3, steps, ledger=ledger, backend=backend, tracer=tracer,
        shared=shared,
    )
    return results, ledger


def _counter_totals(tracer):
    totals = {}
    for _path, span in tracer.finish().walk():
        for name, value in span.counters.items():
            totals[name] = totals.get(name, 0) + value
    return totals


# ----------------------------------------------------------------------
# recovery paths
# ----------------------------------------------------------------------


STEPS = (_bump, _die_once_rank1, _report)


def _reference(steps):
    return _run(SerialBackend(), steps, shared={"marker": os.devnull})


class TestRespawn:
    def test_kill_mid_run_matches_serial(self, tmp_path):
        """Rank 1's worker dies once mid-step; the supervisor respawns
        it, replays history, retries, and the run is bit-identical."""
        ref_results, ref_ledger = _reference(STEPS)
        tracer = Tracer()
        backend = ProcessBackend(
            workers=2,
            supervisor=SupervisorConfig(
                max_retries=2, backoff_base_s=0.01
            ),
        )
        try:
            results, ledger = _run(
                backend, STEPS,
                shared={"marker": str(tmp_path / "died")},
                tracer=tracer,
            )
        finally:
            backend.close()
        assert results == ref_results
        assert ledger.phases == ref_ledger.phases
        assert ledger.sent_by_rank == ref_ledger.sent_by_rank
        counters = _counter_totals(tracer)
        assert counters.get("worker_deaths", 0) >= 1
        assert counters.get("worker_respawns", 0) >= 1
        assert counters.get("step_retries", 0) >= 1
        assert "ranks_degraded" not in counters

    def test_replay_preserves_earlier_state(self, tmp_path):
        """Per-rank state accumulated in steps *before* the crash
        survives the respawn (the recovery replays history)."""
        steps = (_bump, _bump, _die_once_rank1, _report)
        ref_results, _ = _reference(steps)
        backend = ProcessBackend(
            workers=2,
            supervisor=SupervisorConfig(
                max_retries=2, backoff_base_s=0.01
            ),
        )
        try:
            results, _ = _run(
                backend, steps, shared={"marker": str(tmp_path / "died")}
            )
        finally:
            backend.close()
        assert results == ref_results
        # state really did accumulate across the crash: n == 3
        assert all(n == 3 for _r, n, _g in results[-1])

    def test_hang_blows_deadline_and_recovers(self, tmp_path):
        """A hung rank trips the per-step deadline and is treated like
        a death: respawn, replay, retry — well before the hang ends."""
        ref_results, _ = _reference((_bump, _hang_once_rank0, _report))
        tracer = Tracer()
        backend = ProcessBackend(
            workers=2,
            supervisor=SupervisorConfig(
                step_deadline_s=0.5, max_retries=2, backoff_base_s=0.01
            ),
        )
        start = time.monotonic()
        try:
            results, _ = _run(
                backend, (_bump, _hang_once_rank0, _report),
                shared={"marker": str(tmp_path / "hung")},
                tracer=tracer,
            )
        finally:
            backend.close()
        assert results == ref_results
        assert time.monotonic() - start < 15.0  # not the 30 s hang
        counters = _counter_totals(tracer)
        assert counters.get("deadline_timeouts", 0) >= 1
        assert counters.get("worker_respawns", 0) >= 1


class TestDegrade:
    def test_persistent_failure_degrades_to_serial(self):
        """When retries are exhausted the session warns and finishes
        in-process — same results, ledger accounting preserved."""
        ref_results, ref_ledger = _reference((_bump, _die_always_rank1,
                                              _report))
        tracer = Tracer()
        backend = ProcessBackend(
            workers=2,
            supervisor=SupervisorConfig(
                max_retries=1, backoff_base_s=0.01, degrade=True
            ),
        )
        try:
            with pytest.warns(RuntimeWarning, match="degrades"):
                results, ledger = _run(
                    backend, (_bump, _die_always_rank1, _report),
                    tracer=tracer,
                )
        finally:
            backend.close()
        assert results == ref_results
        assert ledger.phases == ref_ledger.phases
        counters = _counter_totals(tracer)
        assert counters.get("ranks_degraded") == 3

    def test_degrade_disabled_raises(self):
        backend = ProcessBackend(
            workers=2,
            supervisor=SupervisorConfig(
                max_retries=0, backoff_base_s=0.01, degrade=False
            ),
        )
        try:
            with pytest.raises(BackendError, match="worker"):
                _run(backend, (_bump, _die_always_rank1, _report))
        finally:
            backend.close()


class TestHealthCheck:
    def test_detects_dead_worker(self):
        backend = ProcessBackend(workers=2)
        try:
            _run(backend, (_bump, _report))  # spin the pool up
            health = backend.health_check(timeout=2.0)
            assert health and all(health.values())
            backend._ensure_pool()[0].proc.terminate()
            time.sleep(0.2)
            health = backend.health_check(timeout=2.0)
            assert not all(health.values())
        finally:
            backend.close()

    def test_close_survives_dead_worker(self):
        backend = ProcessBackend(
            workers=2,
            supervisor=SupervisorConfig(shutdown_grace_s=1.0,
                                        kill_grace_s=0.5),
        )
        try:
            _run(backend, (_bump, _report))
            backend._ensure_pool()[0].proc.kill()
        finally:
            backend.close()  # must not hang or raise


class TestSupervisorConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            SupervisorConfig(max_retries=-1)
        with pytest.raises(ValueError):
            SupervisorConfig(step_deadline_s=0.0)
        with pytest.raises(ValueError):
            SupervisorConfig(backoff_factor=0.5)

    def test_from_env(self, monkeypatch):
        monkeypatch.setenv(STEP_DEADLINE_ENV, "2.5")
        monkeypatch.setenv(MAX_RETRIES_ENV, "4")
        cfg = SupervisorConfig.from_env()
        assert cfg.step_deadline_s == pytest.approx(2.5)
        assert cfg.max_retries == 4

    def test_from_env_deadline_disabled(self, monkeypatch):
        monkeypatch.setenv(STEP_DEADLINE_ENV, "0")
        assert SupervisorConfig.from_env().step_deadline_s is None

    def test_from_env_defaults(self, monkeypatch):
        monkeypatch.delenv(STEP_DEADLINE_ENV, raising=False)
        monkeypatch.delenv(MAX_RETRIES_ENV, raising=False)
        cfg = SupervisorConfig.from_env()
        assert cfg.step_deadline_s is None
        assert cfg.max_retries == 2
