"""Tests for communication accounting."""

import pytest

from repro.runtime.ledger import CommLedger


class TestCommLedger:
    def test_record_and_totals(self):
        led = CommLedger()
        led.record("fe", 0, 1, 10)
        led.record("fe", 1, 0, 5)
        led.record("contact", 0, 2, 3)
        assert led.items("fe") == 15
        assert led.messages("fe") == 2
        assert led.items("contact") == 3
        assert led.total_items() == 18

    def test_self_sends_not_counted(self):
        led = CommLedger()
        led.record("fe", 2, 2, 100)
        assert led.total_items() == 0
        assert led.messages("fe") == 0

    def test_unknown_phase_zero(self):
        led = CommLedger()
        assert led.items("nope") == 0
        assert led.messages("nope") == 0

    def test_per_rank_accounting_symmetric(self):
        led = CommLedger()
        led.record("x", 0, 1, 7)
        led.record("x", 1, 2, 3)
        sent = sum(led.sent_by_rank[("x", r)] for r in range(3))
        recv = sum(led.received_by_rank[("x", r)] for r in range(3))
        assert sent == recv == 10

    def test_max_rank_send(self):
        led = CommLedger()
        led.record("x", 0, 1, 7)
        led.record("x", 0, 2, 2)
        led.record("x", 1, 0, 4)
        assert led.max_rank_send("x", 3) == 9

    def test_max_rank_send_empty(self):
        assert CommLedger().max_rank_send("x", 4) == 0

    def test_negative_items_rejected(self):
        with pytest.raises(ValueError, match=">= 0"):
            CommLedger().record("x", 0, 1, -1)

    def test_summary(self):
        led = CommLedger()
        led.record("b", 0, 1, 2)
        led.record("a", 0, 1, 1)
        assert list(led.summary()) == ["a", "b"]
        assert led.summary()["b"] == (1, 2)
