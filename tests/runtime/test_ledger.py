"""Tests for communication accounting."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs import RunReport, Tracer
from repro.runtime.ledger import CommLedger


class TestCommLedger:
    def test_record_and_totals(self):
        led = CommLedger()
        led.record("fe", 0, 1, 10)
        led.record("fe", 1, 0, 5)
        led.record("contact", 0, 2, 3)
        assert led.items("fe") == 15
        assert led.messages("fe") == 2
        assert led.items("contact") == 3
        assert led.total_items() == 18

    def test_self_sends_not_counted(self):
        led = CommLedger()
        led.record("fe", 2, 2, 100)
        assert led.total_items() == 0
        assert led.messages("fe") == 0

    def test_unknown_phase_zero(self):
        led = CommLedger()
        assert led.items("nope") == 0
        assert led.messages("nope") == 0

    def test_per_rank_accounting_symmetric(self):
        led = CommLedger()
        led.record("x", 0, 1, 7)
        led.record("x", 1, 2, 3)
        sent = sum(led.sent_by_rank[("x", r)] for r in range(3))
        recv = sum(led.received_by_rank[("x", r)] for r in range(3))
        assert sent == recv == 10

    def test_max_rank_send(self):
        led = CommLedger()
        led.record("x", 0, 1, 7)
        led.record("x", 0, 2, 2)
        led.record("x", 1, 0, 4)
        assert led.max_rank_send("x", 3) == 9

    def test_max_rank_send_empty(self):
        assert CommLedger().max_rank_send("x", 4) == 0

    def test_negative_items_rejected(self):
        with pytest.raises(ValueError, match=">= 0"):
            CommLedger().record("x", 0, 1, -1)

    def test_summary(self):
        led = CommLedger()
        led.record("b", 0, 1, 2)
        led.record("a", 0, 1, 1)
        assert list(led.summary()) == ["a", "b"]
        assert led.summary()["b"] == (1, 2)


_MESSAGES = st.lists(
    st.tuples(
        st.sampled_from(["fe", "contact", "repartition"]),  # phase
        st.integers(0, 5),  # src
        st.integers(0, 5),  # dst
        st.integers(0, 40),  # items
    ),
    max_size=50,
)


@given(messages=_MESSAGES)
@settings(max_examples=50, deadline=None)
def test_property_per_rank_symmetry(messages):
    """For any record trace and every phase: total sent by all ranks ==
    total received == the phase's item total (self-sends vanish)."""
    led = CommLedger()
    expected = {}
    for phase, src, dst, items in messages:
        led.record(phase, src, dst, items)
        if src != dst:
            expected[phase] = expected.get(phase, 0) + items
    for phase in {m[0] for m in messages}:
        sent = sum(led.sent_by_rank[(phase, r)] for r in range(6))
        recv = sum(led.received_by_rank[(phase, r)] for r in range(6))
        assert sent == recv == led.items(phase) == expected.get(phase, 0)


@given(messages=_MESSAGES)
@settings(max_examples=50, deadline=None)
def test_property_run_report_totals_match_ledger(messages):
    """A RunReport built from any ledger reproduces its phase sums."""
    led = CommLedger()
    for phase, src, dst, items in messages:
        led.record(phase, src, dst, items)
    tracer = Tracer()
    with tracer.span("step"):
        pass
    report = RunReport.from_run(tracer, led)
    assert report.comm == led.summary()
    assert report.comm_total_items() == led.total_items()
    for phase, (msgs, items) in led.summary().items():
        assert report.comm_items(phase) == items == led.items(phase)
        assert msgs == led.messages(phase)
