"""Property tests for the runtime protocols' conservation invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.runtime.comm import SimComm
from repro.runtime.executor import spmd_run
from repro.runtime.ledger import CommLedger


@given(
    st.lists(
        st.tuples(
            st.integers(0, 5),  # src
            st.integers(0, 5),  # dst
            st.integers(0, 50),  # items
        ),
        max_size=60,
    )
)
@settings(max_examples=60, deadline=None)
def test_property_ledger_conservation(messages):
    """For any message trace: per-phase, total sent == total received ==
    phase items, and self-sends vanish."""
    led = CommLedger()
    comm = SimComm(6, led)
    expected = 0
    for src, dst, items in messages:
        comm.send(src, dst, None, phase="p", items=items)
        if src != dst:
            expected += items
    comm.barrier()
    sent = sum(led.sent_by_rank[("p", r)] for r in range(6))
    recv = sum(led.received_by_rank[("p", r)] for r in range(6))
    assert sent == recv == led.items("p") == expected


@given(
    st.integers(2, 6),
    st.lists(st.integers(0, 30), min_size=2, max_size=6),
)
@settings(max_examples=40, deadline=None)
def test_property_inbox_delivers_everything_once(size, payloads):
    """Every queued message is delivered exactly once, to the right
    rank, after exactly one barrier."""
    comm = SimComm(size)
    sent = []
    for i, p in enumerate(payloads):
        src = i % size
        dst = (i + 1) % size
        comm.send(src, dst, ("msg", i, p), phase="x", items=1)
        if src != dst:
            sent.append((dst, ("msg", i, p)))
    comm.barrier()
    received = []
    for r in range(size):
        for src, payload in comm.inbox(r):
            received.append((r, payload))
        assert comm.inbox(r) == []  # consumed
    assert sorted(received) == sorted(sent)


def test_supersteps_are_strictly_ordered():
    """No rank observes a later superstep's sends early.

    The cross-rank execution trace needs a shared list, so this test
    pins the serial backend (where the capture is well-defined) and
    carries argued SPMD001 suppressions.
    """
    trace = []

    def first(ctx):
        trace.append(("first", ctx.rank))  # repro-lint: disable=SPMD001
        ctx.send((ctx.rank + 1) % ctx.size, "a", "p", 1)

    def second(ctx):
        trace.append(("second", ctx.rank))  # repro-lint: disable=SPMD001
        assert len(ctx.inbox()) == 1

    spmd_run(3, [first, second], backend="serial")
    names = [t[0] for t in trace]
    assert names == ["first"] * 3 + ["second"] * 3
