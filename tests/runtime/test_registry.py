"""Tests for the backend registry and :class:`BackendSpec` parsing.

The registry replaced the hardcoded if/elif backend chain: every
textual selection (``--backend``, ``$REPRO_BACKEND``, service
requests) parses into a frozen :class:`BackendSpec` and resolves
through :func:`build_backend`.  These tests pin the three spec text
forms, the option schema validation, registration semantics, the
deprecation shim, and the env-cache invalidation rules.
"""

import os

import pytest

from repro.runtime.backends import (
    BACKEND_NAMES,
    Backend,
    BackendSpec,
    backend_names,
    build_backend,
    make_backend,
    register_backend,
    resolve_backend,
    unregister_backend,
)
from repro.runtime.backends.base import _backend_from_env
from repro.runtime.backends.serial import SerialBackend


class TestBackendSpecParse:
    def test_bare_name(self):
        spec = BackendSpec.parse("serial")
        assert spec.scheme == "serial"
        assert spec.workers is None
        assert spec.host is None and spec.port is None
        assert spec.options == ()

    def test_name_with_workers(self):
        spec = BackendSpec.parse("process:4")
        assert (spec.scheme, spec.workers) == ("process", 4)

    def test_uri_with_query(self):
        spec = BackendSpec.parse(
            "tcp://10.0.0.5:9000?workers=4&deadline=30"
        )
        assert spec.scheme == "tcp"
        assert spec.host == "10.0.0.5"
        assert spec.port == 9000
        assert spec.workers == 4
        assert spec.options_map == {"deadline": "30"}

    def test_uri_three_segment_authority(self):
        spec = BackendSpec.parse("tcp://127.0.0.1:0:2")
        assert spec.host == "127.0.0.1"
        assert spec.port == 0
        assert spec.workers == 2

    def test_case_and_whitespace_normalised(self):
        assert BackendSpec.parse("  SERIAL ").scheme == "serial"
        assert BackendSpec.parse("TCP://h:1").scheme == "tcp"

    @pytest.mark.parametrize(
        "bad",
        [
            "",
            "process:0",
            "process:many",
            "tcp://h:port",
            "tcp://h:1:2:3",
            "tcp://h:1/path",
            "tcp://h:99999",
        ],
    )
    def test_rejects_malformed(self, bad):
        with pytest.raises(ValueError):
            BackendSpec.parse(bad)

    @pytest.mark.parametrize(
        "text",
        [
            "serial",
            "process:4",
            "tcp://127.0.0.1:9000?deadline=30&workers=2",
            "tcp://127.0.0.1:0:2",
        ],
    )
    def test_to_text_round_trips(self, text):
        spec = BackendSpec.parse(text)
        assert BackendSpec.parse(spec.to_text()) == spec

    def test_specs_are_hashable_cache_keys(self):
        a = BackendSpec.parse("tcp://h:1?deadline=30")
        b = BackendSpec.parse("tcp://h:1?deadline=30")
        c = BackendSpec.parse("tcp://h:1?deadline=60")
        assert a == b and hash(a) == hash(b)
        assert a != c

    def test_typed_options_converts_and_rejects_unknown(self):
        spec = BackendSpec.parse("tcp://h:1?deadline=30&retries=2")
        opts = spec.typed_options({"deadline": float, "retries": int})
        assert opts == {"deadline": 30.0, "retries": 2}
        with pytest.raises(ValueError, match="does not accept option"):
            spec.typed_options({"deadline": float})
        bad = BackendSpec.parse("tcp://h:1?deadline=soon")
        with pytest.raises(ValueError, match="invalid value"):
            bad.typed_options({"deadline": float})


class _DummyBackend(Backend):
    name = "dummy"

    def __init__(self, spec):
        self.spec = spec

    def open_session(self, size, ledger, tracer=None, shared=None):
        raise NotImplementedError


def _dummy_factory(spec):
    return _DummyBackend(spec)


class TestRegistry:
    def test_builtins_registered(self):
        names = backend_names()
        for name in ("serial", "thread", "process", "sentinel",
                     "chaos", "tcp"):
            assert name in names

    def test_backend_names_is_live_view(self):
        assert "dummy" not in BACKEND_NAMES
        register_backend("dummy", _dummy_factory)
        try:
            assert "dummy" in BACKEND_NAMES
            assert "dummy" in list(BACKEND_NAMES)
        finally:
            assert unregister_backend("dummy")
        assert "dummy" not in BACKEND_NAMES

    def test_register_build_unregister(self):
        register_backend("dummy", _dummy_factory)
        try:
            backend = build_backend("dummy:3")
            assert isinstance(backend, _DummyBackend)
            assert backend.spec.workers == 3
        finally:
            unregister_backend("dummy")
        with pytest.raises(ValueError, match="unknown backend 'dummy'"):
            build_backend("dummy")

    def test_duplicate_registration_needs_overwrite(self):
        register_backend("dummy", _dummy_factory)
        try:
            with pytest.raises(ValueError, match="already registered"):
                register_backend("dummy", _dummy_factory)
            register_backend("dummy", _dummy_factory, overwrite=True)
        finally:
            unregister_backend("dummy")

    @pytest.mark.parametrize("bad", ["", "with space", "a:b", "x?y"])
    def test_invalid_names_rejected(self, bad):
        with pytest.raises(ValueError, match="invalid backend name"):
            register_backend(bad, _dummy_factory)

    def test_lazy_string_factory_imports_on_first_use(self):
        register_backend(
            "dummy", f"{__name__}:_dummy_factory"
        )
        try:
            backend = build_backend("dummy")
            assert isinstance(backend, _DummyBackend)
        finally:
            unregister_backend("dummy")

    def test_options_validated_against_schema(self):
        with pytest.raises(ValueError, match="does not accept option"):
            build_backend("serial://?bogus=1")

    def test_embedded_workers_beat_argument(self):
        register_backend("dummy", _dummy_factory)
        try:
            assert build_backend("dummy:5", workers=2).spec.workers == 5
            assert build_backend("dummy", workers=2).spec.workers == 2
        finally:
            unregister_backend("dummy")

    def test_backend_instance_passes_through(self):
        backend = SerialBackend()
        assert build_backend(backend) is backend
        assert resolve_backend(backend) is backend

    def test_make_backend_shim_warns_and_still_works(self):
        with pytest.warns(DeprecationWarning, match="build_backend"):
            backend = make_backend("serial")
        assert isinstance(backend, SerialBackend)


class TestEnvResolution:
    @pytest.fixture(autouse=True)
    def _isolate_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_BACKEND", raising=False)
        yield
        # drop any instance memoised during the test
        monkeypatch.delenv("REPRO_BACKEND", raising=False)
        _backend_from_env()

    def test_env_selects_backend(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "serial")
        assert isinstance(resolve_backend(), SerialBackend)

    def test_env_cache_reuses_instance(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "serial")
        assert _backend_from_env() is _backend_from_env()

    def test_env_cache_invalidates_on_spec_change(self, monkeypatch):
        register_backend("dummy", _dummy_factory)
        try:
            monkeypatch.setenv("REPRO_BACKEND", "dummy://h:1?x=1")
            register_backend(
                "dummy", _dummy_factory, overwrite=True,
                spec_schema={"x": int},
            )
            first = _backend_from_env()
            # same text -> same memoised instance
            assert _backend_from_env() is first
            # an option change is visible in the parsed spec -> rebuild
            monkeypatch.setenv("REPRO_BACKEND", "dummy://h:1?x=2")
            second = _backend_from_env()
            assert second is not first
            assert second.spec.option("x") == "2"
        finally:
            unregister_backend("dummy")

    def test_env_cache_invalidates_on_reregistration(self, monkeypatch):
        register_backend("dummy", _dummy_factory)
        try:
            monkeypatch.setenv("REPRO_BACKEND", "dummy")
            first = _backend_from_env()
            register_backend("dummy", _dummy_factory, overwrite=True)
            assert _backend_from_env() is not first
        finally:
            unregister_backend("dummy")

    def test_explicit_spec_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "thread")
        assert isinstance(resolve_backend("serial"), SerialBackend)
