"""Dynamic validation of the SPMD001 findings via the race sentinel.

Every statically seeded SPMD001 violation in
``tests/analysis/spmd_fixtures/rank_race.py`` must reproduce a
:class:`SharedStateMutationError` when executed on the sentinel
backend, and every clean site must pass — static findings match
dynamic reality.
"""

import numpy as np
import pytest

from repro.runtime.backends import (
    BACKEND_NAMES,
    SentinelBackend,
    SharedStateMutationError,
    make_backend,
)
from repro.runtime.backends.sentinel import _fingerprint, _function_roots
from repro.runtime.backends.thread import ThreadSession
from repro.runtime.backends.sentinel import SentinelSession

from tests.analysis.spmd_fixtures import rank_race


@pytest.fixture()
def sentinel():
    backend = SentinelBackend(workers=2)
    yield backend
    backend.close()


class TestFindingsReproduce:
    """Each fixture SPMD001 seed must trip the sentinel."""

    @pytest.mark.parametrize(
        "entry, expected_path",
        [
            ("run_append_global", "global.TOTALS"),
            ("run_store_global", "global.CACHE"),
            ("run_write_shared", "shared['acc']"),
            ("run_closure_append", "closure.acc"),
        ],
    )
    def test_violation_raises_with_path(self, sentinel, entry, expected_path):
        with pytest.raises(SharedStateMutationError) as err:
            getattr(rank_race, entry)(backend=sentinel)
        assert expected_path in err.value.path
        assert err.value.step  # names the offending superstep
        assert "SPMD001" in str(err.value)

    def test_clean_superstep_passes(self, sentinel):
        assert rank_race.run_clean(backend=sentinel) == [[0, 1]]


class TestBackendPlumbing:
    def test_registered_in_backend_names(self):
        assert "sentinel" in BACKEND_NAMES

    def test_make_backend_spec(self):
        be = make_backend("sentinel:3")
        assert isinstance(be, SentinelBackend)
        assert be.workers == 3 and be.enabled
        be.close()

    def test_disabled_hands_out_plain_thread_sessions(self):
        be = SentinelBackend(workers=2, enabled=False)
        session = be.open_session(2)
        try:
            assert isinstance(session, ThreadSession)
            assert not isinstance(session, SentinelSession)
        finally:
            session.close()
            be.close()

    def test_enabled_session_type(self, sentinel):
        session = sentinel.open_session(2)
        try:
            assert isinstance(session, SentinelSession)
        finally:
            session.close()


class TestFingerprint:
    def test_array_mutation_detected(self):
        a = np.zeros(4, dtype=np.int64)
        before = {}
        _fingerprint(a, before, "x", 0)
        a[1] = 7
        after = {}
        _fingerprint(a, after, "x", 0)
        assert before != after

    def test_nested_container_paths(self):
        out = {}
        _fingerprint({"k": [1, {2}]}, out, "root", 0)
        assert "root['k'][0]" in out and "root['k'][1]" in out

    def test_unknown_objects_skipped(self):
        import threading

        out = {}
        _fingerprint(threading.Lock(), out, "lock", 0)
        assert out == {}

    def test_closure_and_global_roots(self):
        acc = []

        def step(ctx):
            acc.append(ctx)
            return np

        paths = [p for p, _ in _function_roots(step)]
        assert "closure.acc" in paths
