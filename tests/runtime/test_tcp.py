"""Tests for the distributed tcp backend (coordinator + agents).

The contract under test mirrors the other backends: a run on a fleet
of socket-connected agent processes — including runs where agents are
killed, hang past the deadline, or join mid-run — must produce
results, ledgers, and merge order bit-identical to
:class:`SerialBackend`.  On top of that the suite pins the
``repro.wire/1`` handshake (version/schema rejection), elastic
membership accounting, the external ``repro-agent`` entry point, and
the local fallback for unpicklable supersteps.
"""

import os
import socket
import struct
import subprocess
import sys
import time

import pytest

from repro.obs.report import RunReport
from repro.obs.tracer import Tracer
from repro.runtime.backends import SerialBackend, build_backend
from repro.runtime.backends.process import SupervisorConfig
from repro.runtime.backends.tcp import (
    AGENT_NAME_PREFIX,
    TCPBackend,
)
from repro.runtime.backends.wire import (
    WIRE_MAGIC,
    WIRE_SCHEMA,
    WIRE_VERSION,
    read_stream,
    write_stream,
)
from repro.runtime.executor import spmd_run
from repro.runtime.faults import ChaosBackend
from repro.runtime.ledger import CommLedger

ACCEPT_TIMEOUT = 30.0  # generous: CI machines can be slow to fork


# ----------------------------------------------------------------------
# module-level supersteps (picklable, importable on the agents via the
# coordinator's propagated sys.path)
# ----------------------------------------------------------------------


def _seed_state(ctx):
    ctx.state["acc"] = ctx.rank + 1
    ctx.send((ctx.rank + 1) % ctx.size, ctx.rank, phase="ring", items=1)


def _fold_inbox(ctx):
    for _src, payload in ctx.inbox():
        ctx.state["acc"] += payload * 10
    ctx.send((ctx.rank + 2) % ctx.size, ctx.state["acc"], phase="ring",
             items=1)


def _collect(ctx):
    extras = sorted(p for _s, p in ctx.inbox())
    return (ctx.rank, ctx.state["acc"], extras)


PIPELINE = (_seed_state, _fold_inbox, _collect)


def _run_pipeline(backend, tracer=None, size=3):
    ledger = CommLedger()
    results = spmd_run(
        size, PIPELINE, ledger=ledger, backend=backend, tracer=tracer
    )
    return results, ledger


def _serial_baseline(size=3):
    return _run_pipeline(SerialBackend(), size=size)


def _tcp_backend(workers=2, **kwargs):
    kwargs.setdefault("accept_timeout", ACCEPT_TIMEOUT)
    return TCPBackend(workers=workers, **kwargs)


# ----------------------------------------------------------------------
# plain runs: bit-identity with the serial backend
# ----------------------------------------------------------------------


class TestDistributedRuns:
    def test_bit_identical_to_serial(self):
        expected, expected_ledger = _serial_baseline()
        backend = _tcp_backend(workers=2)
        try:
            results, ledger = _run_pipeline(backend)
            assert results == expected
            assert ledger.summary() == expected_ledger.summary()
            assert ledger.max_rank_send("ring", 3) == (
                expected_ledger.max_rank_send("ring", 3)
            )
            # real traffic crossed the sockets, both directions
            assert backend.bytes_sent > 0
            assert backend.bytes_recv > 0
        finally:
            backend.close()

    def test_more_ranks_than_workers_multiplexes(self):
        expected, expected_ledger = _serial_baseline(size=5)
        backend = _tcp_backend(workers=2)
        try:
            results, ledger = _run_pipeline(backend, size=5)
            assert results == expected
            assert ledger.summary() == expected_ledger.summary()
        finally:
            backend.close()

    def test_health_check_heartbeats_the_fleet(self):
        backend = _tcp_backend(workers=2)
        try:
            _run_pipeline(backend)  # brings the fleet up
            health = backend.health_check()
            assert len(health) == 2
            assert all(health.values())
            assert all(
                name.startswith(AGENT_NAME_PREFIX) for name in health
            )
        finally:
            backend.close()

    def test_traffic_counters_reach_the_report(self):
        tracer = Tracer()
        ledger = CommLedger()
        backend = _tcp_backend(workers=2)
        try:
            spmd_run(3, PIPELINE, ledger=ledger, backend=backend,
                     tracer=tracer)
        finally:
            backend.close()
        report = RunReport.from_run(tracer, ledger)
        totals = report.distributed_totals()
        assert totals["bytes_sent"] > 0
        assert totals["bytes_recv"] > 0
        assert "Distributed" in report.render()

    def test_spec_uri_configures_supervision(self):
        backend = build_backend(
            "tcp://127.0.0.1:0?workers=2&deadline=0&retries=1"
            "&accept_timeout=30"
        )
        try:
            assert isinstance(backend, TCPBackend)
            assert backend.workers == 2
            assert backend.supervisor.step_deadline_s is None  # <=0
            assert backend.supervisor.max_retries == 1
            assert backend.accept_timeout == 30.0
        finally:
            backend.close()


# ----------------------------------------------------------------------
# handshake: version / schema enforcement on the raw socket
# ----------------------------------------------------------------------


def _recv_exact(sock, n):
    data = b""
    while len(data) < n:
        chunk = sock.recv(n - len(data))
        if not chunk:
            raise EOFError("peer closed during read")
        data += chunk
    return data


def _dial_with_hello(backend, payload, *, version=WIRE_VERSION):
    """Open a raw socket to the coordinator, send ``payload`` framed as
    a ``version`` wire message, and return the coordinator's reply."""
    host, port = backend.address
    sock = socket.create_connection((host, port), timeout=10.0)
    try:
        chunks = []
        write_stream(chunks.append, payload)
        blob = bytearray(b"".join(bytes(c) for c in chunks))
        blob[4:6] = struct.pack("<H", version)
        sock.sendall(blob)
        reply, _n = read_stream(lambda n: _recv_exact(sock, n))
        return reply
    finally:
        sock.close()


class TestHandshake:
    @pytest.fixture()
    def listening_backend(self):
        # external spawn: the coordinator listens but starts no agents
        backend = TCPBackend(
            workers=1, spawn="external", accept_timeout=1.0
        )
        backend.address  # bind + start accepting
        yield backend
        backend.close()

    def test_version_mismatch_rejected(self, listening_backend):
        hello = ("hello", {"schema": WIRE_SCHEMA, "name": "x", "pid": 1})
        reply = _dial_with_hello(
            listening_backend, hello, version=WIRE_VERSION + 7
        )
        assert reply[0] == "reject"
        assert "version" in reply[1]
        assert listening_backend._member_count() == 0

    def test_schema_mismatch_rejected(self, listening_backend):
        hello = ("hello", {"schema": "repro.wire/999", "name": "x"})
        reply = _dial_with_hello(listening_backend, hello)
        assert reply[0] == "reject"
        assert "schema mismatch" in reply[1]
        assert listening_backend._member_count() == 0

    def test_malformed_hello_rejected(self, listening_backend):
        reply = _dial_with_hello(listening_backend, ("greetings", 42))
        assert reply[0] == "reject"
        assert "malformed hello" in reply[1]
        assert listening_backend._member_count() == 0

    def test_bad_magic_drops_connection(self, listening_backend):
        host, port = listening_backend.address
        sock = socket.create_connection((host, port), timeout=10.0)
        try:
            sock.sendall(b"GET / HTTP/1.1\r\n\r\n" + b"\x00" * 16)
            sock.settimeout(10.0)
            assert sock.recv(1024) == b""  # closed, no reply
        finally:
            sock.close()
        assert listening_backend._member_count() == 0

    def test_good_hello_is_welcomed(self, listening_backend):
        hello = ("hello", {"schema": WIRE_SCHEMA, "name": "probe",
                           "pid": os.getpid()})
        reply = _dial_with_hello(listening_backend, hello)
        assert reply[0] == "welcome"
        assert reply[1]["schema"] == WIRE_SCHEMA
        assert isinstance(reply[1]["sys_path"], list)
        # dropping the connection right after the handshake must not
        # wedge the coordinator (the dead member is culled on use)
        assert WIRE_MAGIC == b"RPW\x01"


# ----------------------------------------------------------------------
# fault tolerance over sockets
# ----------------------------------------------------------------------


class TestRecovery:
    def test_killed_agent_respawned_bit_identical(self):
        expected, expected_ledger = _serial_baseline()
        inner = _tcp_backend(workers=2)
        chaos = ChaosBackend(plan="kill@1.1", inner=inner, workers=2)
        tracer = Tracer()
        try:
            results, ledger = _run_pipeline(chaos, tracer=tracer)
            assert results == expected
            assert ledger.summary() == expected_ledger.summary()
            assert inner.reconnects >= 1
        finally:
            chaos.close()
        report = RunReport.from_run(tracer, ledger)
        recovery = report.recovery_totals()
        assert recovery["worker_deaths"] >= 1
        assert recovery["step_retries"] >= 1
        assert report.distributed_totals()["reconnects"] >= 1

    def test_hung_agent_hits_deadline_and_recovers(self):
        expected, _ = _serial_baseline()
        inner = _tcp_backend(
            workers=2,
            supervisor=SupervisorConfig(
                step_deadline_s=1.5, heartbeat_timeout_s=2.0
            ),
        )
        chaos = ChaosBackend(plan="hang@1.0:60", inner=inner, workers=2)
        tracer = Tracer()
        try:
            results, _ledger = _run_pipeline(chaos, tracer=tracer)
            assert results == expected
            assert inner.reconnects >= 1
        finally:
            chaos.close()
        report = RunReport.from_run(tracer, CommLedger())
        assert report.recovery_totals()["deadline_timeouts"] >= 1


# ----------------------------------------------------------------------
# elastic membership
# ----------------------------------------------------------------------


def _wait_for_pending_join(backend):
    """Block until an agent that dialed in after session open shows up
    in the coordinator's pending list."""
    deadline = time.monotonic() + ACCEPT_TIMEOUT
    while time.monotonic() < deadline:
        with backend._lock:
            if backend._pending:
                return
        time.sleep(0.01)
    pytest.fail("joining agent never connected")


class TestElasticMembership:
    def test_mid_run_join_adopted_and_backfilled(self):
        expected, expected_ledger = _serial_baseline(size=4)
        backend = _tcp_backend(workers=1)
        tracer = Tracer()
        ledger = CommLedger()
        results = []
        try:
            with backend.open_session(
                4, ledger=ledger, tracer=tracer
            ) as session:
                from functools import partial

                from repro.runtime.backends.base import call_without_arg

                results.append(
                    session.step(partial(call_without_arg, _seed_state))
                )
                # a second agent dials in mid-run ...
                backend._spawn_agent()
                _wait_for_pending_join(backend)
                # ... and is adopted at the next superstep boundary
                for fn in PIPELINE[1:]:
                    results.append(
                        session.step(partial(call_without_arg, fn))
                    )
                assert len(backend._roster_snapshot()) == 2
        finally:
            backend.close()
        assert results == expected
        assert ledger.summary() == expected_ledger.summary()
        report = RunReport.from_run(tracer, ledger)
        totals = report.distributed_totals()
        assert totals["agents_joined"] >= 1
        assert totals["ranks_migrated"] >= 1
        assert "Distributed" in report.render()


# ----------------------------------------------------------------------
# external agents (the `repro-agent` entry point)
# ----------------------------------------------------------------------

_AGENT_CMD = (
    "import sys; from repro.runtime.backends.tcp import agent_main; "
    "sys.exit(agent_main(sys.argv[1:]))"
)


def _agent_env():
    import repro

    src = os.path.dirname(os.path.dirname(os.path.abspath(
        repro.__file__
    )))
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [src] + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
    )
    return env


class TestExternalAgents:
    def test_manually_started_agent_serves_a_run(self):
        expected, _ = _serial_baseline(size=2)
        backend = TCPBackend(
            workers=1, spawn="external", accept_timeout=ACCEPT_TIMEOUT
        )
        host, port = backend.address
        proc = subprocess.Popen(
            [sys.executable, "-c", _AGENT_CMD,
             "--connect", f"{host}:{port}", "--name", "ext-agent-0"],
            env=_agent_env(),
        )
        try:
            results, _ledger = _run_pipeline(backend, size=2)
            assert results == expected
            assert "ext-agent-0" in backend.health_check()
        finally:
            backend.close()
            try:
                assert proc.wait(timeout=15) == 0  # orderly shutdown
            finally:
                if proc.poll() is None:
                    proc.kill()
                    proc.wait(timeout=5)

    def test_agent_main_rejects_bad_connect_argument(self):
        from repro.runtime.backends.tcp import agent_main

        with pytest.raises(SystemExit):
            agent_main(["--connect", "no-port-here"])

    def test_agent_main_reports_unreachable_coordinator(self):
        from repro.runtime.backends.tcp import agent_main

        # a bound-but-unaccepting port refuses quickly on loopback
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        rc = agent_main(
            ["--connect", f"127.0.0.1:{port}", "--retries", "0"]
        )
        assert rc == 1


# ----------------------------------------------------------------------
# local fallback
# ----------------------------------------------------------------------


class TestLocalFallback:
    def test_unpicklable_superstep_falls_back_with_warning(self):
        backend = _tcp_backend(workers=2)
        secret = 7

        def closure_step(ctx):
            return ctx.rank * secret  # closure: not picklable by ref

        try:
            ledger = CommLedger()
            with backend.open_session(3, ledger=ledger) as session:
                from functools import partial

                from repro.runtime.backends.base import call_without_arg

                with pytest.warns(RuntimeWarning, match="not picklable"):
                    values = session.step(
                        partial(call_without_arg, closure_step)
                    )
            assert values == [0, 7, 14]
        finally:
            backend.close()
