"""Tests for the simulated communicator."""

import pytest

from repro.runtime.comm import RankContext, SimComm
from repro.runtime.ledger import CommLedger


class TestSimComm:
    def test_messages_delivered_after_barrier(self):
        comm = SimComm(3)
        comm.send(0, 2, "hello", phase="p", items=1)
        assert comm.inbox(2) == []  # nothing before the barrier
        comm.barrier()
        assert comm.inbox(2) == [(0, "hello")]

    def test_inbox_consumed_on_read(self):
        comm = SimComm(2)
        comm.send(0, 1, "x", phase="p", items=1)
        comm.barrier()
        assert comm.inbox(1) == [(0, "x")]
        assert comm.inbox(1) == []

    def test_ledger_records(self):
        led = CommLedger()
        comm = SimComm(2, led)
        comm.send(0, 1, [1, 2, 3], phase="contact", items=3)
        assert led.items("contact") == 3

    def test_rank_bounds_checked(self):
        comm = SimComm(2)
        with pytest.raises(ValueError, match="rank"):
            comm.send(0, 5, "x", phase="p", items=1)
        with pytest.raises(ValueError, match="rank"):
            comm.inbox(9)

    def test_size_validated(self):
        with pytest.raises(ValueError, match="size"):
            SimComm(0)

    def test_alltoallv(self):
        led = CommLedger()
        comm = SimComm(3, led)
        comm.alltoallv(
            {0: {1: [1, 2], 2: [3]}, 1: {0: [4, 5, 6]}}, phase="a2a"
        )
        comm.barrier()
        assert comm.inbox(1) == [(0, [1, 2])]
        assert led.items("a2a") == 6
        assert led.messages("a2a") == 3


class TestRankContext:
    def test_context_routes_through_comm(self):
        comm = SimComm(2)
        ctx0 = RankContext(rank=0, comm=comm)
        ctx1 = RankContext(rank=1, comm=comm)
        ctx0.send(1, "payload", phase="p", items=1)
        comm.barrier()
        assert ctx1.inbox() == [(0, "payload")]
        assert ctx0.size == 2
