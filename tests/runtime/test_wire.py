"""Tests for the ``repro.wire/1`` framed message protocol.

The wire layer carries every byte the distributed tcp backend moves
and (via the pipe transport) every process-backend worker message, so
the codec must round-trip arbitrary Python payloads exactly, hoist
NumPy arrays out-of-band, and reject mismatched or malformed peers
*before* trusting a payload byte.
"""

import io
import struct

import numpy as np
import pytest

from repro.runtime.backends import wire
from repro.runtime.backends.wire import (
    WIRE_MAGIC,
    WIRE_VERSION,
    WireError,
    WireVersionError,
    from_frames,
    peek_version,
    pipe_recv,
    pipe_send,
    read_stream,
    to_frames,
    write_stream,
)


def _roundtrip_stream(obj):
    buf = io.BytesIO()
    sent = write_stream(buf.write, obj)
    buf.seek(0)
    got, received = read_stream(buf.read)
    assert sent == received == len(buf.getvalue())
    return got


PAYLOADS = [
    None,
    42,
    "text",
    {"k": [1, 2, 3], "t": ("a", 0.5)},
    np.arange(12, dtype=np.float64),
    np.arange(12, dtype=np.int32).reshape(3, 4),
    np.zeros((0, 3), dtype=np.float64),  # zero-size array
    {"a": np.ones(5, dtype=np.float32), "b": [np.arange(3)]},
]


class TestFrameCodec:
    @pytest.mark.parametrize("obj", PAYLOADS, ids=type)
    def test_roundtrip(self, obj):
        got = from_frames(to_frames(obj))
        if isinstance(obj, np.ndarray):
            np.testing.assert_array_equal(got, obj)
            assert got.dtype == obj.dtype
        else:
            cmp = repr(got) == repr(obj)
            assert cmp

    def test_arrays_travel_out_of_band(self):
        arr = np.arange(1000, dtype=np.float64)
        frames = to_frames({"a": arr})
        # header pickle + one raw frame holding the array bytes
        assert len(frames) == 2
        assert len(frames[1]) == arr.nbytes
        assert len(frames[0]) < arr.nbytes  # bytes not in the pickle

    def test_fortran_order_preserved(self):
        arr = np.asfortranarray(
            np.arange(12, dtype=np.float64).reshape(3, 4)
        )
        got = from_frames(to_frames(arr))
        np.testing.assert_array_equal(got, arr)

    def test_empty_message_rejected(self):
        with pytest.raises(WireError, match="empty wire message"):
            from_frames([])


class TestStreamTransport:
    def test_roundtrip_and_byte_count(self):
        payload = {"x": np.arange(7, dtype=np.int64), "y": "ok"}
        got = _roundtrip_stream(payload)
        np.testing.assert_array_equal(got["x"], payload["x"])
        assert got["y"] == "ok"

    def test_bad_magic_rejected_before_payload(self):
        head = struct.pack("<4sHI", b"XXXX", WIRE_VERSION, 1)
        buf = io.BytesIO(head + b"\x00" * 64)
        with pytest.raises(WireError, match="bad wire magic"):
            read_stream(buf.read)

    def test_version_mismatch_rejected_before_payload(self):
        head = struct.pack("<4sHI", WIRE_MAGIC, WIRE_VERSION + 7, 1)
        buf = io.BytesIO(head + b"\x00" * 64)
        with pytest.raises(WireVersionError) as err:
            read_stream(buf.read)
        assert err.value.theirs == WIRE_VERSION + 7
        assert err.value.ours == WIRE_VERSION

    def test_unreasonable_frame_count_rejected(self):
        head = struct.pack(
            "<4sHI", WIRE_MAGIC, WIRE_VERSION, wire.MAX_FRAMES + 1
        )
        with pytest.raises(WireError, match="frame count"):
            read_stream(io.BytesIO(head).read)

    def test_peek_version(self):
        buf = io.BytesIO()
        write_stream(buf.write, "hi")
        assert peek_version(buf.getvalue()) == WIRE_VERSION
        with pytest.raises(WireError, match="short wire header"):
            peek_version(b"RP")


class _FakePipe:
    """Duck-typed multiprocessing connection backed by a list."""

    def __init__(self):
        self.chunks = []
        self._cursor = 0

    def send_bytes(self, blob):
        self.chunks.append(bytes(blob))

    def recv_bytes(self):
        chunk = self.chunks[self._cursor]
        self._cursor += 1
        return chunk


class TestPipeTransport:
    def test_roundtrip(self):
        pipe = _FakePipe()
        payload = {"arr": np.arange(9, dtype=np.float64), "n": 3}
        sent = pipe_send(pipe, payload)
        got, received = pipe_recv(pipe)
        assert sent == received
        np.testing.assert_array_equal(got["arr"], payload["arr"])
        assert got["n"] == 3

    def test_chunking_bounds_writes(self):
        pipe = _FakePipe()
        arr = np.arange(256, dtype=np.uint8)
        pipe_send(pipe, arr, chunk_bytes=64)
        # every chunk after the header respects the bound
        assert all(len(c) <= 64 for c in pipe.chunks[1:])
        got, _n = pipe_recv(pipe)
        np.testing.assert_array_equal(got, arr)

    def test_zero_size_array_keeps_stream_in_sync(self):
        pipe = _FakePipe()
        pipe_send(pipe, np.zeros(0, dtype=np.float64))
        pipe_send(pipe, "next message")
        first, _ = pipe_recv(pipe)
        second, _ = pipe_recv(pipe)
        assert first.size == 0
        assert second == "next message"

    def test_version_mismatch_on_pipe(self):
        pipe = _FakePipe()
        pipe_send(pipe, "hello")
        head = bytearray(pipe.chunks[0])
        head[4:6] = struct.pack("<H", WIRE_VERSION + 1)
        pipe.chunks[0] = bytes(head)
        with pytest.raises(WireVersionError):
            pipe_recv(pipe)

    def test_real_multiprocessing_pipe(self):
        from multiprocessing import Pipe

        a, b = Pipe(duplex=True)
        try:
            payload = [np.arange(5, dtype=np.int16), {"ok": True}]
            pipe_send(a, payload)
            got, _n = pipe_recv(b)
            np.testing.assert_array_equal(got[0], payload[0])
            assert got[1] == {"ok": True}
        finally:
            a.close()
            b.close()
