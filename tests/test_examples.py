"""Smoke tests for the example scripts.

Each example must at least compile; the cheap ones also run end-to-end
with their default configuration (heavier ones are exercised through
the library calls they are built from, which the rest of the suite
covers).
"""

import pathlib
import py_compile
import runpy
import sys

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).parent.parent / "examples").glob("*.py")
)


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.name)
def test_example_compiles(path):
    py_compile.compile(str(path), doraise=True)


def test_examples_present():
    names = {p.name for p in EXAMPLES}
    assert {
        "quickstart.py",
        "projectile_impact.py",
        "crash_box.py",
        "partitioner_tour.py",
        "figure1_descriptors.py",
        "full_contact_step.py",
    } <= names


def test_figure1_example_runs(capsys, tmp_path, monkeypatch):
    """The cheapest example runs in-process end to end (in a temp
    directory: it writes SVG files to the cwd)."""
    monkeypatch.chdir(tmp_path)
    path = [p for p in EXAMPLES if p.name == "figure1_descriptors.py"][0]
    runpy.run_path(str(path), run_name="__main__")
    out = capsys.readouterr().out
    assert "Figure 1(b)" in out
    assert "Figure 2" in out
    assert (tmp_path / "figure1.svg").exists()
    assert (tmp_path / "figure2.svg").exists()


def test_example_mesh_loads_with_contact_surface():
    """The committed trace-demo mesh stays loadable and traceable."""
    from repro.mesh.io import load_mesh
    from repro.sim.sequence import extract_contact_surface

    path = EXAMPLES[0].parent / "impact_small.npz"
    mesh = load_mesh(path)
    assert mesh.num_nodes > 0 and mesh.num_elements > 0
    assert set(mesh.body_id.tolist()) == {0, 1}
    faces, owner, cnodes = extract_contact_surface(
        mesh, capture_radius=float("inf")
    )
    assert len(faces) > 0 and len(cnodes) > 0


def test_quickstart_example_runs(capsys):
    path = [p for p in EXAMPLES if p.name == "quickstart.py"][0]
    runpy.run_path(str(path), run_name="__main__")
    out = capsys.readouterr().out
    assert "NRemote" in out
    assert "descriptor overlap volume" in out
